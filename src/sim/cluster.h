/**
 * @file
 * Cluster: the complete managed system — servers, enclosures, VMs, the
 * VM-to-server placement, and the static power budgets at every level.
 *
 * The paper's base topology is reproduced by the builders: 180 servers as
 * six 20-blade enclosures plus sixty standalone servers (and the 60-server
 * variant as two enclosures plus twenty standalone).
 */

#ifndef NPS_SIM_CLUSTER_H
#define NPS_SIM_CLUSTER_H

#include <memory>
#include <string>
#include <vector>

#include "model/machine.h"
#include "sim/enclosure.h"
#include "sim/server.h"
#include "sim/soa.h"
#include "sim/topology.h"
#include "sim/vm.h"
#include "trace/trace.h"

namespace nps {
namespace util {
class ThreadPool;
} // namespace util

namespace sim {

/**
 * Static power budgets expressed as fractional savings off the maximum
 * possible power at each level: the paper's "20-15-10" configuration means
 * the group cap is 20% below group max power, enclosure caps 15% below
 * enclosure max, and local caps 10% below server max.
 */
struct BudgetConfig
{
    double grp_off_frac = 0.20;  //!< CAP_GRP = (1 - grp_off_frac) * max
    double enc_off_frac = 0.15;  //!< CAP_ENC per enclosure
    double loc_off_frac = 0.10;  //!< CAP_LOC per server

    /** The paper's three studied configurations. */
    static BudgetConfig paper201510() { return {0.20, 0.15, 0.10}; }
    static BudgetConfig paper252015() { return {0.25, 0.20, 0.15}; }
    static BudgetConfig paper302520() { return {0.30, 0.25, 0.20}; }

    /** Paper label, e.g. "20-15-10". */
    std::string label() const;
};

/** Per-tick cluster-wide evaluation summary. */
struct ClusterTick
{
    double total_power = 0.0;            //!< group power (watts)
    std::vector<double> enclosure_power; //!< per-enclosure power
    double demanded_useful = 0.0;        //!< useful work requested
    double served_useful = 0.0;          //!< useful work delivered
};

/**
 * The complete simulated data center.
 */
class Cluster
{
  public:
    /**
     * Build a cluster with one VM per trace, initially placed 1:1 on the
     * servers (VM j on server j). All machines share one spec.
     *
     * @param topo    Topology (server/enclosure counts).
     * @param spec    Machine spec used for every server.
     * @param traces  One workload trace per VM; the count must not exceed
     *                the number of servers.
     * @param budgets Static power budget configuration.
     * @param alpha_v Virtualization overhead fraction.
     * @param alpha_m Migration overhead fraction.
     */
    Cluster(const Topology &topo, const model::MachineSpec &spec,
            const std::vector<trace::UtilizationTrace> &traces,
            const BudgetConfig &budgets, double alpha_v, double alpha_m);

    /**
     * Heterogeneous variant: @p specs supplies one machine spec per
     * server (size must equal topo.num_servers).
     */
    Cluster(const Topology &topo,
            const std::vector<std::shared_ptr<const model::MachineSpec>>
                &specs,
            const std::vector<trace::UtilizationTrace> &traces,
            const BudgetConfig &budgets, double alpha_v, double alpha_m);

    /// @name Structure
    /// @{

    /** Number of servers. */
    size_t numServers() const { return servers_.size(); }

    /** Number of enclosures. */
    size_t numEnclosures() const { return enclosures_.size(); }

    /** Number of VMs. */
    size_t numVms() const { return vms_.size(); }

    /** Server by id. */
    Server &server(ServerId id);
    const Server &server(ServerId id) const;

    /** All servers. */
    std::vector<Server> &servers() { return servers_; }
    const std::vector<Server> &servers() const { return servers_; }

    /** Enclosure by id. */
    const Enclosure &enclosure(EnclosureId id) const;

    /** All enclosures. */
    const std::vector<Enclosure> &enclosures() const { return enclosures_; }

    /** Server ids not belonging to any enclosure. */
    const std::vector<ServerId> &standaloneServers() const
    {
        return standalone_;
    }

    /**
     * Enclosure id of @p server, or kNoEnclosure when standalone.
     */
    static constexpr EnclosureId kNoEnclosure =
        static_cast<EnclosureId>(-1);
    EnclosureId enclosureOf(ServerId server) const;

    /** VM by id. */
    VirtualMachine &vm(VmId id);
    const VirtualMachine &vm(VmId id) const;

    /** All VMs. */
    std::vector<VirtualMachine> &vms() { return vms_; }
    const std::vector<VirtualMachine> &vms() const { return vms_; }

    /// @}
    /// @name Placement
    /// @{

    /** @return the server currently hosting @p vm. */
    ServerId serverOf(VmId vm) const;

    /**
     * Move @p vm to @p dst immediately (no overhead) — used for initial
     * placement and by tests.
     */
    void placeVm(VmId vm, ServerId dst);

    /**
     * Migrate @p vm to @p dst with the pre-copy overhead model: the VM is
     * taxed alpha_m extra load until @p tick + @p migration_ticks.
     * A no-op when the VM is already on @p dst.
     */
    void migrateVm(VmId vm, ServerId dst, size_t tick,
                   size_t migration_ticks);

    /// @}
    /// @name Budgets
    /// @{

    /** The budget configuration in force. */
    const BudgetConfig &budgetConfig() const { return budgets_; }

    /** Maximum possible power of server @p id (P0, full load). */
    double serverMaxPower(ServerId id) const;

    /** Static local cap CAP_LOC of server @p id. */
    double capLoc(ServerId id) const;

    /** Maximum possible power of enclosure @p id. */
    double enclosureMaxPower(EnclosureId id) const;

    /** Static enclosure cap CAP_ENC of enclosure @p id. */
    double capEnc(EnclosureId id) const;

    /** Maximum possible power of the whole group. */
    double groupMaxPower() const;

    /** Static group cap CAP_GRP. */
    double capGrp() const;

    /// @}
    /// @name Evaluation
    /// @{

    /**
     * Serve one tick on every server and aggregate. Also retained as
     * lastTick().
     *
     * When @p pool is non-null, the per-server evaluations (which are
     * independent: each touches only its own server and its hosted VMs)
     * fan out across contiguous server shards; the aggregation is always
     * a serial fold over servers in id order, so the result is
     * bit-identical for any pool size, including none.
     */
    const ClusterTick &evaluateTick(size_t tick,
                                    util::ThreadPool *pool = nullptr);

    /** The most recent evaluation (zeros before the first). */
    const ClusterTick &lastTick() const { return last_; }

    /** Power of enclosure @p id in the last tick. */
    double lastEnclosurePower(EnclosureId id) const;

    /// @}
    /// @name Checkpointing
    /// @{

    /**
     * Serialize all mutable state: VM placement, per-server and per-VM
     * dynamic state, and the last-tick aggregate. Structure (servers,
     * enclosures, traces, budgets) is rebuilt from config on restore.
     */
    void saveState(ckpt::SectionWriter &w) const;

    /** Restore mutable state into an identically-built cluster. */
    void loadState(ckpt::SectionReader &r);

    /// @}
    /// @name External demand (the online engine, src/stream/)
    /// @{

    /**
     * Switch every VM's demandAt() from trace playback to the staged
     * demand array: from now on each tick serves whatever a telemetry
     * feed staged via stagedDemand(). Wiring time only; there is no way
     * back (an online run never mixes the two sources).
     */
    void enableExternalDemand();

    /** @return true once enableExternalDemand() has been called. */
    bool externalDemand() const { return vm_store_->external_demand != 0; }

    /**
     * The staged per-VM demand slots (index == VmId), written by the
     * feed before each tick. Only meaningful after
     * enableExternalDemand().
     */
    std::vector<double> &stagedDemand() { return vm_store_->staged_demand; }

    /// @}

    /** Shared per-server dynamic state (slot == ServerId). The hot
     * aggregation in evaluateTick folds over these arrays directly. */
    const ServerStateSoA &serverState() const { return *server_store_; }

  private:
    void buildTopology(const Topology &topo);
    void initialPlacement(
        const std::vector<trace::UtilizationTrace> &traces);
    void cacheBudgets();

    std::shared_ptr<ServerStateSoA> server_store_;
    std::shared_ptr<VmStateSoA> vm_store_;
    std::vector<Server> servers_;
    std::vector<Enclosure> enclosures_;
    std::vector<ServerId> standalone_;
    std::vector<EnclosureId> server_enclosure_;
    std::vector<VirtualMachine> vms_;
    std::vector<ServerId> vm_server_;
    BudgetConfig budgets_;
    double alpha_v_;
    double alpha_m_;
    ClusterTick last_;

    // Static caps, cached at construction (specs are immutable). The
    // cached values are computed with exactly the arithmetic the
    // accessors used to run per call, so goldens are bit-identical.
    std::vector<double> server_max_;
    std::vector<double> cap_loc_;
    std::vector<double> enc_max_;
    std::vector<double> cap_enc_;
    double group_max_ = 0.0;
    double cap_grp_ = 0.0;
};

} // namespace sim
} // namespace nps

#endif // NPS_SIM_CLUSTER_H
