#include "sim/server.h"

#include <algorithm>

#include "util/logging.h"

namespace nps {
namespace sim {

Server::Server(ServerId id, std::shared_ptr<const model::MachineSpec> spec,
               double alpha_v, double alpha_m)
    : id_(id), spec_(std::move(spec)), alpha_v_(alpha_v), alpha_m_(alpha_m),
      store_(std::make_shared<ServerStateSoA>()), slot_(0)
{
    if (!spec_)
        util::fatal("Server %u: null machine spec", id_);
    if (alpha_v_ < 0.0 || alpha_m_ < 0.0)
        util::fatal("Server %u: negative overhead", id_);
    store_->resize(1);
}

Server::Server(ServerId id, std::shared_ptr<const model::MachineSpec> spec,
               double alpha_v, double alpha_m,
               std::shared_ptr<ServerStateSoA> store, uint32_t slot)
    : id_(id), spec_(std::move(spec)), alpha_v_(alpha_v), alpha_m_(alpha_m),
      store_(std::move(store)), slot_(slot)
{
    if (!spec_)
        util::fatal("Server %u: null machine spec", id_);
    if (alpha_v_ < 0.0 || alpha_m_ < 0.0)
        util::fatal("Server %u: negative overhead", id_);
    if (!store_ || slot_ >= store_->size())
        util::fatal("Server %u: bad state slot %u", id_, slot_);
}

void
Server::addVm(VmId vm)
{
    if (std::find(vms_.begin(), vms_.end(), vm) != vms_.end())
        util::panic("Server %u: VM %u already hosted", id_, vm);
    vms_.push_back(vm);
}

void
Server::removeVm(VmId vm)
{
    auto it = std::find(vms_.begin(), vms_.end(), vm);
    if (it == vms_.end())
        util::panic("Server %u: VM %u not hosted", id_, vm);
    vms_.erase(it);
}

PlatformPower
Server::platformPower(size_t tick) const
{
    const PlatformPower state = powerState();
    if (state == PlatformPower::Booting &&
        tick >= store_->boot_done_tick[slot_])
        return PlatformPower::On;
    return state;
}

bool
Server::isOn(size_t tick) const
{
    return platformPower(tick) == PlatformPower::On;
}

void
Server::powerOff()
{
    if (!vms_.empty())
        util::panic("Server %u: powering off with %zu hosted VMs", id_,
                    vms_.size());
    setPowerState(PlatformPower::Off);
    store_->ever_off[slot_] = 1;
}

void
Server::powerOn(size_t tick)
{
    if (powerState() != PlatformPower::Off)
        return;
    setPowerState(PlatformPower::Booting);
    store_->boot_done_tick[slot_] = tick + spec_->bootTicks();
}

void
Server::setPState(size_t p)
{
    if (p >= spec_->pstates().size())
        util::panic("Server %u: P-state %zu out of range", id_, p);
    store_->pstate[slot_] = static_cast<uint32_t>(p);
}

double
Server::frequencyMhz() const
{
    return spec_->pstates().at(pstate()).freq_mhz;
}

ServerTick
Server::evaluate(size_t tick, std::vector<VirtualMachine> &vms)
{
    // Resolve a finished boot into the On state.
    if (powerState() == PlatformPower::Booting &&
        tick >= store_->boot_done_tick[slot_])
        setPowerState(PlatformPower::On);

    ServerTick out;

    // Gather useful-work demand and overheads.
    double useful = 0.0;
    double overhead = 0.0;
    for (VmId vm_id : vms_) {
        VirtualMachine &vm = vms.at(vm_id);
        double d = vm.demandAt(tick);
        useful += d;
        overhead += alpha_v_ * d;
        if (vm.migrating(tick))
            overhead += alpha_m_ * d;
    }
    out.demanded_useful = useful;

    const PlatformPower state = powerState();
    if (state == PlatformPower::Off) {
        if (!vms_.empty())
            util::panic("Server %u: off but hosting VMs", id_);
        out.power = spec_->offWatts();
        commit(out);
        return out;
    }
    if (state == PlatformPower::Booting) {
        // Burns idle power at the boot P-state (P0); serves nothing.
        out.power = model().idlePower(0);
        for (VmId vm_id : vms_) {
            VirtualMachine &vm = vms.at(vm_id);
            vm.recordServed(vm.demandAt(tick), 0.0, 0.0);
        }
        commit(out);
        return out;
    }

    double capacity = spec_->pstates().relSpeed(pstate());
    if (memLowPower())
        capacity *= 1.0 - kMemCapacityCost;

    double total_load = useful + overhead;
    double served_frac =
        total_load > capacity && total_load > 0.0 ? capacity / total_load
                                                  : 1.0;
    out.served_useful = useful * served_frac;
    out.real_util = std::min(total_load, capacity);
    out.apparent_util =
        capacity > 0.0 ? std::min(1.0, total_load / capacity) : 1.0;
    // Scale utilization back to the P-state's own axis: relSpeed already
    // normalized capacity to full speed, so apparent_util is correct as a
    // fraction of this state's capacity.
    out.power = model().powerAt(pstate(), out.apparent_util);
    if (memLowPower())
        out.power *= 1.0 - kMemPowerTrim;

    for (VmId vm_id : vms_) {
        VirtualMachine &vm = vms.at(vm_id);
        double d = vm.demandAt(tick);
        double load = d * (1.0 + alpha_v_) +
                      (vm.migrating(tick) ? alpha_m_ * d : 0.0);
        double apparent_share =
            capacity > 0.0 ? load * served_frac / capacity : 0.0;
        vm.recordServed(d, d * served_frac, apparent_share);
    }
    commit(out);
    return out;
}

} // namespace sim
} // namespace nps
