#include "sim/server.h"

#include <algorithm>

#include "util/logging.h"

namespace nps {
namespace sim {

Server::Server(ServerId id, std::shared_ptr<const model::MachineSpec> spec,
               double alpha_v, double alpha_m)
    : id_(id), spec_(std::move(spec)), alpha_v_(alpha_v), alpha_m_(alpha_m)
{
    if (!spec_)
        util::fatal("Server %u: null machine spec", id_);
    if (alpha_v_ < 0.0 || alpha_m_ < 0.0)
        util::fatal("Server %u: negative overhead", id_);
}

void
Server::addVm(VmId vm)
{
    if (std::find(vms_.begin(), vms_.end(), vm) != vms_.end())
        util::panic("Server %u: VM %u already hosted", id_, vm);
    vms_.push_back(vm);
}

void
Server::removeVm(VmId vm)
{
    auto it = std::find(vms_.begin(), vms_.end(), vm);
    if (it == vms_.end())
        util::panic("Server %u: VM %u not hosted", id_, vm);
    vms_.erase(it);
}

PlatformPower
Server::platformPower(size_t tick) const
{
    if (power_state_ == PlatformPower::Booting && tick >= boot_done_tick_)
        return PlatformPower::On;
    return power_state_;
}

bool
Server::isOn(size_t tick) const
{
    return platformPower(tick) == PlatformPower::On;
}

void
Server::powerOff()
{
    if (!vms_.empty())
        util::panic("Server %u: powering off with %zu hosted VMs", id_,
                    vms_.size());
    power_state_ = PlatformPower::Off;
    ever_off_ = true;
}

void
Server::powerOn(size_t tick)
{
    if (power_state_ != PlatformPower::Off)
        return;
    power_state_ = PlatformPower::Booting;
    boot_done_tick_ = tick + spec_->bootTicks();
}

void
Server::setPState(size_t p)
{
    if (p >= spec_->pstates().size())
        util::panic("Server %u: P-state %zu out of range", id_, p);
    pstate_ = p;
}

double
Server::frequencyMhz() const
{
    return spec_->pstates().at(pstate_).freq_mhz;
}

const ServerTick &
Server::evaluate(size_t tick, std::vector<VirtualMachine> &vms)
{
    // Resolve a finished boot into the On state.
    if (power_state_ == PlatformPower::Booting && tick >= boot_done_tick_)
        power_state_ = PlatformPower::On;

    last_ = ServerTick{};

    // Gather useful-work demand and overheads.
    double useful = 0.0;
    double overhead = 0.0;
    for (VmId vm_id : vms_) {
        VirtualMachine &vm = vms.at(vm_id);
        double d = vm.demandAt(tick);
        useful += d;
        overhead += alpha_v_ * d;
        if (vm.migrating(tick))
            overhead += alpha_m_ * d;
    }
    last_.demanded_useful = useful;

    const PlatformPower state = power_state_;
    if (state == PlatformPower::Off) {
        if (!vms_.empty())
            util::panic("Server %u: off but hosting VMs", id_);
        last_.power = spec_->offWatts();
        return last_;
    }
    if (state == PlatformPower::Booting) {
        // Burns idle power at the boot P-state (P0); serves nothing.
        last_.power = model().idlePower(0);
        for (VmId vm_id : vms_) {
            VirtualMachine &vm = vms.at(vm_id);
            vm.recordServed(vm.demandAt(tick), 0.0, 0.0);
        }
        return last_;
    }

    double capacity = spec_->pstates().relSpeed(pstate_);
    if (mem_low_power_)
        capacity *= 1.0 - kMemCapacityCost;

    double total_load = useful + overhead;
    double served_frac =
        total_load > capacity && total_load > 0.0 ? capacity / total_load
                                                  : 1.0;
    last_.served_useful = useful * served_frac;
    last_.real_util = std::min(total_load, capacity);
    last_.apparent_util =
        capacity > 0.0 ? std::min(1.0, total_load / capacity) : 1.0;
    // Scale utilization back to the P-state's own axis: relSpeed already
    // normalized capacity to full speed, so apparent_util is correct as a
    // fraction of this state's capacity.
    last_.power = model().powerAt(pstate_, last_.apparent_util);
    if (mem_low_power_)
        last_.power *= 1.0 - kMemPowerTrim;

    for (VmId vm_id : vms_) {
        VirtualMachine &vm = vms.at(vm_id);
        double d = vm.demandAt(tick);
        double load = d * (1.0 + alpha_v_) +
                      (vm.migrating(tick) ? alpha_m_ * d : 0.0);
        double apparent_share =
            capacity > 0.0 ? load * served_frac / capacity : 0.0;
        vm.recordServed(d, d * served_frac, apparent_share);
    }
    return last_;
}

} // namespace sim
} // namespace nps
