/**
 * @file
 * Topology: the shape of the managed data center.
 *
 * The flat parameters (servers, enclosures, enclosure size) describe
 * the physical population exactly as the paper's 180-server testbed
 * does: enclosures hold contiguous blade ids, the remaining servers are
 * standalone. On top of that an optional topology *tree* groups those
 * enclosures and standalone servers into nested management domains
 * (datacenter → zones → racks → ...), each of which the Coordinator
 * realizes as one GroupManager; an empty tree keeps the paper's
 * single-GM Figure 2 shape. The hierarchy is therefore data, not code.
 */

#ifndef NPS_SIM_TOPOLOGY_H
#define NPS_SIM_TOPOLOGY_H

#include <string>
#include <vector>

namespace nps {
namespace sim {

/**
 * One management domain of the topology tree: a node owns child
 * domains, whole enclosures, and standalone servers. Every enclosure id
 * and every standalone server id of the flat topology must appear in
 * exactly one node (validate() enforces this).
 */
struct TopologyNode
{
    std::string name;                  //!< unique node name, e.g. "z0r1"
    std::vector<TopologyNode> children; //!< nested domains
    std::vector<unsigned> enclosures;  //!< owned enclosure ids
    std::vector<unsigned> servers;     //!< owned standalone server ids

    /** Total fan-out of this node. */
    size_t
    fanout() const
    {
        return children.size() + enclosures.size() + servers.size();
    }
};

/** Shape parameters for building a paper-style cluster. */
struct Topology
{
    unsigned num_servers = 180;
    unsigned num_enclosures = 6;
    unsigned enclosure_size = 20;

    /**
     * Optional management tree over the flat population: empty (the
     * default) means one GM over everything, exactly Figure 2;
     * otherwise exactly one root whose leaves partition the enclosures
     * and standalone servers.
     */
    std::vector<TopologyNode> tree = {};

    /** The paper's 180-server base configuration. */
    static Topology paper180() { return {180, 6, 20}; }

    /** The paper's 60-server configuration for the 60-workload mixes. */
    static Topology paper60() { return {60, 2, 20}; }

    /**
     * A regular multi-level data center: @p zones zones of
     * @p racks_per_zone racks, each rack holding @p enclosures_per_rack
     * enclosures of @p enclosure_size blades plus @p standalone_per_rack
     * standalone servers. Enclosure and standalone ids are assigned in
     * rack order.
     */
    static Topology tiered(unsigned zones, unsigned racks_per_zone,
                           unsigned enclosures_per_rack,
                           unsigned enclosure_size,
                           unsigned standalone_per_rack);

    /** @return true when a management tree is present. */
    bool hasTree() const { return !tree.empty(); }

    /**
     * Check every structural invariant and fatal() with a clear message
     * on the first failure: nonzero population, enclosed blades within
     * the server count, and (when a tree is present) a single root,
     * nonzero fan-out and unique name per node, and exact coverage of
     * all enclosures and standalone servers.
     */
    void validate() const;

    /**
     * Render the tree as one line of text, e.g.
     * "dc(z0(z0r0(e0,s12),z0r1(e1,s13)),z1(...))" — nodes by name,
     * enclosures as 'e<id>', standalone servers as 's<id>'. Empty string
     * when no tree is present. parseTree() accepts the output verbatim
     * (write-read-write is a fixed point).
     */
    std::string treeText() const;

    /**
     * Parse the tree grammar produced by treeText(): an empty string
     * yields no tree; fatal() on malformed input.
     */
    static std::vector<TopologyNode> parseTree(const std::string &text);
};

} // namespace sim
} // namespace nps

#endif // NPS_SIM_TOPOLOGY_H
