/**
 * @file
 * Blade enclosures: a group of servers sharing power delivery and cooling,
 * the scope at which the Enclosure Manager caps power.
 */

#ifndef NPS_SIM_ENCLOSURE_H
#define NPS_SIM_ENCLOSURE_H

#include <string>
#include <vector>

#include "sim/vm.h"

namespace nps {
namespace sim {

/** Identifier for enclosures. */
using EnclosureId = unsigned;

/**
 * One blade enclosure: an ordered set of member server ids.
 */
class Enclosure
{
  public:
    /**
     * @param id      Unique enclosure id (dense index).
     * @param name    Human-readable name.
     * @param members Member server ids. @pre non-empty
     */
    Enclosure(EnclosureId id, std::string name,
              std::vector<ServerId> members);

    /** @return unique id. */
    EnclosureId id() const { return id_; }

    /** @return human-readable name. */
    const std::string &name() const { return name_; }

    /** @return member server ids. */
    const std::vector<ServerId> &members() const { return members_; }

    /** @return number of member blades. */
    size_t size() const { return members_.size(); }

    /** @return true when @p server is a member. */
    bool contains(ServerId server) const;

  private:
    EnclosureId id_;
    std::string name_;
    std::vector<ServerId> members_;
};

} // namespace sim
} // namespace nps

#endif // NPS_SIM_ENCLOSURE_H
