#include "sim/metrics.h"

#include <algorithm>

#include "util/logging.h"

namespace nps {
namespace sim {

double
powerSavings(const MetricsSummary &baseline, const MetricsSummary &scenario)
{
    if (baseline.energy <= 0.0)
        util::fatal("powerSavings: baseline consumed no energy");
    return 1.0 - scenario.energy / baseline.energy;
}

MetricsCollector::MetricsCollector(bool keep_series)
    : keep_series_(keep_series)
{
}

void
MetricsCollector::record(const Cluster &cluster, size_t tick)
{
    const ClusterTick &ct = cluster.lastTick();
    ++ticks_;
    energy_ += ct.total_power;
    peak_power_ = std::max(peak_power_, ct.total_power);
    demanded_ += ct.demanded_useful;
    served_ += ct.served_useful;

    // Tolerance so borderline arithmetic noise does not count as a
    // violation of the physical budgets.
    constexpr double kSlack = 1e-9;

    for (const auto &srv : cluster.servers()) {
        // Powered-off machines trivially comply; count only live ones so
        // the metric reflects capping quality, not fleet size.
        if (srv.platformPower(tick) == PlatformPower::Off)
            continue;
        sm_violations_.record(srv.lastPower() >
                              cluster.capLoc(srv.id()) + kSlack);
    }
    for (const auto &enc : cluster.enclosures()) {
        em_violations_.record(cluster.lastEnclosurePower(enc.id()) >
                              cluster.capEnc(enc.id()) + kSlack);
    }
    bool grp_hit = ct.total_power > cluster.capGrp() + kSlack;
    gm_violations_.record(grp_hit);
    if (grp_hit) {
        ++cur_grp_run_;
        longest_grp_run_ = std::max(longest_grp_run_, cur_grp_run_);
    } else {
        cur_grp_run_ = 0;
    }

    if (keep_series_) {
        power_series_.push_back(ct.total_power);
        perf_series_.push_back(
            ct.demanded_useful > 0.0
                ? ct.served_useful / ct.demanded_useful
                : 1.0);
    }
}

MetricsSummary
MetricsCollector::summary() const
{
    MetricsSummary s;
    s.ticks = ticks_;
    s.energy = energy_;
    s.mean_power = ticks_ ? energy_ / static_cast<double>(ticks_) : 0.0;
    s.peak_power = peak_power_;
    s.sm_violation = sm_violations_.rate();
    s.em_violation = em_violations_.rate();
    s.gm_violation = gm_violations_.rate();
    s.perf_loss = demanded_ > 0.0 ? 1.0 - served_ / demanded_ : 0.0;
    return s;
}

void
MetricsCollector::clear()
{
    ticks_ = 0;
    energy_ = 0.0;
    peak_power_ = 0.0;
    demanded_ = 0.0;
    served_ = 0.0;
    sm_violations_.clear();
    em_violations_.clear();
    gm_violations_.clear();
    cur_grp_run_ = 0;
    longest_grp_run_ = 0;
    power_series_.clear();
    perf_series_.clear();
}

} // namespace sim
} // namespace nps
