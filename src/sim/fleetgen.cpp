#include "sim/fleetgen.h"

#include <algorithm>
#include <optional>

#include "trace/generator.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace nps {
namespace sim {

namespace {

/** Diurnal-phase sites the fleet cycles through: zones z and z + 24
 * share a business-hours phase (think time zones) but never a stream,
 * so traces stay a pure function of (seed, vm) at every fleet size. */
constexpr unsigned kPhaseSites = 24;

} // namespace

FleetGen::FleetGen(FleetSpec spec) : spec_(spec)
{
    if (spec_.enclosure_size == 0 || spec_.enclosures_per_rack == 0 ||
        spec_.racks_per_zone == 0)
        util::fatal("FleetGen: zero rack dimension");
    if (spec_.trace_length == 0 || spec_.ticks_per_day == 0)
        util::fatal("FleetGen: zero trace dimension");
    if (spec_.vm_fill < 0.0 || spec_.vm_fill > 1.0)
        util::fatal("FleetGen: vm_fill %.3f outside [0,1]", spec_.vm_fill);
    const unsigned zone = spec_.zoneSize();
    if (spec_.servers == 0 || spec_.servers % zone != 0)
        util::fatal("FleetGen: %u servers is not a whole number of "
                    "%u-server zones",
                    spec_.servers, zone);
    zones_ = spec_.servers / zone;
}

unsigned
FleetGen::numVms() const
{
    return static_cast<unsigned>(spec_.servers * spec_.vm_fill);
}

Topology
FleetGen::topology() const
{
    return Topology::tiered(zones_, spec_.racks_per_zone,
                            spec_.enclosures_per_rack,
                            spec_.enclosure_size,
                            spec_.standalone_per_rack);
}

std::vector<trace::UtilizationTrace>
FleetGen::traces(util::ThreadPool *pool) const
{
    trace::GeneratorConfig gen;
    gen.num_enterprises = kPhaseSites;
    gen.servers_per_enterprise = 1; // unused by generate(); must be > 0
    gen.trace_length = spec_.trace_length;
    gen.ticks_per_day = spec_.ticks_per_day;
    gen.seed = spec_.seed;
    trace::TraceGenerator tg(gen);

    const unsigned zone = spec_.zoneSize();
    const size_t count = numVms();
    // Each slot is a pure function of (seed, vm): the site is the VM's
    // zone folded onto the phase ring, the per-stream server index is
    // the global VM id, and the class cycles round-robin. Nothing
    // depends on `count`, so the fill can fan out over any pool with
    // bit-identical results.
    auto makeOne = [&](size_t vm) {
        const unsigned site =
            static_cast<unsigned>(vm / zone) % kPhaseSites;
        const auto wc = static_cast<trace::WorkloadClass>(
            vm % trace::kNumWorkloadClasses);
        trace::UtilizationTrace t = tg.generate(
            site, static_cast<unsigned>(vm), trace::defaultProfile(wc));
        std::vector<double> samples = t.samples();
        for (double &s : samples)
            s = std::min(1.0, std::max(0.0, s));
        return trace::UtilizationTrace(t.name(), t.workloadClass(),
                                       std::move(samples));
    };

    std::vector<std::optional<trace::UtilizationTrace>> slots(count);
    if (pool != nullptr && pool->size() > 1 && count > 1) {
        const size_t shards = pool->size();
        const size_t block = (count + shards - 1) / shards;
        pool->parallelFor(shards, [&](size_t s) {
            size_t lo = s * block;
            size_t hi = std::min(lo + block, count);
            for (size_t vm = lo; vm < hi; ++vm)
                slots[vm] = makeOne(vm);
        });
    } else {
        for (size_t vm = 0; vm < count; ++vm)
            slots[vm] = makeOne(vm);
    }

    std::vector<trace::UtilizationTrace> out;
    out.reserve(count);
    for (auto &slot : slots)
        out.push_back(std::move(*slot));
    return out;
}

} // namespace sim
} // namespace nps
