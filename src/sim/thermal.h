/**
 * @file
 * Lumped RC thermal model of one server.
 *
 * Used to reproduce the paper's thermal-failover narrative: budget
 * violations are tolerable only while they are *bounded*, because heat
 * integrates power over time. Temperature follows a first-order response
 *
 *     T(k+1) = T(k) + (T_amb + P(k) * R - T(k)) / tau
 *
 * and a failover latch trips when T exceeds the critical threshold.
 */

#ifndef NPS_SIM_THERMAL_H
#define NPS_SIM_THERMAL_H

#include <cstddef>

namespace nps {
namespace sim {

/** Thermal constants of one server's heat path. */
struct ThermalParams
{
    double ambient_c = 25.0;       //!< inlet air temperature (deg C)
    double c_per_watt = 0.55;      //!< steady-state deg C rise per watt
    double tau_ticks = 40.0;       //!< thermal time constant (ticks)
    double failover_c = 85.0;      //!< thermal failover threshold (deg C)
};

/**
 * First-order thermal integrator with a latched failover flag.
 */
class ThermalModel
{
  public:
    /** Construct at ambient temperature. */
    explicit ThermalModel(ThermalParams params);

    /** Advance one tick with dissipated power @p watts. */
    void step(double watts);

    /** Current temperature (deg C). */
    double temperature() const { return temp_c_; }

    /** Steady-state temperature for constant power @p watts. */
    double steadyState(double watts) const;

    /**
     * Largest constant power that stays below failover in steady state —
     * the physical basis of the thermal power budget.
     */
    double sustainablePower() const;

    /** True once temperature has ever crossed the failover threshold. */
    bool failedOver() const { return failed_over_; }

    /** Tick count at which failover first occurred (0 when none). */
    size_t failoverTick() const { return failover_tick_; }

    /** Ticks stepped so far. */
    size_t ticks() const { return ticks_; }

    /** The parameters in force. */
    const ThermalParams &params() const { return params_; }

  private:
    ThermalParams params_;
    double temp_c_;
    bool failed_over_ = false;
    size_t failover_tick_ = 0;
    size_t ticks_ = 0;
};

} // namespace sim
} // namespace nps

#endif // NPS_SIM_THERMAL_H
