/**
 * @file
 * Time-series recorder: captures per-server, per-enclosure, and group
 * signals every tick (or every Nth tick) for offline analysis and
 * plotting — the instrumentation a real deployment would scrape into
 * its monitoring stack.
 *
 * Implemented as an Actor with period 1 whose observe() hook samples
 * the previous tick's evaluation, so it can be dropped into any engine
 * next to the controllers without touching them.
 */

#ifndef NPS_SIM_RECORDER_H
#define NPS_SIM_RECORDER_H

#include <iosfwd>
#include <string>
#include <vector>

#include "fault/health.h"
#include "fault/injector.h"
#include "sim/cluster.h"
#include "sim/engine.h"

namespace nps {
namespace sim {

/**
 * Records cluster telemetry while the simulation runs.
 */
class Recorder : public Actor
{
  public:
    /** What to capture. */
    struct Options
    {
        bool servers = true;     //!< per-server power/util/P-state
        bool enclosures = true;  //!< per-enclosure power
        bool group = true;       //!< group power + served/demanded work
        unsigned stride = 1;     //!< record every Nth tick
    };

    /**
     * @param cluster The observed cluster; must outlive the recorder.
     * @param options Capture selection.
     */
    Recorder(const Cluster &cluster, const Options &options);

    /// @name sim::Actor
    /// @{
    const std::string &name() const override { return name_; }
    unsigned period() const override { return 1; }
    void observe(size_t tick) override;
    void step(size_t tick) override { (void)tick; }
    /// @}

    /** Number of recorded samples. */
    size_t samples() const { return ticks_.size(); }

    /** The recorded tick numbers. */
    const std::vector<size_t> &ticks() const { return ticks_; }

    /** Group power series (empty unless group capture on). */
    const std::vector<double> &groupPower() const { return group_power_; }

    /** Per-server power series. @pre servers captured, id valid */
    const std::vector<double> &serverPower(ServerId id) const;

    /** Per-server apparent-utilization series. */
    const std::vector<double> &serverUtil(ServerId id) const;

    /** Per-server P-state index series (off recorded as -1). */
    const std::vector<int> &serverPState(ServerId id) const;

    /** Per-enclosure power series. @pre enclosures captured, id valid */
    const std::vector<double> &enclosurePower(EnclosureId id) const;

    /**
     * Attach the fault oracle: each sample then also records the number
     * of schedule events active at that tick (the `faults` CSV column),
     * so degraded intervals can be aligned with the power series.
     */
    void setFaultInjector(const fault::FaultInjector *faults)
    {
        faults_ = faults;
    }

    /** Active-fault-count series (empty unless an injector is attached). */
    const std::vector<size_t> &activeFaults() const { return active_faults_; }

    /**
     * Attach the stream-liveness oracle of an online run: the `faults`
     * column then additionally counts the silent telemetry streams at
     * each sampled tick (added to the injector's active events when
     * both oracles are attached), so a stream outage aligns with the
     * power series exactly like a fault campaign would.
     */
    void setStreamHealth(const fault::StreamHealth *health)
    {
        health_ = health;
    }

    /**
     * Write everything captured as wide-form CSV: one row per sample,
     * one column per signal (tick, group, enc<i>, srv<i>_{w,util,p},
     * plus `faults` when an injector is attached).
     */
    void writeCsv(std::ostream &out) const;

    /** Serialize every captured series (checkpointing). */
    void saveState(ckpt::SectionWriter &w) const;

    /** Restore captured series into an identically-configured recorder. */
    void loadState(ckpt::SectionReader &r);

  private:
    const Cluster &cluster_;
    Options options_;
    std::string name_ = "Recorder";
    const fault::FaultInjector *faults_ = nullptr;
    const fault::StreamHealth *health_ = nullptr;
    std::vector<size_t> active_faults_;
    std::vector<size_t> ticks_;
    std::vector<double> group_power_;
    std::vector<double> group_served_;
    std::vector<double> group_demanded_;
    std::vector<std::vector<double>> server_power_;
    std::vector<std::vector<double>> server_util_;
    std::vector<std::vector<int>> server_pstate_;
    std::vector<std::vector<double>> enclosure_power_;
};

} // namespace sim
} // namespace nps

#endif // NPS_SIM_RECORDER_H
