#include "sim/topology.h"

#include <cctype>
#include <set>
#include <string>

#include "util/logging.h"

namespace nps {
namespace sim {

Topology
Topology::tiered(unsigned zones, unsigned racks_per_zone,
                 unsigned enclosures_per_rack, unsigned enclosure_size,
                 unsigned standalone_per_rack)
{
    if (zones == 0 || racks_per_zone == 0)
        util::fatal("topology: tiered() needs at least one zone and rack");
    if (enclosures_per_rack == 0 && standalone_per_rack == 0)
        util::fatal("topology: tiered() racks would be empty");

    Topology t;
    t.num_enclosures = zones * racks_per_zone * enclosures_per_rack;
    t.enclosure_size = enclosure_size;
    t.num_servers = t.num_enclosures * enclosure_size +
                    zones * racks_per_zone * standalone_per_rack;

    unsigned next_enc = 0;
    unsigned next_srv = t.num_enclosures * enclosure_size;
    TopologyNode root;
    root.name = "dc";
    for (unsigned z = 0; z < zones; ++z) {
        TopologyNode zone;
        zone.name = "z" + std::to_string(z);
        for (unsigned r = 0; r < racks_per_zone; ++r) {
            TopologyNode rack;
            rack.name = zone.name + "r" + std::to_string(r);
            for (unsigned e = 0; e < enclosures_per_rack; ++e)
                rack.enclosures.push_back(next_enc++);
            for (unsigned s = 0; s < standalone_per_rack; ++s)
                rack.servers.push_back(next_srv++);
            zone.children.push_back(std::move(rack));
        }
        root.children.push_back(std::move(zone));
    }
    t.tree.push_back(std::move(root));
    return t;
}

namespace {

void
validateNode(const Topology &topo, const TopologyNode &node,
             std::set<std::string> &names, std::set<unsigned> &encs,
             std::set<unsigned> &srvs)
{
    if (node.name.empty())
        util::fatal("topology: tree node with empty name");
    if (!names.insert(node.name).second)
        util::fatal("topology: duplicate tree node '%s'",
                    node.name.c_str());
    if (node.fanout() == 0)
        util::fatal("topology: tree node '%s' has zero fan-out",
                    node.name.c_str());
    for (unsigned e : node.enclosures) {
        if (e >= topo.num_enclosures)
            util::fatal("topology: node '%s' references enclosure %u "
                        "but only %u exist",
                        node.name.c_str(), e, topo.num_enclosures);
        if (!encs.insert(e).second)
            util::fatal("topology: enclosure %u owned by more than one "
                        "node",
                        e);
    }
    unsigned enclosed = topo.num_enclosures * topo.enclosure_size;
    for (unsigned s : node.servers) {
        if (s < enclosed || s >= topo.num_servers)
            util::fatal("topology: node '%s' references server %u which "
                        "is not a standalone server",
                        node.name.c_str(), s);
        if (!srvs.insert(s).second)
            util::fatal("topology: server %u owned by more than one node",
                        s);
    }
    for (const TopologyNode &child : node.children)
        validateNode(topo, child, names, encs, srvs);
}

} // namespace

void
Topology::validate() const
{
    if (num_servers == 0)
        util::fatal("topology: zero servers");
    if (num_enclosures > 0 && enclosure_size == 0)
        util::fatal("topology: enclosures of size zero");
    unsigned enclosed = num_enclosures * enclosure_size;
    if (enclosed > num_servers)
        util::fatal("topology: %u enclosed blades exceed %u servers",
                    enclosed, num_servers);
    if (tree.empty())
        return;
    if (tree.size() != 1)
        util::fatal("topology: tree must have exactly one root, got %zu",
                    tree.size());
    std::set<std::string> names;
    std::set<unsigned> encs;
    std::set<unsigned> srvs;
    validateNode(*this, tree.front(), names, encs, srvs);
    if (encs.size() != num_enclosures)
        util::fatal("topology: tree covers %zu of %u enclosures",
                    encs.size(), num_enclosures);
    size_t standalone = num_servers - enclosed;
    if (srvs.size() != standalone)
        util::fatal("topology: tree covers %zu of %zu standalone servers",
                    srvs.size(), standalone);
}

namespace {

void
renderNode(const TopologyNode &node, std::string &out)
{
    out += node.name;
    if (node.fanout() == 0)
        return;
    out += '(';
    bool first = true;
    for (const TopologyNode &child : node.children) {
        if (!first)
            out += ',';
        first = false;
        renderNode(child, out);
    }
    for (unsigned e : node.enclosures) {
        if (!first)
            out += ',';
        first = false;
        out += 'e';
        out += std::to_string(e);
    }
    for (unsigned s : node.servers) {
        if (!first)
            out += ',';
        first = false;
        out += 's';
        out += std::to_string(s);
    }
    out += ')';
}

bool
isLeafRef(const std::string &text, size_t pos, size_t end, char tag,
          unsigned *id)
{
    if (pos >= end || text[pos] != tag || pos + 1 >= end)
        return false;
    unsigned long v = 0;
    size_t i = pos + 1;
    for (; i < end; ++i) {
        if (!std::isdigit(static_cast<unsigned char>(text[i])))
            return false;
        v = v * 10 + static_cast<unsigned long>(text[i] - '0');
    }
    *id = static_cast<unsigned>(v);
    return true;
}

size_t
itemEnd(const std::string &text, size_t pos)
{
    // An item ends at the ',' or ')' at depth zero relative to pos.
    int depth = 0;
    size_t i = pos;
    for (; i < text.size(); ++i) {
        char c = text[i];
        if (c == '(') {
            ++depth;
        } else if (c == ')') {
            if (depth == 0)
                break;
            --depth;
        } else if (c == ',' && depth == 0) {
            break;
        }
    }
    if (depth != 0)
        util::fatal("topology: unbalanced '(' in tree text");
    return i;
}

TopologyNode parseNode(const std::string &text, size_t pos, size_t end);

void
parseItems(TopologyNode &node, const std::string &text, size_t pos,
           size_t end)
{
    while (pos < end) {
        size_t stop = itemEnd(text, pos);
        if (stop > end)
            stop = end;
        if (stop == pos)
            util::fatal("topology: empty item in tree text near '%s'",
                        text.substr(pos, 8).c_str());
        unsigned id = 0;
        if (isLeafRef(text, pos, stop, 'e', &id))
            node.enclosures.push_back(id);
        else if (isLeafRef(text, pos, stop, 's', &id))
            node.servers.push_back(id);
        else
            node.children.push_back(parseNode(text, pos, stop));
        pos = stop;
        if (pos < end) {
            if (text[pos] != ',')
                util::fatal("topology: expected ',' in tree text");
            ++pos;
        }
    }
}

TopologyNode
parseNode(const std::string &text, size_t pos, size_t end)
{
    size_t open = text.find('(', pos);
    TopologyNode node;
    if (open == std::string::npos || open >= end) {
        node.name = text.substr(pos, end - pos);
        if (node.name.empty())
            util::fatal("topology: tree node with empty name");
        return node;
    }
    node.name = text.substr(pos, open - pos);
    if (node.name.empty())
        util::fatal("topology: tree node with empty name");
    if (end == pos || text[end - 1] != ')')
        util::fatal("topology: node '%s' missing closing ')'",
                    node.name.c_str());
    parseItems(node, text, open + 1, end - 1);
    return node;
}

} // namespace

std::string
Topology::treeText() const
{
    std::string out;
    for (const TopologyNode &root : tree) {
        if (!out.empty())
            out += ';';
        renderNode(root, out);
    }
    return out;
}

std::vector<TopologyNode>
Topology::parseTree(const std::string &text)
{
    std::vector<TopologyNode> roots;
    size_t pos = 0;
    while (pos < text.size()) {
        size_t stop = text.find(';', pos);
        if (stop == std::string::npos)
            stop = text.size();
        if (stop > pos)
            roots.push_back(parseNode(text, pos, stop));
        pos = stop + 1;
    }
    return roots;
}

} // namespace sim
} // namespace nps
