#include "sim/recorder.h"

#include <ostream>

#include "util/csv.h"
#include "util/logging.h"

namespace nps {
namespace sim {

Recorder::Recorder(const Cluster &cluster, const Options &options)
    : cluster_(cluster), options_(options)
{
    if (options_.stride == 0)
        util::fatal("Recorder: zero stride");
    if (options_.servers) {
        server_power_.resize(cluster_.numServers());
        server_util_.resize(cluster_.numServers());
        server_pstate_.resize(cluster_.numServers());
    }
    if (options_.enclosures)
        enclosure_power_.resize(cluster_.numEnclosures());
}

void
Recorder::observe(size_t tick)
{
    // observe() fires before the current tick is evaluated; sample the
    // previous tick's state (skip tick 0, which has none).
    if (tick == 0 || (tick - 1) % options_.stride != 0)
        return;
    ticks_.push_back(tick - 1);

    if (options_.group) {
        const ClusterTick &ct = cluster_.lastTick();
        group_power_.push_back(ct.total_power);
        group_served_.push_back(ct.served_useful);
        group_demanded_.push_back(ct.demanded_useful);
    }
    if (options_.servers) {
        for (const auto &srv : cluster_.servers()) {
            server_power_[srv.id()].push_back(srv.lastPower());
            server_util_[srv.id()].push_back(srv.lastApparentUtil());
            bool off = srv.platformPower(tick - 1) ==
                       PlatformPower::Off;
            server_pstate_[srv.id()].push_back(
                off ? -1 : static_cast<int>(srv.pstate()));
        }
    }
    if (options_.enclosures) {
        for (const auto &enc : cluster_.enclosures()) {
            enclosure_power_[enc.id()].push_back(
                cluster_.lastEnclosurePower(enc.id()));
        }
    }
    if (faults_ || health_) {
        size_t active = faults_ ? faults_->activeCount(tick - 1) : 0;
        if (health_)
            active += health_->silentCount(tick - 1);
        active_faults_.push_back(active);
    }
}

const std::vector<double> &
Recorder::serverPower(ServerId id) const
{
    if (!options_.servers || id >= server_power_.size())
        util::panic("Recorder::serverPower(%u): not captured", id);
    return server_power_[id];
}

const std::vector<double> &
Recorder::serverUtil(ServerId id) const
{
    if (!options_.servers || id >= server_util_.size())
        util::panic("Recorder::serverUtil(%u): not captured", id);
    return server_util_[id];
}

const std::vector<int> &
Recorder::serverPState(ServerId id) const
{
    if (!options_.servers || id >= server_pstate_.size())
        util::panic("Recorder::serverPState(%u): not captured", id);
    return server_pstate_[id];
}

const std::vector<double> &
Recorder::enclosurePower(EnclosureId id) const
{
    if (!options_.enclosures || id >= enclosure_power_.size())
        util::panic("Recorder::enclosurePower(%u): not captured", id);
    return enclosure_power_[id];
}

void
Recorder::writeCsv(std::ostream &out) const
{
    util::CsvWriter w(out);
    std::vector<std::string> header{"tick"};
    if (options_.group) {
        header.push_back("group_w");
        header.push_back("served");
        header.push_back("demanded");
    }
    if (options_.enclosures) {
        for (size_t e = 0; e < enclosure_power_.size(); ++e)
            header.push_back("enc" + std::to_string(e) + "_w");
    }
    if (options_.servers) {
        for (size_t s = 0; s < server_power_.size(); ++s) {
            header.push_back("srv" + std::to_string(s) + "_w");
            header.push_back("srv" + std::to_string(s) + "_util");
            header.push_back("srv" + std::to_string(s) + "_p");
        }
    }
    if (faults_ || health_)
        header.push_back("faults");
    w.rowFromFields(header);

    for (size_t i = 0; i < ticks_.size(); ++i) {
        std::vector<std::string> row{std::to_string(ticks_[i])};
        auto num = [](double v) {
            char buf[32];
            std::snprintf(buf, sizeof buf, "%.4f", v);
            return std::string(buf);
        };
        if (options_.group) {
            row.push_back(num(group_power_[i]));
            row.push_back(num(group_served_[i]));
            row.push_back(num(group_demanded_[i]));
        }
        if (options_.enclosures) {
            for (const auto &series : enclosure_power_)
                row.push_back(num(series[i]));
        }
        if (options_.servers) {
            for (size_t s = 0; s < server_power_.size(); ++s) {
                row.push_back(num(server_power_[s][i]));
                row.push_back(num(server_util_[s][i]));
                row.push_back(std::to_string(server_pstate_[s][i]));
            }
        }
        if (faults_ || health_)
            row.push_back(std::to_string(active_faults_[i]));
        w.rowFromFields(row);
    }
}

void
Recorder::saveState(ckpt::SectionWriter &w) const
{
    auto putSizeVec = [&w](const std::vector<size_t> &v) {
        w.putU64(v.size());
        for (size_t x : v)
            w.putU64(x);
    };
    auto putIntVec = [&w](const std::vector<int> &v) {
        w.putU64(v.size());
        for (int x : v)
            w.putI64(x);
    };
    putSizeVec(ticks_);
    putSizeVec(active_faults_);
    w.putDoubleVec(group_power_);
    w.putDoubleVec(group_served_);
    w.putDoubleVec(group_demanded_);
    w.putU64(server_power_.size());
    for (size_t s = 0; s < server_power_.size(); ++s) {
        w.putDoubleVec(server_power_[s]);
        w.putDoubleVec(server_util_[s]);
        putIntVec(server_pstate_[s]);
    }
    w.putU64(enclosure_power_.size());
    for (const auto &v : enclosure_power_)
        w.putDoubleVec(v);
}

void
Recorder::loadState(ckpt::SectionReader &r)
{
    auto getSizeVec = [&r](std::vector<size_t> &v) {
        v.resize(static_cast<size_t>(r.getU64()));
        for (size_t &x : v)
            x = static_cast<size_t>(r.getU64());
    };
    auto getIntVec = [&r](std::vector<int> &v) {
        v.resize(static_cast<size_t>(r.getU64()));
        for (int &x : v)
            x = static_cast<int>(r.getI64());
    };
    getSizeVec(ticks_);
    getSizeVec(active_faults_);
    group_power_ = r.getDoubleVec();
    group_served_ = r.getDoubleVec();
    group_demanded_ = r.getDoubleVec();
    auto servers = static_cast<size_t>(r.getU64());
    if (servers != server_power_.size())
        util::fatal("recorder restore: snapshot captured %zu servers, "
                    "recorder is configured for %zu",
                    servers, server_power_.size());
    for (size_t s = 0; s < servers; ++s) {
        server_power_[s] = r.getDoubleVec();
        server_util_[s] = r.getDoubleVec();
        getIntVec(server_pstate_[s]);
    }
    auto encs = static_cast<size_t>(r.getU64());
    if (encs != enclosure_power_.size())
        util::fatal("recorder restore: snapshot captured %zu enclosures, "
                    "recorder is configured for %zu",
                    encs, enclosure_power_.size());
    for (auto &v : enclosure_power_)
        v = r.getDoubleVec();
}

} // namespace sim
} // namespace nps
