#include "sim/cluster.h"

#include <algorithm>
#include <sstream>

#include "util/logging.h"
#include "util/thread_pool.h"

namespace nps {
namespace sim {

std::string
BudgetConfig::label() const
{
    std::ostringstream ss;
    ss << static_cast<int>(grp_off_frac * 100.0 + 0.5) << '-'
       << static_cast<int>(enc_off_frac * 100.0 + 0.5) << '-'
       << static_cast<int>(loc_off_frac * 100.0 + 0.5);
    return ss.str();
}

Cluster::Cluster(const Topology &topo, const model::MachineSpec &spec,
                 const std::vector<trace::UtilizationTrace> &traces,
                 const BudgetConfig &budgets, double alpha_v,
                 double alpha_m)
    : budgets_(budgets), alpha_v_(alpha_v), alpha_m_(alpha_m)
{
    auto shared = std::make_shared<const model::MachineSpec>(spec);
    servers_.reserve(topo.num_servers);
    for (unsigned i = 0; i < topo.num_servers; ++i)
        servers_.emplace_back(i, shared, alpha_v_, alpha_m_);
    buildTopology(topo);
    initialPlacement(traces);
}

Cluster::Cluster(
    const Topology &topo,
    const std::vector<std::shared_ptr<const model::MachineSpec>> &specs,
    const std::vector<trace::UtilizationTrace> &traces,
    const BudgetConfig &budgets, double alpha_v, double alpha_m)
    : budgets_(budgets), alpha_v_(alpha_v), alpha_m_(alpha_m)
{
    if (specs.size() != topo.num_servers)
        util::fatal("Cluster: %zu specs for %u servers", specs.size(),
                    topo.num_servers);
    servers_.reserve(topo.num_servers);
    for (unsigned i = 0; i < topo.num_servers; ++i)
        servers_.emplace_back(i, specs[i], alpha_v_, alpha_m_);
    buildTopology(topo);
    initialPlacement(traces);
}

void
Cluster::buildTopology(const Topology &topo)
{
    topo.validate();
    const unsigned enclosed = topo.num_enclosures * topo.enclosure_size;
    server_enclosure_.assign(topo.num_servers, kNoEnclosure);
    for (unsigned e = 0; e < topo.num_enclosures; ++e) {
        std::vector<ServerId> members;
        for (unsigned b = 0; b < topo.enclosure_size; ++b) {
            ServerId sid = e * topo.enclosure_size + b;
            members.push_back(sid);
            server_enclosure_[sid] = e;
        }
        enclosures_.emplace_back(e, "enc" + std::to_string(e),
                                 std::move(members));
    }
    for (ServerId sid = enclosed; sid < topo.num_servers; ++sid)
        standalone_.push_back(sid);
    last_.enclosure_power.assign(enclosures_.size(), 0.0);
}

void
Cluster::initialPlacement(
    const std::vector<trace::UtilizationTrace> &traces)
{
    if (traces.size() > servers_.size())
        util::fatal("Cluster: %zu workloads exceed %zu servers",
                    traces.size(), servers_.size());
    vms_.reserve(traces.size());
    vm_server_.assign(traces.size(), kNoServer);
    for (VmId id = 0; id < traces.size(); ++id) {
        vms_.emplace_back(id, traces[id]);
        vm_server_[id] = id;
        servers_[id].addVm(id);
    }
}

Server &
Cluster::server(ServerId id)
{
    if (id >= servers_.size())
        util::panic("Cluster::server(%u): out of range", id);
    return servers_[id];
}

const Server &
Cluster::server(ServerId id) const
{
    if (id >= servers_.size())
        util::panic("Cluster::server(%u): out of range", id);
    return servers_[id];
}

const Enclosure &
Cluster::enclosure(EnclosureId id) const
{
    if (id >= enclosures_.size())
        util::panic("Cluster::enclosure(%u): out of range", id);
    return enclosures_[id];
}

EnclosureId
Cluster::enclosureOf(ServerId server) const
{
    if (server >= server_enclosure_.size())
        util::panic("Cluster::enclosureOf(%u): out of range", server);
    return server_enclosure_[server];
}

VirtualMachine &
Cluster::vm(VmId id)
{
    if (id >= vms_.size())
        util::panic("Cluster::vm(%u): out of range", id);
    return vms_[id];
}

const VirtualMachine &
Cluster::vm(VmId id) const
{
    if (id >= vms_.size())
        util::panic("Cluster::vm(%u): out of range", id);
    return vms_[id];
}

ServerId
Cluster::serverOf(VmId vm) const
{
    if (vm >= vm_server_.size())
        util::panic("Cluster::serverOf(%u): out of range", vm);
    return vm_server_[vm];
}

void
Cluster::placeVm(VmId vm, ServerId dst)
{
    if (dst >= servers_.size())
        util::panic("Cluster::placeVm: server %u out of range", dst);
    ServerId src = serverOf(vm);
    if (src == dst)
        return;
    if (src != kNoServer)
        servers_[src].removeVm(vm);
    servers_[dst].addVm(vm);
    vm_server_[vm] = dst;
}

void
Cluster::migrateVm(VmId vm, ServerId dst, size_t tick,
                   size_t migration_ticks)
{
    if (serverOf(vm) == dst)
        return;
    placeVm(vm, dst);
    vms_[vm].beginMigration(tick + migration_ticks);
}

double
Cluster::serverMaxPower(ServerId id) const
{
    return server(id).model().maxPower();
}

double
Cluster::capLoc(ServerId id) const
{
    return (1.0 - budgets_.loc_off_frac) * serverMaxPower(id);
}

double
Cluster::enclosureMaxPower(EnclosureId id) const
{
    double sum = 0.0;
    for (ServerId sid : enclosure(id).members())
        sum += serverMaxPower(sid);
    return sum;
}

double
Cluster::capEnc(EnclosureId id) const
{
    return (1.0 - budgets_.enc_off_frac) * enclosureMaxPower(id);
}

double
Cluster::groupMaxPower() const
{
    double sum = 0.0;
    for (const auto &s : servers_)
        sum += s.model().maxPower();
    return sum;
}

double
Cluster::capGrp() const
{
    return (1.0 - budgets_.grp_off_frac) * groupMaxPower();
}

const ClusterTick &
Cluster::evaluateTick(size_t tick, util::ThreadPool *pool)
{
    // Phase 1: evaluate every server. Evaluations are independent (each
    // server reads and writes only itself and the disjoint set of VMs it
    // hosts), so they fan out across contiguous server shards.
    if (pool != nullptr && pool->size() > 1 && servers_.size() > 1) {
        const size_t shards = pool->size();
        const size_t block = (servers_.size() + shards - 1) / shards;
        pool->parallelFor(shards, [&](size_t s) {
            size_t lo = s * block;
            size_t hi = std::min(lo + block, servers_.size());
            for (size_t i = lo; i < hi; ++i)
                servers_[i].evaluate(tick, vms_);
        });
    } else {
        for (auto &srv : servers_)
            srv.evaluate(tick, vms_);
    }

    // Phase 2: aggregate serially, in server-id order, on the calling
    // thread — the identical left-fold either way, so parallel and
    // serial runs produce bit-identical sums.
    last_ = ClusterTick{};
    last_.enclosure_power.assign(enclosures_.size(), 0.0);
    for (const auto &srv : servers_) {
        const ServerTick &st = srv.last();
        last_.total_power += st.power;
        last_.demanded_useful += st.demanded_useful;
        last_.served_useful += st.served_useful;
        EnclosureId enc = server_enclosure_[srv.id()];
        if (enc != kNoEnclosure)
            last_.enclosure_power[enc] += st.power;
    }
    return last_;
}

double
Cluster::lastEnclosurePower(EnclosureId id) const
{
    if (id >= last_.enclosure_power.size())
        util::panic("Cluster::lastEnclosurePower(%u): out of range", id);
    return last_.enclosure_power[id];
}

void
Cluster::saveState(ckpt::SectionWriter &w) const
{
    w.putU64(servers_.size());
    w.putU64(vms_.size());
    for (ServerId srv : vm_server_)
        w.putU64(srv);
    for (const Server &srv : servers_)
        srv.saveState(w);
    for (const VirtualMachine &vm : vms_)
        vm.saveState(w);
    w.putDouble(last_.total_power);
    w.putDoubleVec(last_.enclosure_power);
    w.putDouble(last_.demanded_useful);
    w.putDouble(last_.served_useful);
}

void
Cluster::loadState(ckpt::SectionReader &r)
{
    auto n_servers = static_cast<size_t>(r.getU64());
    auto n_vms = static_cast<size_t>(r.getU64());
    if (n_servers != servers_.size() || n_vms != vms_.size())
        util::fatal("cluster restore: snapshot has %zu servers / %zu VMs, "
                    "rebuilt cluster has %zu / %zu — config/topology "
                    "mismatch",
                    n_servers, n_vms, servers_.size(), vms_.size());
    for (VmId vm = 0; vm < vms_.size(); ++vm) {
        auto dst = static_cast<ServerId>(r.getU64());
        if (dst >= servers_.size())
            util::fatal("cluster restore: VM %u placed on server %u, out "
                        "of range",
                        vm, dst);
        placeVm(vm, dst);
    }
    for (Server &srv : servers_)
        srv.loadState(r);
    for (VirtualMachine &vm : vms_)
        vm.loadState(r);
    last_.total_power = r.getDouble();
    last_.enclosure_power = r.getDoubleVec();
    last_.demanded_useful = r.getDouble();
    last_.served_useful = r.getDouble();
    // Empty before the first evaluated tick; sized per-enclosure after.
    if (!last_.enclosure_power.empty() &&
        last_.enclosure_power.size() != enclosures_.size())
        util::fatal("cluster restore: enclosure count mismatch");
}

} // namespace sim
} // namespace nps
