#include "sim/cluster.h"

#include <algorithm>
#include <sstream>

#include "util/logging.h"
#include "util/thread_pool.h"

namespace nps {
namespace sim {

std::string
BudgetConfig::label() const
{
    std::ostringstream ss;
    ss << static_cast<int>(grp_off_frac * 100.0 + 0.5) << '-'
       << static_cast<int>(enc_off_frac * 100.0 + 0.5) << '-'
       << static_cast<int>(loc_off_frac * 100.0 + 0.5);
    return ss.str();
}

Cluster::Cluster(const Topology &topo, const model::MachineSpec &spec,
                 const std::vector<trace::UtilizationTrace> &traces,
                 const BudgetConfig &budgets, double alpha_v,
                 double alpha_m)
    : server_store_(std::make_shared<ServerStateSoA>()),
      vm_store_(std::make_shared<VmStateSoA>()), budgets_(budgets),
      alpha_v_(alpha_v), alpha_m_(alpha_m)
{
    auto shared = std::make_shared<const model::MachineSpec>(spec);
    server_store_->resize(topo.num_servers);
    servers_.reserve(topo.num_servers);
    for (unsigned i = 0; i < topo.num_servers; ++i)
        servers_.emplace_back(i, shared, alpha_v_, alpha_m_,
                              server_store_, i);
    buildTopology(topo);
    initialPlacement(traces);
    cacheBudgets();
}

Cluster::Cluster(
    const Topology &topo,
    const std::vector<std::shared_ptr<const model::MachineSpec>> &specs,
    const std::vector<trace::UtilizationTrace> &traces,
    const BudgetConfig &budgets, double alpha_v, double alpha_m)
    : server_store_(std::make_shared<ServerStateSoA>()),
      vm_store_(std::make_shared<VmStateSoA>()), budgets_(budgets),
      alpha_v_(alpha_v), alpha_m_(alpha_m)
{
    if (specs.size() != topo.num_servers)
        util::fatal("Cluster: %zu specs for %u servers", specs.size(),
                    topo.num_servers);
    server_store_->resize(topo.num_servers);
    servers_.reserve(topo.num_servers);
    for (unsigned i = 0; i < topo.num_servers; ++i)
        servers_.emplace_back(i, specs[i], alpha_v_, alpha_m_,
                              server_store_, i);
    buildTopology(topo);
    initialPlacement(traces);
    cacheBudgets();
}

void
Cluster::buildTopology(const Topology &topo)
{
    topo.validate();
    const unsigned enclosed = topo.num_enclosures * topo.enclosure_size;
    server_enclosure_.assign(topo.num_servers, kNoEnclosure);
    for (unsigned e = 0; e < topo.num_enclosures; ++e) {
        std::vector<ServerId> members;
        for (unsigned b = 0; b < topo.enclosure_size; ++b) {
            ServerId sid = e * topo.enclosure_size + b;
            members.push_back(sid);
            server_enclosure_[sid] = e;
        }
        enclosures_.emplace_back(e, "enc" + std::to_string(e),
                                 std::move(members));
    }
    for (ServerId sid = enclosed; sid < topo.num_servers; ++sid)
        standalone_.push_back(sid);
    last_.enclosure_power.assign(enclosures_.size(), 0.0);
}

void
Cluster::initialPlacement(
    const std::vector<trace::UtilizationTrace> &traces)
{
    if (traces.size() > servers_.size())
        util::fatal("Cluster: %zu workloads exceed %zu servers",
                    traces.size(), servers_.size());
    vm_store_->resize(traces.size());
    vms_.reserve(traces.size());
    vm_server_.assign(traces.size(), kNoServer);
    for (VmId id = 0; id < traces.size(); ++id) {
        vms_.emplace_back(id, traces[id], vm_store_,
                          static_cast<uint32_t>(id));
        vm_server_[id] = id;
        servers_[id].addVm(id);
    }
}

void
Cluster::cacheBudgets()
{
    // Same expressions, same summation order as the former per-call
    // accessors — cached once since specs never change after build.
    server_max_.resize(servers_.size());
    cap_loc_.resize(servers_.size());
    for (size_t i = 0; i < servers_.size(); ++i) {
        server_max_[i] = servers_[i].model().maxPower();
        cap_loc_[i] = (1.0 - budgets_.loc_off_frac) * server_max_[i];
    }
    enc_max_.resize(enclosures_.size());
    cap_enc_.resize(enclosures_.size());
    for (size_t e = 0; e < enclosures_.size(); ++e) {
        double sum = 0.0;
        for (ServerId sid : enclosures_[e].members())
            sum += server_max_[sid];
        enc_max_[e] = sum;
        cap_enc_[e] = (1.0 - budgets_.enc_off_frac) * sum;
    }
    group_max_ = 0.0;
    for (const auto &s : servers_)
        group_max_ += s.model().maxPower();
    cap_grp_ = (1.0 - budgets_.grp_off_frac) * group_max_;
}

Server &
Cluster::server(ServerId id)
{
    if (id >= servers_.size())
        util::panic("Cluster::server(%u): out of range", id);
    return servers_[id];
}

const Server &
Cluster::server(ServerId id) const
{
    if (id >= servers_.size())
        util::panic("Cluster::server(%u): out of range", id);
    return servers_[id];
}

const Enclosure &
Cluster::enclosure(EnclosureId id) const
{
    if (id >= enclosures_.size())
        util::panic("Cluster::enclosure(%u): out of range", id);
    return enclosures_[id];
}

EnclosureId
Cluster::enclosureOf(ServerId server) const
{
    if (server >= server_enclosure_.size())
        util::panic("Cluster::enclosureOf(%u): out of range", server);
    return server_enclosure_[server];
}

VirtualMachine &
Cluster::vm(VmId id)
{
    if (id >= vms_.size())
        util::panic("Cluster::vm(%u): out of range", id);
    return vms_[id];
}

const VirtualMachine &
Cluster::vm(VmId id) const
{
    if (id >= vms_.size())
        util::panic("Cluster::vm(%u): out of range", id);
    return vms_[id];
}

ServerId
Cluster::serverOf(VmId vm) const
{
    if (vm >= vm_server_.size())
        util::panic("Cluster::serverOf(%u): out of range", vm);
    return vm_server_[vm];
}

void
Cluster::placeVm(VmId vm, ServerId dst)
{
    if (dst >= servers_.size())
        util::panic("Cluster::placeVm: server %u out of range", dst);
    ServerId src = serverOf(vm);
    if (src == dst)
        return;
    if (src != kNoServer)
        servers_[src].removeVm(vm);
    servers_[dst].addVm(vm);
    vm_server_[vm] = dst;
}

void
Cluster::migrateVm(VmId vm, ServerId dst, size_t tick,
                   size_t migration_ticks)
{
    if (serverOf(vm) == dst)
        return;
    placeVm(vm, dst);
    vms_[vm].beginMigration(tick + migration_ticks);
}

double
Cluster::serverMaxPower(ServerId id) const
{
    if (id >= server_max_.size())
        util::panic("Cluster::serverMaxPower(%u): out of range", id);
    return server_max_[id];
}

double
Cluster::capLoc(ServerId id) const
{
    if (id >= cap_loc_.size())
        util::panic("Cluster::capLoc(%u): out of range", id);
    return cap_loc_[id];
}

double
Cluster::enclosureMaxPower(EnclosureId id) const
{
    if (id >= enc_max_.size())
        util::panic("Cluster::enclosureMaxPower(%u): out of range", id);
    return enc_max_[id];
}

double
Cluster::capEnc(EnclosureId id) const
{
    if (id >= cap_enc_.size())
        util::panic("Cluster::capEnc(%u): out of range", id);
    return cap_enc_[id];
}

double
Cluster::groupMaxPower() const
{
    return group_max_;
}

double
Cluster::capGrp() const
{
    return cap_grp_;
}

void
Cluster::enableExternalDemand()
{
    vm_store_->external_demand = 1;
    if (vm_store_->staged_demand.size() != vms_.size())
        vm_store_->staged_demand.assign(vms_.size(), 0.0);
}

const ClusterTick &
Cluster::evaluateTick(size_t tick, util::ThreadPool *pool)
{
    // Phase 1: evaluate every server. Evaluations are independent (each
    // server reads and writes only itself and the disjoint set of VMs it
    // hosts), so they fan out across contiguous server shards.
    if (pool != nullptr && pool->size() > 1 && servers_.size() > 1) {
        const size_t shards = pool->size();
        const size_t block = (servers_.size() + shards - 1) / shards;
        pool->parallelFor(shards, [&](size_t s) {
            size_t lo = s * block;
            size_t hi = std::min(lo + block, servers_.size());
            for (size_t i = lo; i < hi; ++i)
                servers_[i].evaluate(tick, vms_);
        });
    } else {
        for (auto &srv : servers_)
            srv.evaluate(tick, vms_);
    }

    // Phase 2: aggregate serially, in server-id order, on the calling
    // thread — the identical left-fold either way, so parallel and
    // serial runs produce bit-identical sums. The fold reads the SoA
    // sensor arrays directly (cluster-owned servers are never reseated,
    // so slot i is server i) and reuses last_'s buffers in place — no
    // per-tick allocation.
    last_.total_power = 0.0;
    last_.demanded_useful = 0.0;
    last_.served_useful = 0.0;
    if (last_.enclosure_power.size() != enclosures_.size())
        last_.enclosure_power.assign(enclosures_.size(), 0.0);
    else
        std::fill(last_.enclosure_power.begin(),
                  last_.enclosure_power.end(), 0.0);
    const ServerStateSoA &st = *server_store_;
    for (size_t i = 0; i < servers_.size(); ++i) {
        last_.total_power += st.power[i];
        last_.demanded_useful += st.demanded_useful[i];
        last_.served_useful += st.served_useful[i];
        EnclosureId enc = server_enclosure_[i];
        if (enc != kNoEnclosure)
            last_.enclosure_power[enc] += st.power[i];
    }
    return last_;
}

double
Cluster::lastEnclosurePower(EnclosureId id) const
{
    if (id >= last_.enclosure_power.size())
        util::panic("Cluster::lastEnclosurePower(%u): out of range", id);
    return last_.enclosure_power[id];
}

void
Cluster::saveState(ckpt::SectionWriter &w) const
{
    w.putU64(servers_.size());
    w.putU64(vms_.size());
    for (ServerId srv : vm_server_)
        w.putU64(srv);
    for (const Server &srv : servers_)
        srv.saveState(w);
    for (const VirtualMachine &vm : vms_)
        vm.saveState(w);
    w.putDouble(last_.total_power);
    w.putDoubleVec(last_.enclosure_power);
    w.putDouble(last_.demanded_useful);
    w.putDouble(last_.served_useful);
}

void
Cluster::loadState(ckpt::SectionReader &r)
{
    auto n_servers = static_cast<size_t>(r.getU64());
    auto n_vms = static_cast<size_t>(r.getU64());
    if (n_servers != servers_.size() || n_vms != vms_.size())
        util::fatal("cluster restore: snapshot has %zu servers / %zu VMs, "
                    "rebuilt cluster has %zu / %zu — config/topology "
                    "mismatch",
                    n_servers, n_vms, servers_.size(), vms_.size());
    for (VmId vm = 0; vm < vms_.size(); ++vm) {
        auto dst = static_cast<ServerId>(r.getU64());
        if (dst >= servers_.size())
            util::fatal("cluster restore: VM %u placed on server %u, out "
                        "of range",
                        vm, dst);
        placeVm(vm, dst);
    }
    for (Server &srv : servers_)
        srv.loadState(r);
    for (VirtualMachine &vm : vms_)
        vm.loadState(r);
    last_.total_power = r.getDouble();
    last_.enclosure_power = r.getDoubleVec();
    last_.demanded_useful = r.getDouble();
    last_.served_useful = r.getDouble();
    // Empty before the first evaluated tick; sized per-enclosure after.
    if (!last_.enclosure_power.empty() &&
        last_.enclosure_power.size() != enclosures_.size())
        util::fatal("cluster restore: enclosure count mismatch");
}

} // namespace sim
} // namespace nps
