/**
 * @file
 * Struct-of-arrays backing stores for the per-server and per-VM dynamic
 * state (docs/PERFORMANCE.md).
 *
 * At fleet scale the per-tick hot path — Cluster::evaluateTick, the
 * metrics pass, and every shardable controller's sensor reads — is
 * dominated by memory traffic, not arithmetic. Keeping the mutable
 * scalars inside the Server / VirtualMachine objects interleaves the
 * few hot doubles with cold construction data (spec pointers, hosted-VM
 * lists, trace metadata), so a 100k-server sweep touches a cache line
 * per server and uses a fraction of it. These stores pull the dynamic
 * state out into one contiguous array per field; Server and
 * VirtualMachine stay the API as thin views (store pointer + slot), so
 * controllers, checkpointing, and the golden scenarios are untouched.
 *
 * Ownership contract: a Cluster builds one shared store per kind and
 * hands every element a slot equal to its id. Objects constructed
 * standalone (unit tests, examples) own a private single-slot store —
 * the view code is identical either way. Assigning a foreign
 * VirtualMachine into a cluster slot (some tests do, to swap traces)
 * simply reseats that VM onto its private store; all per-VM reads go
 * through the object, so the swap is safe. Cluster-owned Servers are
 * never reseated: the aggregation pass iterates the server arrays
 * directly, which is what makes the tick fold cache-friendly.
 */

#ifndef NPS_SIM_SOA_H
#define NPS_SIM_SOA_H

#include <cstdint>
#include <vector>

namespace nps {
namespace sim {

/**
 * Dynamic per-server state, one contiguous array per field, indexed by
 * server slot (== ServerId for cluster-owned servers).
 */
struct ServerStateSoA
{
    /// @name Platform / actuator state
    /// @{
    std::vector<uint8_t> power_state;    //!< PlatformPower as raw byte
    std::vector<uint64_t> boot_done_tick;
    std::vector<uint8_t> ever_off;
    std::vector<uint32_t> pstate;
    std::vector<uint8_t> mem_low_power;
    /// @}
    /// @name Last-tick sensors (the ServerTick fields, one array each)
    /// @{
    std::vector<double> power;
    std::vector<double> apparent_util;
    std::vector<double> real_util;
    std::vector<double> demanded_useful;
    std::vector<double> served_useful;
    /// @}

    /** Number of slots. */
    size_t size() const { return pstate.size(); }

    /** Resize every array to @p n slots, new slots default-initialized
     * (on, P0, zeroed sensors) — the state of a freshly built Server. */
    void
    resize(size_t n)
    {
        power_state.resize(n, 0); // PlatformPower::On
        boot_done_tick.resize(n, 0);
        ever_off.resize(n, 0);
        pstate.resize(n, 0);
        mem_low_power.resize(n, 0);
        power.resize(n, 0.0);
        apparent_util.resize(n, 0.0);
        real_util.resize(n, 0.0);
        demanded_useful.resize(n, 0.0);
        served_useful.resize(n, 0.0);
    }
};

/**
 * Dynamic per-VM state, indexed by VM slot (== VmId for cluster-owned
 * VMs).
 */
struct VmStateSoA
{
    std::vector<uint64_t> migrating_until;
    std::vector<double> last_demanded;
    std::vector<double> last_served;
    std::vector<double> last_apparent_share;
    /**
     * Externally staged demand, one slot per VM, read by
     * VirtualMachine::demandAt instead of the trace when
     * external_demand is set (the online engine, src/stream/: a
     * telemetry feed stages every VM's demand before each tick).
     * Deliberately not checkpointed — the feed re-stages before the
     * first post-restore tick.
     */
    std::vector<double> staged_demand;
    /** When nonzero demandAt serves staged_demand, not the trace. */
    uint8_t external_demand = 0;

    /** Number of slots. */
    size_t size() const { return migrating_until.size(); }

    /** Resize every array to @p n slots, new slots zeroed. */
    void
    resize(size_t n)
    {
        migrating_until.resize(n, 0);
        last_demanded.resize(n, 0.0);
        last_served.resize(n, 0.0);
        last_apparent_share.resize(n, 0.0);
        staged_demand.resize(n, 0.0);
    }
};

} // namespace sim
} // namespace nps

#endif // NPS_SIM_SOA_H
