/**
 * @file
 * Cooling substrate: CRAC units and cooling zones.
 *
 * The paper's future work targets "coordination with the equivalent
 * spectrum of solutions in the ... cooling domains" (Section 7). This
 * module supplies the physical side: a cooling zone aggregates the heat
 * of a set of servers into a lumped air mass whose temperature rises
 * with IT power and falls with the heat a CRAC unit extracts; the CRAC
 * pays electricity for extraction according to the classic
 * supply-temperature-dependent coefficient-of-performance curve used in
 * the HP data-center literature:
 *
 *     COP(T_sup) = 0.0068 T_sup^2 + 0.0008 T_sup + 0.458
 *
 * so facility power = IT power + sum(extracted / COP), and PUE follows.
 */

#ifndef NPS_SIM_COOLING_H
#define NPS_SIM_COOLING_H

#include <cstddef>
#include <string>
#include <vector>

#include "sim/vm.h"

namespace nps {
namespace sim {

/** CRAC efficiency at supply temperature @p t_supply_c (deg C). */
double cracCop(double t_supply_c);

/** Physical constants of one cooling zone. */
struct CoolingZoneParams
{
    double ambient_c = 18.0;       //!< supply air floor temperature
    double thermal_mass = 4000.0;  //!< J per deg C per tick equivalent
    double leak_per_tick = 0.02;   //!< passive loss fraction towards ambient
    double crac_capacity = 1.0e5;  //!< max extractable heat (watts)
    double supply_c = 15.0;        //!< CRAC supply setpoint (sets COP)
    double redline_c = 35.0;       //!< zone inlet-air safety limit
};

/**
 * Lumped thermal model of one zone plus its CRAC unit.
 */
class CoolingZone
{
  public:
    /**
     * @param name    Diagnostic name.
     * @param members Servers whose heat lands in this zone.
     * @param params  Physical constants.
     */
    CoolingZone(std::string name, std::vector<ServerId> members,
                CoolingZoneParams params);

    /** @return diagnostic name. */
    const std::string &name() const { return name_; }

    /** @return member server ids. */
    const std::vector<ServerId> &members() const { return members_; }

    /** The CRAC extraction setting (watts of heat). */
    double extraction() const { return extraction_; }

    /** Set the CRAC extraction (clamped to [0, capacity]). */
    void setExtraction(double watts);

    /** Advance one tick with @p it_watts of IT heat dumped in. */
    void step(double it_watts);

    /** Current zone air temperature (deg C). */
    double temperature() const { return temp_c_; }

    /** Electrical power the CRAC drew last tick (watts). */
    double cracElectric() const { return last_electric_; }

    /** Heat actually removed last tick (watts). */
    double heatRemoved() const { return last_removed_; }

    /** True whenever the zone has ever crossed its redline. */
    bool redlined() const { return redlined_; }

    /** The parameters in force. */
    const CoolingZoneParams &params() const { return params_; }

    /**
     * Steady-state extraction needed to hold @p it_watts at
     * @p target_c — the feed-forward term controllers can use.
     */
    double requiredExtraction(double it_watts, double target_c) const;

  private:
    std::string name_;
    std::vector<ServerId> members_;
    CoolingZoneParams params_;
    double temp_c_;
    double extraction_ = 0.0;
    double last_electric_ = 0.0;
    double last_removed_ = 0.0;
    bool redlined_ = false;
};

} // namespace sim
} // namespace nps

#endif // NPS_SIM_COOLING_H
