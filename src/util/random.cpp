#include "util/random.h"

#include <cmath>

#include "util/logging.h"

namespace nps {
namespace util {

namespace {

/** SplitMix64 step, used to expand one seed into the xoshiro state. */
uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

uint64_t
hashString(std::string_view s)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &word : state_)
        word = splitmix64(sm);
}

Rng::Rng(uint64_t seed, std::string_view stream_name)
    : Rng(seed ^ hashString(stream_name))
{
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> uniform double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

uint64_t
Rng::below(uint64_t n)
{
    if (n == 0)
        panic("Rng::below(0)");
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = (0 - n) % n;
    for (;;) {
        uint64_t r = next();
        if (r >= threshold)
            return r % n;
    }
}

double
Rng::gaussian()
{
    // Box-Muller; draw until u1 is nonzero so log() is finite.
    double u1;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * M_PI * u2);
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

bool
Rng::bernoulli(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

} // namespace util
} // namespace nps
