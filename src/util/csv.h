/**
 * @file
 * Small CSV reader/writer used for trace import/export and for dumping
 * benchmark series that can be plotted externally.
 *
 * Supports RFC-4180-style quoting (fields containing commas, quotes, or
 * newlines are double-quoted with embedded quotes doubled). No attempt is
 * made to support exotic encodings; everything is treated as bytes.
 */

#ifndef NPS_UTIL_CSV_H
#define NPS_UTIL_CSV_H

#include <iosfwd>
#include <string>
#include <vector>

namespace nps {
namespace util {

/** A parsed CSV document: one vector of fields per row. */
struct CsvDocument
{
    /** Row-major parsed cells. The header, if any, is rows[0]. */
    std::vector<std::vector<std::string>> rows;

    /** @return number of rows. */
    size_t numRows() const { return rows.size(); }
};

/** Parse CSV text. Handles quoted fields and both \n and \r\n endings. */
CsvDocument parseCsv(const std::string &text);

/** Read and parse a CSV file. Calls fatal() if the file cannot be read. */
CsvDocument readCsvFile(const std::string &path);

/**
 * Streaming CSV writer.
 *
 * Usage:
 * @code
 *   CsvWriter w(out);
 *   w.row("time", "server", "watts");
 *   w.row(12, "blade-3", 87.5);
 * @endcode
 */
class CsvWriter
{
  public:
    /** Write to the given stream; the stream must outlive the writer. */
    explicit CsvWriter(std::ostream &out) : out_(out) {}

    CsvWriter(const CsvWriter &) = delete;
    CsvWriter &operator=(const CsvWriter &) = delete;

    /** Write one row from any mix of printable values. */
    template <typename... Ts>
    void
    row(const Ts &...values)
    {
        bool first = true;
        (writeField(toField(values), first), ...);
        endRow();
    }

    /** Write one row from a vector of preformatted fields. */
    void rowFromFields(const std::vector<std::string> &fields);

  private:
    static std::string toField(const std::string &s) { return s; }
    static std::string toField(const char *s) { return s; }
    static std::string toField(double v);
    static std::string toField(int v);
    static std::string toField(long v);
    static std::string toField(unsigned v);
    static std::string toField(unsigned long v);

    void writeField(const std::string &field, bool &first);
    void endRow();

    std::ostream &out_;
};

/** Quote a single field per RFC 4180 when it needs quoting. */
std::string csvEscape(const std::string &field);

} // namespace util
} // namespace nps

#endif // NPS_UTIL_CSV_H
