/**
 * @file
 * ASCII table rendering used by the benchmark harnesses to print the same
 * rows/series the paper's figures and tables report.
 */

#ifndef NPS_UTIL_TABLE_H
#define NPS_UTIL_TABLE_H

#include <iosfwd>
#include <string>
#include <vector>

namespace nps {
namespace util {

/**
 * Column-aligned text table.
 *
 * Collects a header plus rows of string cells and renders them with padded
 * columns; numeric helpers format doubles at fixed precision.
 */
class Table
{
  public:
    /** Construct with a caption printed above the table. */
    explicit Table(std::string caption);

    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Append a data row. */
    void row(std::vector<std::string> cells);

    /** Append a horizontal separator before the next row. */
    void separator();

    /** Render the table to @p out. */
    void print(std::ostream &out) const;

    /** Format a double with @p decimals digits after the point. */
    static std::string num(double v, int decimals = 1);

    /** Format a fraction in [0,1] as a percentage string, e.g. "12.3". */
    static std::string pct(double fraction, int decimals = 1);

  private:
    std::string caption_;
    std::vector<std::string> header_;
    /** Rows; an empty row encodes a separator. */
    std::vector<std::vector<std::string>> rows_;
};

} // namespace util
} // namespace nps

#endif // NPS_UTIL_TABLE_H
