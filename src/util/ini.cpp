#include "util/ini.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/logging.h"

namespace nps {
namespace util {

namespace {

std::string
trim(const std::string &s)
{
    size_t begin = s.find_first_not_of(" \t\r");
    if (begin == std::string::npos)
        return "";
    size_t end = s.find_last_not_of(" \t\r");
    return s.substr(begin, end - begin + 1);
}

} // namespace

bool
IniDocument::has(const std::string &section, const std::string &key) const
{
    auto it = sections_.find(section);
    return it != sections_.end() && it->second.values.count(key) > 0;
}

std::string
IniDocument::get(const std::string &section, const std::string &key,
                 const std::string &fallback) const
{
    auto it = sections_.find(section);
    if (it == sections_.end())
        return fallback;
    auto kv = it->second.values.find(key);
    return kv == it->second.values.end() ? fallback : kv->second;
}

double
IniDocument::getDouble(const std::string &section, const std::string &key,
                       double fallback) const
{
    if (!has(section, key))
        return fallback;
    std::string raw = get(section, key);
    char *end = nullptr;
    double value = std::strtod(raw.c_str(), &end);
    if (end == raw.c_str() || *end != '\0')
        fatal("ini: [%s] %s = '%s' is not a number", section.c_str(),
              key.c_str(), raw.c_str());
    return value;
}

long
IniDocument::getInt(const std::string &section, const std::string &key,
                    long fallback) const
{
    if (!has(section, key))
        return fallback;
    std::string raw = get(section, key);
    char *end = nullptr;
    long value = std::strtol(raw.c_str(), &end, 10);
    if (end == raw.c_str() || *end != '\0')
        fatal("ini: [%s] %s = '%s' is not an integer", section.c_str(),
              key.c_str(), raw.c_str());
    return value;
}

bool
IniDocument::getBool(const std::string &section, const std::string &key,
                     bool fallback) const
{
    if (!has(section, key))
        return fallback;
    std::string raw = get(section, key);
    std::string lower = raw;
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (lower == "true" || lower == "yes" || lower == "on" ||
        lower == "1") {
        return true;
    }
    if (lower == "false" || lower == "no" || lower == "off" ||
        lower == "0") {
        return false;
    }
    fatal("ini: [%s] %s = '%s' is not a boolean", section.c_str(),
          key.c_str(), raw.c_str());
}

void
IniDocument::addSection(const std::string &section)
{
    if (sections_.find(section) == sections_.end()) {
        section_order_.push_back(section);
        sections_.emplace(section, Entry{});
    }
}

void
IniDocument::set(const std::string &section, const std::string &key,
                 const std::string &value)
{
    addSection(section);
    Entry &entry = sections_.at(section);
    if (!entry.values.count(key))
        entry.key_order.push_back(key);
    entry.values[key] = value;
}

std::vector<std::string>
IniDocument::keys(const std::string &section) const
{
    auto it = sections_.find(section);
    return it == sections_.end() ? std::vector<std::string>{}
                                 : it->second.key_order;
}

std::string
IniDocument::toText() const
{
    std::ostringstream out;
    for (const auto &name : section_order_) {
        out << '[' << name << "]\n";
        const Entry &entry = sections_.at(name);
        for (const auto &key : entry.key_order)
            out << key << " = " << entry.values.at(key) << '\n';
        out << '\n';
    }
    return out.str();
}

IniDocument
parseIni(const std::string &text)
{
    IniDocument doc;
    std::istringstream in(text);
    std::string line;
    std::string section;
    int line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        std::string t = trim(line);
        if (t.empty() || t[0] == '#' || t[0] == ';')
            continue;
        if (t.front() == '[') {
            if (t.back() != ']' || t.size() < 3)
                fatal("ini: malformed section header at line %d",
                      line_no);
            section = trim(t.substr(1, t.size() - 2));
            if (section.empty())
                fatal("ini: empty section name at line %d", line_no);
            doc.addSection(section);
            continue;
        }
        size_t eq = t.find('=');
        if (eq == std::string::npos)
            fatal("ini: expected 'key = value' at line %d", line_no);
        if (section.empty())
            fatal("ini: key outside any section at line %d", line_no);
        std::string key = trim(t.substr(0, eq));
        std::string value = trim(t.substr(eq + 1));
        if (key.empty())
            fatal("ini: empty key at line %d", line_no);
        doc.set(section, key, value);
    }
    return doc;
}

IniDocument
readIniFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("readIniFile: cannot open %s", path.c_str());
    std::ostringstream ss;
    ss << in.rdbuf();
    return parseIni(ss.str());
}

} // namespace util
} // namespace nps
