#include "util/thread_pool.h"

#include "util/logging.h"

namespace nps {
namespace util {

unsigned
ThreadPool::hardwareThreads()
{
    unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : n;
}

ThreadPool::ThreadPool(unsigned threads)
    : size_(threads == 0 ? hardwareThreads() : threads)
{
    // The calling thread is worker 0; spawn only the extras.
    workers_.reserve(size_ - 1);
    for (unsigned i = 1; i < size_; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    start_cv_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::runShards(unsigned long generation, unsigned index)
{
    // Claim shards one at a time, preferring the shard matching this
    // worker's index and scanning upward (wrapping) from there: with the
    // engine's shards == threads layout every worker re-claims the same
    // shard on every dispatch, keeping each shard's working set on one
    // core, and an idle worker still steals from a stalled peer. The
    // generation check keeps a straggler that wakes after its job has
    // drained from touching a later job's counters (or a dangling job
    // function).
    for (;;) {
        const std::function<void(size_t)> *job;
        size_t shard;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (generation_ != generation)
                return;
            size_t n = job_shards_;
            size_t found = n;
            for (size_t off = 0; off < n; ++off) {
                size_t s = (index + off) % n;
                if (!claimed_[s]) {
                    found = s;
                    break;
                }
            }
            if (found == n)
                return;
            claimed_[found] = 1;
            job = job_;
            shard = found;
        }
        (*job)(shard);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (--pending_shards_ == 0) {
                done_cv_.notify_all();
                return;
            }
        }
    }
}

void
ThreadPool::workerLoop(unsigned index)
{
    unsigned long seen = 0;
    for (;;) {
        unsigned long generation;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            start_cv_.wait(lock, [&] {
                return stop_ || generation_ != seen;
            });
            if (stop_)
                return;
            seen = generation = generation_;
        }
        runShards(generation, index);
    }
}

void
ThreadPool::parallelFor(size_t shards,
                        const std::function<void(size_t)> &fn)
{
    if (shards == 0)
        return;
    if (size_ == 1 || shards == 1) {
        for (size_t s = 0; s < shards; ++s)
            fn(s);
        return;
    }
    unsigned long generation;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (job_ != nullptr)
            fatal("ThreadPool::parallelFor: re-entered");
        job_ = &fn;
        job_shards_ = shards;
        pending_shards_ = shards;
        claimed_.assign(shards, 0);
        generation = ++generation_;
    }
    start_cv_.notify_all();
    runShards(generation, 0);
    {
        std::unique_lock<std::mutex> lock(mutex_);
        done_cv_.wait(lock, [&] { return pending_shards_ == 0; });
        job_ = nullptr;
    }
}

} // namespace util
} // namespace nps
