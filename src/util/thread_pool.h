/**
 * @file
 * A small reusable worker pool for deterministic fork/join parallelism.
 *
 * The pool exists for one pattern: fan a fixed number of *shards* out
 * across persistent worker threads and block until every shard has run
 * (parallelFor). Shard indices are dense [0, shards); the mapping of
 * shards to work must be static so that repeated invocations partition
 * the work identically — the determinism contract of the parallel tick
 * engine (see docs/PARALLELISM.md) is built on top of that.
 *
 * A pool of size <= 1 (or a 1-shard call) degenerates to an inline
 * serial loop in ascending shard order, so callers need no special
 * casing for the serial configuration.
 */

#ifndef NPS_UTIL_THREAD_POOL_H
#define NPS_UTIL_THREAD_POOL_H

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace nps {
namespace util {

/**
 * Fixed-size fork/join worker pool.
 */
class ThreadPool
{
  public:
    /**
     * @param threads Worker count; 0 resolves to hardwareThreads().
     * A pool of size 1 spawns no threads and runs everything inline.
     */
    explicit ThreadPool(unsigned threads);

    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Resolved worker count (>= 1). */
    unsigned size() const { return size_; }

    /**
     * Run fn(shard) for every shard in [0, shards) and block until all
     * complete. The calling thread participates, so a pool of size N
     * uses at most N OS threads in total. fn must not throw and must
     * not re-enter parallelFor on the same pool.
     */
    void parallelFor(size_t shards, const std::function<void(size_t)> &fn);

    /** std::thread::hardware_concurrency(), clamped to >= 1. */
    static unsigned hardwareThreads();

  private:
    void workerLoop(unsigned index);
    void runShards(unsigned long generation, unsigned index);

    unsigned size_;
    std::vector<std::thread> workers_;

    std::mutex mutex_;
    std::condition_variable start_cv_;
    std::condition_variable done_cv_;
    const std::function<void(size_t)> *job_ = nullptr;
    size_t job_shards_ = 0;
    size_t pending_shards_ = 0;
    /**
     * Per-shard claim flags for the current job. Worker i claims shard
     * i first and only then steals unclaimed shards (ascending from its
     * own), so across repeated parallelFor calls — the per-tick phases
     * of the engine — a shard's working set stays with the same thread
     * (and core) instead of migrating on every dispatch, while a
     * stalled worker still cannot leave work stranded.
     */
    std::vector<char> claimed_;
    unsigned long generation_ = 0;
    bool stop_ = false;
};

} // namespace util
} // namespace nps

#endif // NPS_UTIL_THREAD_POOL_H
