/**
 * @file
 * Lightweight statistics accumulators used throughout the simulator for
 * metric collection: streaming mean/variance, min/max, rate counters, and
 * exact percentiles over retained samples.
 */

#ifndef NPS_UTIL_STATS_H
#define NPS_UTIL_STATS_H

#include <cstddef>
#include <vector>

namespace nps {
namespace util {

/**
 * Streaming scalar accumulator (Welford's algorithm).
 *
 * Tracks count, mean, variance, min, and max in O(1) space; suitable for
 * per-interval metrics over long simulations.
 */
class RunningStats
{
  public:
    RunningStats() = default;

    /** Add one observation. */
    void add(double x);

    /** Merge another accumulator into this one (parallel-safe reduce). */
    void merge(const RunningStats &other);

    /** Reset to the empty state. */
    void clear();

    /** @return number of observations added. */
    size_t count() const { return count_; }

    /** @return arithmetic mean, or 0 when empty. */
    double mean() const { return count_ ? mean_ : 0.0; }

    /** @return sum of all observations. */
    double sum() const { return mean_ * static_cast<double>(count_); }

    /** @return population variance, or 0 when fewer than 2 samples. */
    double variance() const;

    /** @return population standard deviation. */
    double stddev() const;

    /** @return smallest observation, or +inf when empty. */
    double min() const { return min_; }

    /** @return largest observation, or -inf when empty. */
    double max() const { return max_; }

  private:
    size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_;
    double max_;
};

/**
 * Ratio counter for violation-style metrics: the fraction of events that
 * satisfied some predicate (e.g., intervals in which a power budget was
 * exceeded).
 */
class RateCounter
{
  public:
    /** Record one event; @p hit marks whether the predicate held. */
    void
    record(bool hit)
    {
        ++total_;
        if (hit)
            ++hits_;
    }

    /** @return number of recorded events. */
    size_t total() const { return total_; }

    /** @return number of events for which the predicate held. */
    size_t hits() const { return hits_; }

    /** @return hits()/total() in [0,1], or 0 when no events recorded. */
    double rate() const;

    /** Merge another counter into this one. */
    void
    merge(const RateCounter &other)
    {
        total_ += other.total_;
        hits_ += other.hits_;
    }

    /** Reset to the empty state. */
    void
    clear()
    {
        total_ = 0;
        hits_ = 0;
    }

    /** Overwrite the counters verbatim (checkpoint restore only). */
    void
    restore(size_t total, size_t hits)
    {
        total_ = total;
        hits_ = hits;
    }

  private:
    size_t total_ = 0;
    size_t hits_ = 0;
};

/**
 * Sample set with exact quantiles. Retains all samples; intended for
 * analysis passes (benchmark reporting), not for hot simulation loops.
 */
class SampleSet
{
  public:
    /** Add one observation. */
    void add(double x);

    /** @return number of observations. */
    size_t count() const { return samples_.size(); }

    /** @return arithmetic mean, or 0 when empty. */
    double mean() const;

    /**
     * @return the q-quantile (q in [0,1]) with linear interpolation
     * between order statistics; 0 when empty.
     */
    double quantile(double q) const;

    /** @return the full retained sample vector (unsorted insertion order). */
    const std::vector<double> &samples() const { return samples_; }

    /** Reset to the empty state. */
    void clear() { samples_.clear(); sorted_ = true; }

  private:
    mutable std::vector<double> samples_;
    mutable bool sorted_ = true;
};

/** Clamp @p x into [lo, hi]. @pre lo <= hi */
double clamp(double x, double lo, double hi);

/** Linear interpolation between a and b by t in [0,1]. */
double lerp(double a, double b, double t);

/** @return true when |a - b| <= tol. */
bool nearlyEqual(double a, double b, double tol = 1e-9);

} // namespace util
} // namespace nps

#endif // NPS_UTIL_STATS_H
