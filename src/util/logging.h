/**
 * @file
 * Minimal logging and error-reporting facilities.
 *
 * Follows the gem5 convention of distinguishing fatal() (user error: bad
 * configuration or arguments; clean exit) from panic() (internal invariant
 * broken; abort), plus warn()/inform() status channels.
 */

#ifndef NPS_UTIL_LOGGING_H
#define NPS_UTIL_LOGGING_H

#include <cstdarg>
#include <string>

namespace nps {
namespace util {

/** Severity of a log message. */
enum class LogLevel
{
    Debug,
    Info,
    Warn,
    Error,
};

/**
 * Set the global minimum level that will be emitted to stderr.
 * Defaults to LogLevel::Warn so library users see a quiet console.
 */
void setLogLevel(LogLevel level);

/** @return the current global minimum log level. */
LogLevel logLevel();

/** Canonical lower-case name of a level ("debug", "info", ...). */
const char *logLevelName(LogLevel level);

/**
 * Parse a level name as produced by logLevelName(). @return true and
 * set @p out on success; false (leaving @p out untouched) otherwise.
 */
bool logLevelFromName(const std::string &name, LogLevel &out);

/** Emit a printf-style message at the given level. */
void logf(LogLevel level, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

/** Informational status message (LogLevel::Info). */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Suspicious-but-survivable condition (LogLevel::Warn). */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Unrecoverable user error (bad configuration, invalid arguments).
 * Prints the message and exits with status 1.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Internal invariant violation: a bug in this library, never the user's
 * fault. Prints the message and aborts (so a core/debugger can catch it).
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Format a printf-style message into a std::string. */
std::string vformat(const char *fmt, va_list args);

} // namespace util
} // namespace nps

#endif // NPS_UTIL_LOGGING_H
