#include "util/logging.h"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace nps {
namespace util {

namespace {

LogLevel global_level = LogLevel::Warn;

void
emit(LogLevel level, const std::string &msg)
{
    if (level < global_level)
        return;
    std::fprintf(stderr, "[nps:%s] %s\n", logLevelName(level),
                 msg.c_str());
}

} // namespace

const char *
logLevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info:  return "info";
      case LogLevel::Warn:  return "warn";
      case LogLevel::Error: return "error";
    }
    return "?";
}

bool
logLevelFromName(const std::string &name, LogLevel &out)
{
    for (LogLevel l : {LogLevel::Debug, LogLevel::Info, LogLevel::Warn,
                       LogLevel::Error}) {
        if (name == logLevelName(l)) {
            out = l;
            return true;
        }
    }
    return false;
}

void
setLogLevel(LogLevel level)
{
    global_level = level;
}

LogLevel
logLevel()
{
    return global_level;
}

std::string
vformat(const char *fmt, va_list args)
{
    va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (needed < 0)
        return std::string(fmt);
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

void
logf(LogLevel level, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    emit(level, vformat(fmt, args));
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    emit(LogLevel::Info, vformat(fmt, args));
    va_end(args);
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    emit(LogLevel::Warn, vformat(fmt, args));
    va_end(args);
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::fprintf(stderr, "[nps:fatal] %s\n", vformat(fmt, args).c_str());
    va_end(args);
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::fprintf(stderr, "[nps:panic] %s\n", vformat(fmt, args).c_str());
    va_end(args);
    std::abort();
}

} // namespace util
} // namespace nps
