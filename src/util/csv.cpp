#include "util/csv.h"

#include <fstream>
#include <ostream>
#include <sstream>

#include "util/logging.h"

namespace nps {
namespace util {

CsvDocument
parseCsv(const std::string &text)
{
    CsvDocument doc;
    std::vector<std::string> row;
    std::string field;
    bool in_quotes = false;
    bool row_has_data = false;

    auto push_field = [&]() {
        row.push_back(field);
        field.clear();
        row_has_data = true;
    };
    auto push_row = [&]() {
        push_field();
        doc.rows.push_back(std::move(row));
        row.clear();
        row_has_data = false;
    };

    for (size_t i = 0; i < text.size(); ++i) {
        char c = text[i];
        if (in_quotes) {
            if (c == '"') {
                if (i + 1 < text.size() && text[i + 1] == '"') {
                    field.push_back('"');
                    ++i;
                } else {
                    in_quotes = false;
                }
            } else {
                field.push_back(c);
            }
        } else if (c == '"') {
            in_quotes = true;
        } else if (c == ',') {
            push_field();
        } else if (c == '\n') {
            push_row();
        } else if (c == '\r') {
            // Swallow; a following \n terminates the row, a bare \r is
            // treated as a row terminator too.
            if (i + 1 >= text.size() || text[i + 1] != '\n')
                push_row();
        } else {
            field.push_back(c);
        }
    }
    if (in_quotes)
        fatal("parseCsv: unterminated quoted field");
    if (!field.empty() || row_has_data || !row.empty())
        push_row();
    return doc;
}

CsvDocument
readCsvFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("readCsvFile: cannot open %s", path.c_str());
    std::ostringstream ss;
    ss << in.rdbuf();
    return parseCsv(ss.str());
}

std::string
csvEscape(const std::string &field)
{
    bool needs_quote = field.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quote)
        return field;
    std::string out = "\"";
    for (char c : field) {
        if (c == '"')
            out += "\"\"";
        else
            out.push_back(c);
    }
    out.push_back('"');
    return out;
}

std::string
CsvWriter::toField(double v)
{
    std::ostringstream ss;
    ss.precision(10);
    ss << v;
    return ss.str();
}

std::string
CsvWriter::toField(int v)
{
    return std::to_string(v);
}

std::string
CsvWriter::toField(long v)
{
    return std::to_string(v);
}

std::string
CsvWriter::toField(unsigned v)
{
    return std::to_string(v);
}

std::string
CsvWriter::toField(unsigned long v)
{
    return std::to_string(v);
}

void
CsvWriter::writeField(const std::string &field, bool &first)
{
    if (!first)
        out_ << ',';
    first = false;
    out_ << csvEscape(field);
}

void
CsvWriter::endRow()
{
    out_ << '\n';
}

void
CsvWriter::rowFromFields(const std::vector<std::string> &fields)
{
    bool first = true;
    for (const auto &f : fields)
        writeField(f, first);
    endRow();
}

} // namespace util
} // namespace nps
