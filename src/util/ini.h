/**
 * @file
 * Minimal INI parser/writer used for experiment configuration files.
 *
 * Supported syntax: `[section]` headers, `key = value` pairs, `#` or
 * `;` full-line comments, blank lines. Values keep internal spaces;
 * leading/trailing whitespace is trimmed. Duplicate keys take the last
 * value; duplicate sections merge.
 */

#ifndef NPS_UTIL_INI_H
#define NPS_UTIL_INI_H

#include <map>
#include <string>
#include <vector>

namespace nps {
namespace util {

/**
 * A parsed INI document.
 */
class IniDocument
{
  public:
    /** @return true when [section] key exists. */
    bool has(const std::string &section, const std::string &key) const;

    /** @return the raw value, or @p fallback when absent. */
    std::string get(const std::string &section, const std::string &key,
                    const std::string &fallback = "") const;

    /** Typed getters; fatal() on malformed values. */
    double getDouble(const std::string &section, const std::string &key,
                     double fallback) const;
    long getInt(const std::string &section, const std::string &key,
                long fallback) const;
    bool getBool(const std::string &section, const std::string &key,
                 bool fallback) const;

    /** Set a value (creates the section as needed). */
    void set(const std::string &section, const std::string &key,
             const std::string &value);

    /** Register a (possibly empty) section. */
    void addSection(const std::string &section);

    /** Section names, in insertion order. */
    const std::vector<std::string> &sections() const
    {
        return section_order_;
    }

    /** Keys of one section, in insertion order (empty when absent). */
    std::vector<std::string> keys(const std::string &section) const;

    /** Render back to INI text. */
    std::string toText() const;

  private:
    struct Entry
    {
        std::vector<std::string> key_order;
        std::map<std::string, std::string> values;
    };
    std::map<std::string, Entry> sections_;
    std::vector<std::string> section_order_;
};

/** Parse INI text; fatal() on malformed lines. */
IniDocument parseIni(const std::string &text);

/** Read and parse an INI file; fatal() on IO failure. */
IniDocument readIniFile(const std::string &path);

} // namespace util
} // namespace nps

#endif // NPS_UTIL_INI_H
