#include "util/json.h"

#include <cmath>
#include <cstdint>
#include <cstdio>

namespace nps {
namespace util {

std::string
jsonQuote(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out.push_back('"');
    for (unsigned char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(static_cast<char>(c));
            }
        }
    }
    out.push_back('"');
    return out;
}

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null";
    // Integral doubles (counters, tick counts) print as integers so the
    // common case stays readable and byte-stable.
    if (v == static_cast<double>(static_cast<std::int64_t>(v))) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
        return buf;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace util
} // namespace nps
