/**
 * @file
 * Tiny JSON emission helpers. The exporters in this codebase write JSON
 * by hand (no third-party dependency); these helpers keep the quoting
 * and number formatting consistent across them.
 */

#ifndef NPS_UTIL_JSON_H
#define NPS_UTIL_JSON_H

#include <string>

namespace nps {
namespace util {

/**
 * @return @p s as a double-quoted JSON string literal with the
 * mandatory escapes (backslash, quote, control characters) applied.
 */
std::string jsonQuote(const std::string &s);

/**
 * Format a double as a JSON number: integral values without a decimal
 * point, everything else via "%.17g" (exact round-trip). Non-finite
 * values (not representable in JSON) are emitted as null.
 */
std::string jsonNumber(double v);

} // namespace util
} // namespace nps

#endif // NPS_UTIL_JSON_H
