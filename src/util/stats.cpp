#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"

namespace nps {
namespace util {

void
RunningStats::add(double x)
{
    if (count_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    double n1 = static_cast<double>(count_);
    double n2 = static_cast<double>(other.count_);
    double delta = other.mean_ - mean_;
    double n = n1 + n2;
    mean_ += delta * n2 / n;
    m2_ += other.m2_ + delta * delta * n1 * n2 / n;
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void
RunningStats::clear()
{
    *this = RunningStats();
}

double
RunningStats::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
RateCounter::rate() const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(hits_) / static_cast<double>(total_);
}

void
SampleSet::add(double x)
{
    samples_.push_back(x);
    sorted_ = false;
}

double
SampleSet::mean() const
{
    if (samples_.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : samples_)
        sum += x;
    return sum / static_cast<double>(samples_.size());
}

double
SampleSet::quantile(double q) const
{
    if (samples_.empty())
        return 0.0;
    if (q < 0.0 || q > 1.0)
        panic("SampleSet::quantile(%f): q out of [0,1]", q);
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
    double pos = q * static_cast<double>(samples_.size() - 1);
    size_t lo = static_cast<size_t>(pos);
    size_t hi = std::min(lo + 1, samples_.size() - 1);
    double frac = pos - static_cast<double>(lo);
    return samples_[lo] + (samples_[hi] - samples_[lo]) * frac;
}

double
clamp(double x, double lo, double hi)
{
    if (lo > hi)
        panic("clamp: lo %f > hi %f", lo, hi);
    return std::min(hi, std::max(lo, x));
}

double
lerp(double a, double b, double t)
{
    return a + (b - a) * t;
}

bool
nearlyEqual(double a, double b, double tol)
{
    return std::fabs(a - b) <= tol;
}

} // namespace util
} // namespace nps
