/**
 * @file
 * The one CRC32 implementation of the repository (IEEE 802.3 /
 * zlib-compatible: polynomial 0xEDB88320 reflected, init and final XOR
 * 0xFFFFFFFF).
 *
 * Both durable formats depend on it byte-for-byte: the checkpoint
 * container protects every snapshot section with it (src/ckpt/), and
 * the NPSF wire format seals every frame with it (src/stream/), which
 * now includes the distributed control plane's budget/violation/
 * reference/telemetry payloads (docs/DISTRIBUTED.md). Consolidated
 * here so the two stacks can never drift apart; the known-answer
 * vectors are pinned in tests/util/test_crc32.cpp.
 */

#ifndef NPS_UTIL_CRC32_H
#define NPS_UTIL_CRC32_H

#include <array>
#include <cstddef>
#include <cstdint>

namespace nps {
namespace util {

namespace detail {

inline std::array<uint32_t, 256>
makeCrc32Table()
{
    std::array<uint32_t, 256> table{};
    for (uint32_t i = 0; i < 256; ++i) {
        uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

} // namespace detail

/**
 * Continue a CRC32 over @p len bytes from a previous partial value.
 * Pass the result of a prior call as @p crc to checksum scattered
 * byte ranges as one logical stream; start from 0.
 */
inline uint32_t
crc32Update(uint32_t crc, const void *data, size_t len)
{
    static const std::array<uint32_t, 256> table = detail::makeCrc32Table();
    uint32_t c = crc ^ 0xFFFFFFFFu;
    const auto *p = static_cast<const unsigned char *>(data);
    for (size_t i = 0; i < len; ++i)
        c = table[(c ^ p[i]) & 0xFF] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

/** CRC32 of one contiguous byte range. */
inline uint32_t
crc32(const void *data, size_t len)
{
    return crc32Update(0, data, len);
}

} // namespace util
} // namespace nps

#endif // NPS_UTIL_CRC32_H
