/**
 * @file
 * ChunkedVector: an append-only sequence allocated chunk-at-a-time.
 *
 * A plain std::vector doubles by reallocating and moving every element,
 * which at fleet scale turns high-rate append paths (control-bus event
 * mirroring, per-tick logs) into repeated large copies and transient 2x
 * memory spikes. ChunkedVector allocates fixed-size chunks and never
 * moves an element once written: push_back is amortized one small
 * allocation per kChunk elements, addresses are stable for the lifetime
 * of the container (safe to hold pointers across appends, which the
 * merged-view code in bus/control_log.cpp does), and memory grows in
 * kChunk steps instead of doubling.
 *
 * Deliberately minimal: append, indexed access, iteration, clear. Not a
 * drop-in std::vector replacement and not thread-safe — single-writer,
 * like the per-link buffers it backs (docs/PERFORMANCE.md).
 */

#ifndef NPS_UTIL_CHUNKED_VECTOR_H
#define NPS_UTIL_CHUNKED_VECTOR_H

#include <cstddef>
#include <iterator>
#include <memory>
#include <vector>

namespace nps {
namespace util {

/**
 * Append-only chunked sequence with stable element addresses.
 *
 * @tparam T      element type
 * @tparam kChunk elements per chunk (power of two keeps the index
 *                arithmetic to a shift and a mask)
 */
template <typename T, size_t kChunk = 1024>
class ChunkedVector
{
    static_assert(kChunk > 0 && (kChunk & (kChunk - 1)) == 0,
                  "kChunk must be a power of two");

  public:
    /** Number of elements. */
    size_t size() const { return size_; }

    /** True when empty. */
    bool empty() const { return size_ == 0; }

    /** Element @p i. @pre i < size() (unchecked, like std::vector). */
    T &
    operator[](size_t i)
    {
        return chunks_[i / kChunk][i & (kChunk - 1)];
    }

    const T &
    operator[](size_t i) const
    {
        return chunks_[i / kChunk][i & (kChunk - 1)];
    }

    /** Last element. @pre !empty() */
    T &back() { return (*this)[size_ - 1]; }
    const T &back() const { return (*this)[size_ - 1]; }

    /** Append a copy of @p v; never moves existing elements. */
    void
    push_back(const T &v)
    {
        emplace_back(v);
    }

    /** Construct an element in place at the end. */
    template <typename... Args>
    T &
    emplace_back(Args &&...args)
    {
        const size_t slot = size_ & (kChunk - 1);
        if (slot == 0 && size_ / kChunk == chunks_.size())
            chunks_.push_back(std::make_unique<T[]>(kChunk));
        T &ref = chunks_[size_ / kChunk][slot];
        ref = T(std::forward<Args>(args)...);
        ++size_;
        return ref;
    }

    /**
     * Drop all elements. Keeps the allocated chunks for reuse — a
     * restore path that clears and refills does not churn the heap.
     */
    void clear() { size_ = 0; }

    /** Pre-allocate chunks for at least @p n elements. */
    void
    reserve(size_t n)
    {
        const size_t need = (n + kChunk - 1) / kChunk;
        while (chunks_.size() < need)
            chunks_.push_back(std::make_unique<T[]>(kChunk));
    }

    /** Forward const iterator (enough for range-for and std:: algorithms
     * over immutable views). */
    class const_iterator
    {
      public:
        using iterator_category = std::forward_iterator_tag;
        using value_type = T;
        using difference_type = std::ptrdiff_t;
        using pointer = const T *;
        using reference = const T &;

        const_iterator() = default;
        const_iterator(const ChunkedVector *v, size_t i) : v_(v), i_(i) {}

        reference operator*() const { return (*v_)[i_]; }
        pointer operator->() const { return &(*v_)[i_]; }

        const_iterator &
        operator++()
        {
            ++i_;
            return *this;
        }

        const_iterator
        operator++(int)
        {
            const_iterator tmp = *this;
            ++i_;
            return tmp;
        }

        bool
        operator==(const const_iterator &o) const
        {
            return v_ == o.v_ && i_ == o.i_;
        }

        bool operator!=(const const_iterator &o) const
        {
            return !(*this == o);
        }

      private:
        const ChunkedVector *v_ = nullptr;
        size_t i_ = 0;
    };

    const_iterator begin() const { return const_iterator(this, 0); }
    const_iterator end() const { return const_iterator(this, size_); }

  private:
    std::vector<std::unique_ptr<T[]>> chunks_;
    size_t size_ = 0;
};

} // namespace util
} // namespace nps

#endif // NPS_UTIL_CHUNKED_VECTOR_H
