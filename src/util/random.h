/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * The whole simulator must be reproducible from a single seed: the trace
 * generator, the randomized policies, and the failure-injection tests all
 * draw from Rng instances derived deterministically from named streams, so
 * results never depend on std::random_device or on evaluation order across
 * translation units.
 */

#ifndef NPS_UTIL_RANDOM_H
#define NPS_UTIL_RANDOM_H

#include <cstdint>
#include <string_view>

namespace nps {
namespace util {

/**
 * A small, fast, deterministic PRNG (xoshiro256** with SplitMix64 seeding).
 *
 * Not cryptographic; statistically solid for simulation workloads.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed. The same seed always yields the same
     * stream on every platform. */
    explicit Rng(uint64_t seed);

    /**
     * Construct a named substream: hashes @p stream_name into the seed so
     * that, e.g., the "trace" stream and the "policy" stream of the same
     * experiment never share state.
     */
    Rng(uint64_t seed, std::string_view stream_name);

    /** @return the next raw 64-bit value. */
    uint64_t next();

    /** @return a double uniformly distributed in [0, 1). */
    double uniform();

    /** @return a double uniformly distributed in [lo, hi). */
    double uniform(double lo, double hi);

    /** @return an integer uniformly distributed in [0, n). @pre n > 0 */
    uint64_t below(uint64_t n);

    /** @return a standard normal deviate (Box-Muller, no caching). */
    double gaussian();

    /** @return a normal deviate with the given mean and stddev. */
    double gaussian(double mean, double stddev);

    /** @return true with probability @p p (clamped to [0,1]). */
    bool bernoulli(double p);

    /** Copy the raw 256-bit generator state out (checkpointing). */
    void
    getState(uint64_t out[4]) const
    {
        for (int i = 0; i < 4; ++i)
            out[i] = state_[i];
    }

    /** Overwrite the raw generator state (checkpoint restore). */
    void
    setState(const uint64_t in[4])
    {
        for (int i = 0; i < 4; ++i)
            state_[i] = in[i];
    }

    /** Fisher-Yates shuffle of [first, last). */
    template <typename It>
    void
    shuffle(It first, It last)
    {
        auto n = static_cast<uint64_t>(last - first);
        for (uint64_t i = n; i > 1; --i) {
            uint64_t j = below(i);
            using std::swap;
            swap(first[i - 1], first[j]);
        }
    }

  private:
    uint64_t state_[4];
};

/** 64-bit FNV-1a hash, used to derive named substream seeds. */
uint64_t hashString(std::string_view s);

} // namespace util
} // namespace nps

#endif // NPS_UTIL_RANDOM_H
