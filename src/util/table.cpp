#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace nps {
namespace util {

Table::Table(std::string caption)
    : caption_(std::move(caption))
{
}

void
Table::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
Table::row(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

void
Table::separator()
{
    rows_.emplace_back();
}

std::string
Table::num(double v, int decimals)
{
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(decimals) << v;
    return ss.str();
}

std::string
Table::pct(double fraction, int decimals)
{
    return num(fraction * 100.0, decimals);
}

void
Table::print(std::ostream &out) const
{
    // Compute column widths over header + all rows.
    std::vector<size_t> widths;
    auto grow = [&](const std::vector<std::string> &cells) {
        if (cells.size() > widths.size())
            widths.resize(cells.size(), 0);
        for (size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    grow(header_);
    for (const auto &r : rows_)
        grow(r);

    bool last_was_rule = false;
    auto print_rule = [&]() {
        if (last_was_rule)
            return;
        out << '+';
        for (size_t w : widths)
            out << std::string(w + 2, '-') << '+';
        out << '\n';
        last_was_rule = true;
    };
    auto print_cells = [&](const std::vector<std::string> &cells) {
        last_was_rule = false;
        out << '|';
        for (size_t i = 0; i < widths.size(); ++i) {
            std::string cell = i < cells.size() ? cells[i] : "";
            out << ' ' << cell
                << std::string(widths[i] - cell.size(), ' ') << " |";
        }
        out << '\n';
    };

    if (!caption_.empty())
        out << caption_ << '\n';
    print_rule();
    if (!header_.empty()) {
        print_cells(header_);
        print_rule();
    }
    for (const auto &r : rows_) {
        if (r.empty())
            print_rule();
        else
            print_cells(r);
    }
    print_rule();
}

} // namespace util
} // namespace nps
