/**
 * @file
 * The NPSF wire format: framed utilization samples for the online
 * telemetry engine (docs/STREAMING.md).
 *
 * Every frame is
 *
 *     magic "NPSF" (4 bytes) | type (1 byte) | payload | CRC32 (4 bytes)
 *
 * with all integers little-endian, demand values bit-cast IEEE-754
 * doubles (the stream replays bit-exactly), and the CRC taken over type
 * plus payload. Telemetry frame types:
 *
 *     'H' hello    u32 version, u32 streams, u64 start_tick,
 *                  u64 total_ticks (0 = open-ended)
 *     'S' sample   u64 tick, u32 stream (VM id), f64 demand
 *     'T' tick-end u64 tick  — all samples for @p tick have been sent
 *     'B' bye      u64 final_tick — one past the last covered tick
 *
 * The distributed control plane (docs/DISTRIBUTED.md) rides the same
 * format. Control-message frames carry one bus::WireMsg each — the four
 * tags select the ControlLink channel kind:
 *
 *     'G' budget     u32 link, u64 tick, u64 seq, f64 value, f64 aux,
 *     'V' violation  u8 flags, u32 trace       (41 bytes, all four)
 *     'R' reference
 *     'Y' telemetry
 *
 * and the supervision/barrier frames:
 *
 *     'K' tick-start u64 tick            — supervisor releases a tick
 *     'D' tick-done  u64 tick, u32 rank  — a rank finished a tick
 *     'P' peer-down  u32 rank            — a rank died (hub broadcast)
 *     'U' peer-up    u32 rank, u64 tick  — a rank rejoined at @p tick
 *     'J' join       u32 rank, u32 version, u32 links, u32 digest
 *                                        — handshake + wiring digest
 *     'M' metrics    u32 rank, u64 tick, u32 len, bytes
 *                                        — a rank's registry snapshot
 *                                          (the one variable-length
 *                                          frame; len capped at 1 MiB)
 *     'E' heartbeat  u32 rank, u64 tick  — I-am-alive keepalive, sent
 *                                          when the socket would
 *                                          otherwise sit idle
 *                                          (docs/NETWORK_FAULTS.md)
 *
 * The decoder is pure over byte buffers (no I/O), accepts input split at
 * arbitrary boundaries, and resynchronizes after garbage by scanning
 * forward one byte at a time for the next valid frame — a corrupted,
 * truncated, or injected byte costs the frames it overlaps, never the
 * process. Every anomaly is counted in DecodeStats.
 */

#ifndef NPS_STREAM_FRAME_H
#define NPS_STREAM_FRAME_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "bus/transport.h"

namespace nps {
namespace stream {

/**
 * Wire protocol version emitted and accepted. v2 widened the four
 * control-message frames with the cascade trace id and added the 'M'
 * metrics-snapshot supervision frame.
 */
inline constexpr uint32_t kProtocolVersion = 2;

/** Cap on the 'M' frame's variable payload (bytes). */
inline constexpr uint32_t kMaxMetricsBytes = 1u << 20;

/** Frame type tags (the on-wire type byte). */
enum class FrameType : uint8_t
{
    Hello = 'H',
    Sample = 'S',
    TickEnd = 'T',
    Bye = 'B',
    Budget = 'G',
    Violation = 'V',
    Reference = 'R',
    Telemetry = 'Y',
    TickStart = 'K',
    TickDone = 'D',
    PeerDown = 'P',
    PeerUp = 'U',
    Join = 'J',
    Metrics = 'M',
    Heartbeat = 'E',
};

/** @return true when @p type is one of the four control-message tags
 * ('G'/'V'/'R'/'Y'), each carrying one bus::WireMsg. */
bool isCtrlFrame(FrameType type);

/** 'H' payload: the session handshake. */
struct HelloFrame
{
    uint32_t version = kProtocolVersion;
    uint32_t streams = 0;    //!< number of telemetry streams (== VMs)
    uint64_t start_tick = 0; //!< first tick the feeder will cover
    uint64_t total_ticks = 0; //!< ticks the feeder intends to send (0 = open)
};

/** 'S' payload: one stream's demand for one tick. */
struct SampleFrame
{
    uint64_t tick = 0;
    uint32_t stream = 0; //!< VM id
    double demand = 0.0;
};

/** 'J' payload: the distributed-run handshake. */
struct JoinFrame
{
    uint32_t rank = 0;
    uint32_t version = kProtocolVersion;
    uint32_t links = 0;  //!< control links registered by the sender
    uint32_t digest = 0; //!< CRC32 over the registered link names
};

/**
 * One decoded frame (tagged union). @c tick serves TickEnd, Bye,
 * TickStart, TickDone, PeerUp and Metrics; @c rank serves TickDone,
 * PeerDown, PeerUp and Metrics; @c ctrl serves the four
 * control-message types; @c bytes carries the Metrics payload.
 */
struct Frame
{
    FrameType type = FrameType::Hello;
    HelloFrame hello;
    SampleFrame sample;
    bus::WireMsg ctrl;
    JoinFrame join;
    uint64_t tick = 0;
    uint32_t rank = 0;
    std::vector<uint8_t> bytes;
};

/** Malformed-input tallies kept by the decoder. */
struct DecodeStats
{
    uint64_t frames = 0;       //!< frames decoded successfully
    uint64_t resync_bytes = 0; //!< bytes skipped hunting for a frame
    uint64_t bad_crc = 0;      //!< frames rejected on checksum
    uint64_t bad_type = 0;     //!< magic followed by an unknown type
};

/**
 * Serializes frames into an internal byte buffer (no I/O; the caller
 * flushes data() however it likes and clear()s between flushes).
 */
class FrameWriter
{
  public:
    void hello(const HelloFrame &h);
    void sample(const SampleFrame &s);
    void tickEnd(uint64_t tick);
    void bye(uint64_t final_tick);

    /// @name Distributed control plane (docs/DISTRIBUTED.md)
    /// @{

    /** One control message; @p type must satisfy isCtrlFrame(). */
    void ctrl(FrameType type, const bus::WireMsg &m);

    void tickStart(uint64_t tick);
    void tickDone(uint64_t tick, uint32_t rank);
    void peerDown(uint32_t rank);
    void peerUp(uint32_t rank, uint64_t tick);
    void join(const JoinFrame &j);

    /**
     * One rank's serialized metrics snapshot as of the @p tick barrier;
     * @p len must stay under kMaxMetricsBytes.
     */
    void metrics(uint32_t rank, uint64_t tick, const uint8_t *data,
                 size_t len);

    /** Keepalive from @p rank, last completed tick @p tick. */
    void heartbeat(uint32_t rank, uint64_t tick);

    /// @}

    const uint8_t *data() const { return buf_.data(); }
    size_t size() const { return buf_.size(); }
    const std::vector<uint8_t> &buffer() const { return buf_; }
    void clear() { buf_.clear(); }

  private:
    void frame(FrameType type, const uint8_t *payload, size_t len);

    std::vector<uint8_t> buf_;
};

/**
 * Incremental frame parser. feed() arbitrary byte chunks, then drain
 * complete frames with next(); partial frames wait in the buffer for
 * more input. Never throws, never aborts: garbage is skipped and
 * counted.
 */
class FrameDecoder
{
  public:
    /** Append @p len raw bytes to the parse buffer. */
    void feed(const void *data, size_t len);

    /**
     * Decode the next complete frame into @p out.
     * @return false when the buffer holds no complete frame (call
     *         feed() with more input and retry).
     */
    bool next(Frame &out);

    /** Anomaly counters (monotonic over the decoder's lifetime). */
    const DecodeStats &stats() const { return stats_; }

    /** Bytes buffered but not yet consumed (an unfinished frame, or
     * garbage not yet skipped). Non-zero at end-of-input means the
     * stream was cut mid-frame. */
    size_t buffered() const { return buf_.size() - pos_; }

  private:
    std::vector<uint8_t> buf_;
    size_t pos_ = 0;
    DecodeStats stats_;
};

} // namespace stream
} // namespace nps

#endif // NPS_STREAM_FRAME_H
