/**
 * @file
 * Minimal blocking-socket plumbing for the telemetry daemon and feeder:
 * endpoint specs parsed from the command line, one connection at a
 * time. Spec grammar (shared by `npsim --serve` and `npsfeed --to`):
 *
 *     stdin        the daemon reads frames from fd 0 (feeder: stdout)
 *     unix:PATH    a Unix-domain stream socket at PATH
 *     tcp:PORT     loopback TCP (daemon side: bind 127.0.0.1:PORT)
 *     tcp:HOST:PORT  (feeder side: connect to HOST:PORT)
 */

#ifndef NPS_STREAM_NET_H
#define NPS_STREAM_NET_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace nps {
namespace stream {

/** @return true when @p spec names the stdin/stdout transport. */
bool isStdioSpec(const std::string &spec);

/**
 * Daemon side: bind + listen on @p spec, block for exactly one peer,
 * close the listener, and return the connected descriptor. A Unix
 * socket path is unlinked first (stale socket from a killed daemon)
 * and again once the peer is accepted. Fatal on any socket error.
 */
int serveAndAccept(const std::string &spec);

/**
 * Hub side (distributed runs): bind + listen on @p spec with a backlog
 * of @p backlog and return the *listening* descriptor, so the caller
 * can accept several peers (and re-accept restarted ones). A stale
 * Unix socket path is unlinked first; the caller unlinks it again when
 * done. @p spec must not be stdio.
 *
 * A TCP bind that loses a race for the port (EADDRINUSE — typically a
 * just-killed hub still in TIME_WAIT despite SO_REUSEADDR) is retried
 * a few times with a short growing backoff before giving up. `tcp:0`
 * asks the kernel for an ephemeral port; pass @p bound_port to learn
 * which port was actually bound (also filled for fixed ports). Fatal
 * on any other socket error.
 */
int listenOn(const std::string &spec, int backlog = 8,
             int *bound_port = nullptr);

/** Block for one peer on @p listener (from listenOn). Fatal on error. */
int acceptOne(int listener);

/**
 * Feeder side: connect to @p spec and return the descriptor. Retries
 * for up to @p wait_ms (the daemon may still be binding); fatal once
 * the budget is exhausted.
 */
int connectTo(const std::string &spec, unsigned wait_ms = 5000);

/**
 * Rank side (distributed runs): connect to @p spec with bounded
 * exponential backoff — attempt k sleeps base_ms * 2^k capped at
 * @p max_ms, plus deterministic jitter drawn from @p jitter_seed so a
 * fleet of reconnecting ranks does not stampede the hub in lockstep.
 * Each attempt itself waits up to @p attempt_wait_ms (connectTo-style
 * inner retry is NOT used; one connect(2) per attempt). Fatal after
 * @p attempts failures. See docs/NETWORK_FAULTS.md.
 */
int connectWithBackoff(const std::string &spec, unsigned attempts,
                       unsigned base_ms, unsigned max_ms,
                       uint64_t jitter_seed);

/** write(2) until @p len bytes are out. @return false on a dead peer. */
bool writeAll(int fd, const void *data, size_t len);

} // namespace stream
} // namespace nps

#endif // NPS_STREAM_NET_H
