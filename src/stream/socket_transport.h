/**
 * @file
 * SocketTransport: the control plane over real sockets
 * (docs/DISTRIBUTED.md).
 *
 * A distributed run is deterministic lockstep replication: every
 * process — the supervisor (rank 0) and each npsnode child — builds the
 * *identical* full Coordinator from the same plan and steps it tick by
 * tick, so every replica computes every link's message locally. The
 * transport's job is therefore not to move state but to make exactly
 * one process *authoritative* for each link (the rank hosting the
 * sender's management level) and to verify, frame by frame, that all
 * replicas agree:
 *
 *   - a link owned by rank 0 resolves purely locally in every process
 *     (the supervisor cannot outlive the run, so there is no failure
 *     mode to communicate) — nothing goes on the wire;
 *   - a link owned by *this* process broadcasts its computed outcome as
 *     an NPSF control frame and returns the local result;
 *   - a link owned by another rank blocks until the owner's frame
 *     arrives (pumping the socket meanwhile) and fatals if the frame
 *     disagrees with the locally computed outcome — a desync detector;
 *     when the owner is dead the message resolves as an undelivered
 *     drop, feeding the existing lease/fallback degradation ladder.
 *
 * Topology is a star: children connect to the supervisor, which relays
 * each child's control frames to every other live child (per-sender
 * FIFO order is preserved end to end). The same socket carries the
 * per-tick barrier ('K'/'D'), liveness ('P'/'U'), the join handshake
 * ('J', carrying a CRC32 digest of the registered link names so
 * mismatched builds or plans are caught before the first tick), and
 * the final 'B' bye.
 *
 * Threading: all socket traffic happens on the engine thread. The plan
 * validator only lets *global* actors (GM, EM, VMC) be hosted on child
 * ranks, so every remote-owned link resolves from the engine thread;
 * rank-0-owned links, which sharded worker threads may resolve, take
 * the wire-free local path that touches no mutable transport state.
 * This is what keeps distributed runs byte-identical across thread
 * counts without a single lock.
 */

#ifndef NPS_STREAM_SOCKET_TRANSPORT_H
#define NPS_STREAM_SOCKET_TRANSPORT_H

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "bus/transport.h"
#include "stream/frame.h"

namespace nps {
namespace stream {

/**
 * Wire-level frame mangler (docs/NETWORK_FAULTS.md): consulted once per
 * outgoing control frame by the rank that owns the link, so netem's
 * duplication and corruption are real bytes on the wire — a duplicated
 * frame is written twice (the receiver's duplicate window discards the
 * copy), a corrupted frame is preceded by a byte-flipped copy (the NPSF
 * CRC rejects it and the decoder resyncs). Outcome-neutral by
 * construction: both must change nothing about what is delivered.
 */
class WireMangler
{
  public:
    virtual ~WireMangler() = default;

    /** @return true to write @p msg's control frame a second time. */
    virtual bool duplicateCtrl(const bus::WireMsg &msg) = 0;

    /**
     * @return true to precede the clean frame with a byte-flipped copy;
     * @p byte_off receives the raw flip offset (the writer reduces it
     * modulo the frame length).
     */
    virtual bool corruptCtrl(const bus::WireMsg &msg,
                             size_t *byte_off) = 0;
};

/**
 * Supervisor-side view of one peer's connection health
 * (docs/NETWORK_FAULTS.md): Live → Degraded once the peer has been
 * silent past the degrade threshold, Dead once it is disconnected or
 * timed out. (The fourth state of the ladder, "partitioned", is a netem
 * schedule fact layered on top by the runtime, not a socket state.)
 */
enum class PeerHealth
{
    Live,
    Degraded,
    Dead,
};

/** Diagnostic name of a peer-health state. */
const char *peerHealthName(PeerHealth health);

/**
 * bus::Transport over NPSF-framed unix/tcp sockets.
 */
class SocketTransport : public bus::Transport
{
  public:
    /** Wire-traffic tallies (engine-thread only). */
    struct Stats
    {
        uint64_t sent = 0;       //!< control frames written by this rank
        uint64_t received = 0;   //!< control frames consumed
        uint64_t forwarded = 0;  //!< hub: frames relayed between children
        uint64_t duplicates = 0; //!< re-delivered frames discarded
        uint64_t peer_drops = 0; //!< resolves degraded to drops (owner dead)
        uint64_t heartbeats_sent = 0; //!< keepalives written
        uint64_t heartbeats_received = 0; //!< keepalives consumed
        uint64_t peer_timeouts = 0; //!< hub: peers declared dead on silence
    };

    /** Hub side (the supervisor, rank 0). */
    explicit SocketTransport(unsigned timeout_ms = 30000);

    /**
     * Leaf side: rank @p rank (> 0), already connected to the hub over
     * @p fd (ownership taken).
     */
    SocketTransport(int rank, int fd, unsigned timeout_ms = 30000);

    ~SocketTransport() override;

    SocketTransport(const SocketTransport &) = delete;
    SocketTransport &operator=(const SocketTransport &) = delete;

    /// @name bus::Transport
    /// @{
    uint32_t registerLink(bus::ControlLink *link, int owner_rank) override;
    bus::WireMsg resolve(const bus::ControlLink &link,
                         const bus::WireMsg &local) override;
    /// @}

    /** This process's rank. */
    int rank() const { return rank_; }

    /** Links registered so far. */
    uint32_t numLinks() const { return static_cast<uint32_t>(links_.size()); }

    /** CRC32 over the registered link names, in registration order. */
    uint32_t wiringDigest() const { return digest_; }

    /** Wire-traffic tallies. */
    const Stats &stats() const { return stats_; }

    /** @return true when @p rank is connected and not known dead.
     * Rank 0 and this process's own rank are always alive. */
    bool alive(int rank) const;

    /**
     * Route every outgoing control frame of links this rank owns
     * through @p mangler (null detaches). Wiring time, before the
     * engine runs.
     */
    void setWireMangler(WireMangler *mangler) { mangler_ = mangler; }

    /**
     * Emit a heartbeat frame whenever the socket has been send-idle for
     * @p hb_ms milliseconds (0, the default, disables — the wire then
     * carries exactly the pre-heartbeat protocol).
     */
    void setHeartbeat(unsigned hb_ms) { hb_ms_ = hb_ms; }

    /**
     * Hub only: declare a peer dead after @p ms of wall-clock silence
     * (0, the default, disables; the run-wide timeout_ms deadlock guard
     * still applies). A soft-failure detector: the dead rank's links
     * degrade to drops and the run continues, where the deadlock guard
     * would have killed the whole run.
     */
    void setPeerTimeout(unsigned ms) { peer_timeout_ms_ = ms; }

    /**
     * Connection health of @p rank as seen from this process: Dead when
     * disconnected, Degraded when silent past half the configured
     * peer-timeout (or 3 heartbeat intervals when only heartbeats are
     * on), Live otherwise.
     */
    PeerHealth peerHealth(int rank) const;

    /// @name Hub side (rank 0 only)
    /// @{

    /**
     * Register an already-connected, already-verified peer. Used
     * directly by tests driving a socketpair; real runs go through
     * acceptPeer().
     */
    void addPeer(int rank, int fd);

    /**
     * Block for one child on @p listener (from listenOn), read its
     * join frame, and verify protocol version, link count and wiring
     * digest against this replica — fatal on any mismatch, which is
     * what catches a child built from a different plan or binary.
     * @return the joined rank.
     */
    int acceptPeer(int listener);

    /** Release tick @p tick on every live child. */
    void broadcastTickStart(uint64_t tick);

    /**
     * Block until @p rank reports tick @p tick done (pumping and
     * relaying meanwhile). @return false when the rank died instead.
     */
    bool waitTickDone(int rank, uint64_t tick);

    /** Announce a restarted rank to the other children. */
    void broadcastPeerUp(int rank, uint64_t tick);

    /**
     * Send @p rank one peer-down frame per currently-dead rank. A
     * restarted child starts with every other rank presumed alive and
     * would otherwise block forever on a rank that died before it
     * (re)joined; call right after acceptPeer() when restarting.
     */
    void syncLiveness(int rank);

    /** End the run on every live child. */
    void broadcastBye(uint64_t final_tick);

    /**
     * Receives each child's metrics-snapshot ('M') frames. Snapshots
     * are supervision traffic: the hub consumes them for the fleet
     * view and does NOT relay them to other children (unlike control
     * frames, they are per-rank state, not replicated computation).
     */
    using MetricsSink =
        std::function<void(uint32_t rank, uint64_t tick,
                           const std::vector<uint8_t> &bytes)>;

    /** Install the 'M'-frame consumer (wiring time; hub only). */
    void setMetricsSink(MetricsSink sink) { metrics_sink_ = std::move(sink); }

    /// @}

    /// @name Leaf side (rank > 0 only)
    /// @{

    /** Send the join handshake (after every link is registered). */
    void sendJoin();

    /**
     * Block until the supervisor releases tick @p tick. @return false
     * when the run ended (bye) instead.
     */
    bool waitTickStart(uint64_t tick);

    /** Report tick @p tick done to the supervisor. */
    void sendTickDone(uint64_t tick);

    /**
     * Ship this rank's serialized registry snapshot (as of the @p tick
     * barrier) to the supervisor. Engine thread only, like all wire
     * traffic.
     */
    void sendMetricsSnapshot(uint64_t tick, const uint8_t *data,
                             size_t len);

    /** @return true once the supervisor's bye frame arrived. */
    bool byeSeen() const { return bye_seen_; }

    /// @}

  private:
    /** Per-link owner, consumption cursor and pending remote frames. */
    struct LinkState
    {
        bus::ControlLink *link = nullptr;
        int owner = 0;
        uint64_t last_seq = 0;  //!< seq of the last consumed frame
        uint64_t last_tick = 0; //!< tick of the last consumed frame
        bool consumed_any = false;
        std::deque<bus::WireMsg> queue;
    };

    /** One connected peer (the hub for a leaf; children for the hub). */
    struct Peer
    {
        int fd = -1;
        bool alive = false;
        FrameDecoder decoder;
        /** Wall clock of the last bytes read from this peer. */
        std::chrono::steady_clock::time_point last_heard;
    };

    /** Block until any peer has traffic, read it, dispatch frames.
     * Fatal after timeout_ms_ of total silence (deadlock guard); emits
     * heartbeats and applies the peer timeout while waiting. */
    void pumpOnce();

    /** Emit a heartbeat when the send side has idled past hb_ms_. */
    void maybeHeartbeat();

    /** Hub: declare peers silent past peer_timeout_ms_ dead. */
    void checkPeerTimeouts();

    /** Write one control frame, mangled per the attached WireMangler. */
    void writeCtrl(int to_rank, FrameType type, const bus::WireMsg &m);

    /** Route one decoded frame from @p from_rank. */
    void dispatch(int from_rank, const Frame &f);

    /** Append @p writer's bytes to every live child except @p except. */
    void broadcast(const FrameWriter &w, int except);

    /** Write to one peer; a dead child is marked down, not fatal. */
    void writePeer(int rank, const void *data, size_t len);

    /** Mark @p rank dead and tell the surviving children. */
    void markDead(int rank);

    /** Blocking resolve of a frame owned by another live-or-dead rank. */
    bus::WireMsg consumeRemote(LinkState &ls, const bus::WireMsg &local);

    int rank_;
    unsigned timeout_ms_;
    uint32_t digest_ = 0;
    std::vector<LinkState> links_;
    std::map<int, Peer> peers_;
    /** Hub: per-rank (last reported done tick + 1); 0 = none yet. */
    std::map<int, uint64_t> done_plus1_;
    /** Leaf: liveness of the *other* children, learned from the hub's
     * peer-down/up frames (absent = alive). */
    std::map<int, bool> remote_alive_;
    uint64_t tick_start_plus1_ = 0; //!< leaf: last released tick + 1
    bool bye_seen_ = false;
    MetricsSink metrics_sink_; //!< hub: 'M'-frame consumer
    WireMangler *mangler_ = nullptr;
    unsigned hb_ms_ = 0;           //!< heartbeat interval (0 = off)
    unsigned peer_timeout_ms_ = 0; //!< hub peer-silence limit (0 = off)
    unsigned silent_ms_ = 0;       //!< accumulated all-quiet poll time
    std::chrono::steady_clock::time_point last_hb_sent_{};
    Stats stats_;
};

} // namespace stream
} // namespace nps

#endif // NPS_STREAM_SOCKET_TRANSPORT_H
