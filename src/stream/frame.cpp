#include "stream/frame.h"

#include <cstring>

#include "ckpt/snapshot.h"
#include "util/logging.h"

namespace nps {
namespace stream {

namespace {

const uint8_t kMagic[4] = {'N', 'P', 'S', 'F'};
constexpr size_t kMagicLen = 4;
constexpr size_t kHeaderLen = kMagicLen + 1; // magic + type
constexpr size_t kCrcLen = 4;

void
putU32(uint8_t *p, uint32_t v)
{
    p[0] = static_cast<uint8_t>(v);
    p[1] = static_cast<uint8_t>(v >> 8);
    p[2] = static_cast<uint8_t>(v >> 16);
    p[3] = static_cast<uint8_t>(v >> 24);
}

void
putU64(uint8_t *p, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        p[i] = static_cast<uint8_t>(v >> (8 * i));
}

uint32_t
getU32(const uint8_t *p)
{
    return static_cast<uint32_t>(p[0]) |
           static_cast<uint32_t>(p[1]) << 8 |
           static_cast<uint32_t>(p[2]) << 16 |
           static_cast<uint32_t>(p[3]) << 24;
}

uint64_t
getU64(const uint8_t *p)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(p[i]) << (8 * i);
    return v;
}

/** Payload length of @p type, or SIZE_MAX for an unknown type byte. */
size_t
payloadLen(uint8_t type)
{
    switch (type) {
    case 'H':
        return 24;
    case 'S':
        return 20;
    case 'T':
    case 'B':
    case 'K':
        return 8;
    case 'G':
    case 'V':
    case 'R':
    case 'Y':
        // u32 link, u64 tick, u64 seq, f64 x2, u8 flags, u32 trace
        return 41;
    case 'D':
    case 'U':
    case 'E':
        return 12;
    case 'P':
        return 4;
    case 'J':
        return 16;
    case 'M':
        // Variable: u32 rank, u64 tick, u32 len prefix; the caller
        // reads len and extends to 16 + len itself.
        return 16;
    default:
        return SIZE_MAX;
    }
}

uint64_t
doubleBits(double v)
{
    uint64_t bits;
    static_assert(sizeof bits == sizeof v, "double width");
    std::memcpy(&bits, &v, sizeof bits);
    return bits;
}

double
bitsDouble(uint64_t bits)
{
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
}

} // namespace

bool
isCtrlFrame(FrameType type)
{
    switch (type) {
    case FrameType::Budget:
    case FrameType::Violation:
    case FrameType::Reference:
    case FrameType::Telemetry:
        return true;
    default:
        return false;
    }
}

void
FrameWriter::frame(FrameType type, const uint8_t *payload, size_t len)
{
    size_t base = buf_.size();
    buf_.resize(base + kHeaderLen + len + kCrcLen);
    std::memcpy(&buf_[base], kMagic, kMagicLen);
    buf_[base + kMagicLen] = static_cast<uint8_t>(type);
    if (len > 0)
        std::memcpy(&buf_[base + kHeaderLen], payload, len);
    uint32_t crc = ckpt::crc32(&buf_[base + kMagicLen], 1 + len);
    putU32(&buf_[base + kHeaderLen + len], crc);
}

void
FrameWriter::hello(const HelloFrame &h)
{
    uint8_t p[24];
    putU32(p, h.version);
    putU32(p + 4, h.streams);
    putU64(p + 8, h.start_tick);
    putU64(p + 16, h.total_ticks);
    frame(FrameType::Hello, p, sizeof p);
}

void
FrameWriter::sample(const SampleFrame &s)
{
    uint8_t p[20];
    putU64(p, s.tick);
    putU32(p + 8, s.stream);
    uint64_t bits;
    static_assert(sizeof bits == sizeof s.demand, "double width");
    std::memcpy(&bits, &s.demand, sizeof bits);
    putU64(p + 12, bits);
    frame(FrameType::Sample, p, sizeof p);
}

void
FrameWriter::tickEnd(uint64_t tick)
{
    uint8_t p[8];
    putU64(p, tick);
    frame(FrameType::TickEnd, p, sizeof p);
}

void
FrameWriter::bye(uint64_t final_tick)
{
    uint8_t p[8];
    putU64(p, final_tick);
    frame(FrameType::Bye, p, sizeof p);
}

void
FrameWriter::ctrl(FrameType type, const bus::WireMsg &m)
{
    uint8_t p[41];
    putU32(p, m.link);
    putU64(p + 4, m.tick);
    putU64(p + 12, m.seq);
    putU64(p + 20, doubleBits(m.value));
    putU64(p + 28, doubleBits(m.aux));
    p[36] = m.flags;
    putU32(p + 37, m.trace);
    frame(type, p, sizeof p);
}

void
FrameWriter::tickStart(uint64_t tick)
{
    uint8_t p[8];
    putU64(p, tick);
    frame(FrameType::TickStart, p, sizeof p);
}

void
FrameWriter::tickDone(uint64_t tick, uint32_t rank)
{
    uint8_t p[12];
    putU64(p, tick);
    putU32(p + 8, rank);
    frame(FrameType::TickDone, p, sizeof p);
}

void
FrameWriter::peerDown(uint32_t rank)
{
    uint8_t p[4];
    putU32(p, rank);
    frame(FrameType::PeerDown, p, sizeof p);
}

void
FrameWriter::peerUp(uint32_t rank, uint64_t tick)
{
    uint8_t p[12];
    putU32(p, rank);
    putU64(p + 4, tick);
    frame(FrameType::PeerUp, p, sizeof p);
}

void
FrameWriter::join(const JoinFrame &j)
{
    uint8_t p[16];
    putU32(p, j.rank);
    putU32(p + 4, j.version);
    putU32(p + 8, j.links);
    putU32(p + 12, j.digest);
    frame(FrameType::Join, p, sizeof p);
}

void
FrameWriter::metrics(uint32_t rank, uint64_t tick, const uint8_t *data,
                     size_t len)
{
    if (len > kMaxMetricsBytes)
        util::fatal("metrics frame: %zu-byte snapshot exceeds the %u-byte "
                    "wire cap", len, kMaxMetricsBytes);
    std::vector<uint8_t> p(16 + len);
    putU32(p.data(), rank);
    putU64(p.data() + 4, tick);
    putU32(p.data() + 12, static_cast<uint32_t>(len));
    if (len > 0)
        std::memcpy(p.data() + 16, data, len);
    frame(FrameType::Metrics, p.data(), p.size());
}

void
FrameWriter::heartbeat(uint32_t rank, uint64_t tick)
{
    uint8_t p[12];
    putU32(p, rank);
    putU64(p + 4, tick);
    frame(FrameType::Heartbeat, p, sizeof p);
}

void
FrameDecoder::feed(const void *data, size_t len)
{
    const uint8_t *p = static_cast<const uint8_t *>(data);
    buf_.insert(buf_.end(), p, p + len);
}

bool
FrameDecoder::next(Frame &out)
{
    while (pos_ + kHeaderLen <= buf_.size()) {
        if (std::memcmp(&buf_[pos_], kMagic, kMagicLen) != 0) {
            ++pos_;
            ++stats_.resync_bytes;
            continue;
        }
        uint8_t type = buf_[pos_ + kMagicLen];
        size_t plen = payloadLen(type);
        if (plen == SIZE_MAX) {
            // Valid magic, unknown type: almost certainly a corrupted
            // frame (or a future protocol). Skip one byte and rescan so
            // a real frame embedded later is still found.
            ++stats_.bad_type;
            ++pos_;
            ++stats_.resync_bytes;
            continue;
        }
        if (type == 'M') {
            // The one variable-length frame: the fixed 16-byte prefix
            // ends in the payload byte count. An implausible count is
            // treated like a corrupted frame (resync), not trusted to
            // allocate.
            if (pos_ + kHeaderLen + 16 > buf_.size())
                break; // prefix incomplete; wait for more input
            uint32_t blen = getU32(&buf_[pos_ + kHeaderLen + 12]);
            if (blen > kMaxMetricsBytes) {
                ++stats_.bad_type;
                ++pos_;
                ++stats_.resync_bytes;
                continue;
            }
            plen += blen;
        }
        size_t frame_len = kHeaderLen + plen + kCrcLen;
        if (pos_ + frame_len > buf_.size())
            break; // incomplete; wait for more input
        const uint8_t *body = &buf_[pos_ + kMagicLen];
        uint32_t want = getU32(&buf_[pos_ + kHeaderLen + plen]);
        if (ckpt::crc32(body, 1 + plen) != want) {
            ++stats_.bad_crc;
            ++pos_;
            ++stats_.resync_bytes;
            continue;
        }
        const uint8_t *p = &buf_[pos_ + kHeaderLen];
        out = Frame{};
        out.type = static_cast<FrameType>(type);
        switch (out.type) {
        case FrameType::Hello:
            out.hello.version = getU32(p);
            out.hello.streams = getU32(p + 4);
            out.hello.start_tick = getU64(p + 8);
            out.hello.total_ticks = getU64(p + 16);
            break;
        case FrameType::Sample: {
            out.sample.tick = getU64(p);
            out.sample.stream = getU32(p + 8);
            uint64_t bits = getU64(p + 12);
            std::memcpy(&out.sample.demand, &bits, sizeof bits);
            break;
        }
        case FrameType::TickEnd:
        case FrameType::Bye:
        case FrameType::TickStart:
            out.tick = getU64(p);
            break;
        case FrameType::Budget:
        case FrameType::Violation:
        case FrameType::Reference:
        case FrameType::Telemetry:
            out.ctrl.link = getU32(p);
            out.ctrl.tick = getU64(p + 4);
            out.ctrl.seq = getU64(p + 12);
            out.ctrl.value = bitsDouble(getU64(p + 20));
            out.ctrl.aux = bitsDouble(getU64(p + 28));
            out.ctrl.flags = p[36];
            out.ctrl.trace = getU32(p + 37);
            break;
        case FrameType::TickDone:
            out.tick = getU64(p);
            out.rank = getU32(p + 8);
            break;
        case FrameType::PeerDown:
            out.rank = getU32(p);
            break;
        case FrameType::PeerUp:
        case FrameType::Heartbeat:
            out.rank = getU32(p);
            out.tick = getU64(p + 4);
            break;
        case FrameType::Join:
            out.join.rank = getU32(p);
            out.join.version = getU32(p + 4);
            out.join.links = getU32(p + 8);
            out.join.digest = getU32(p + 12);
            break;
        case FrameType::Metrics:
            out.rank = getU32(p);
            out.tick = getU64(p + 4);
            out.bytes.assign(p + 16, p + plen);
            break;
        }
        pos_ += frame_len;
        ++stats_.frames;
        // Compact lazily so a long session does not grow the buffer
        // without bound.
        if (pos_ > 65536) {
            buf_.erase(buf_.begin(),
                       buf_.begin() + static_cast<long>(pos_));
            pos_ = 0;
        }
        return true;
    }
    if (pos_ > 65536) {
        buf_.erase(buf_.begin(), buf_.begin() + static_cast<long>(pos_));
        pos_ = 0;
    }
    return false;
}

} // namespace stream
} // namespace nps
