#include "stream/frame.h"

#include <cstring>

#include "ckpt/snapshot.h"

namespace nps {
namespace stream {

namespace {

const uint8_t kMagic[4] = {'N', 'P', 'S', 'F'};
constexpr size_t kMagicLen = 4;
constexpr size_t kHeaderLen = kMagicLen + 1; // magic + type
constexpr size_t kCrcLen = 4;

void
putU32(uint8_t *p, uint32_t v)
{
    p[0] = static_cast<uint8_t>(v);
    p[1] = static_cast<uint8_t>(v >> 8);
    p[2] = static_cast<uint8_t>(v >> 16);
    p[3] = static_cast<uint8_t>(v >> 24);
}

void
putU64(uint8_t *p, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        p[i] = static_cast<uint8_t>(v >> (8 * i));
}

uint32_t
getU32(const uint8_t *p)
{
    return static_cast<uint32_t>(p[0]) |
           static_cast<uint32_t>(p[1]) << 8 |
           static_cast<uint32_t>(p[2]) << 16 |
           static_cast<uint32_t>(p[3]) << 24;
}

uint64_t
getU64(const uint8_t *p)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(p[i]) << (8 * i);
    return v;
}

/** Payload length of @p type, or SIZE_MAX for an unknown type byte. */
size_t
payloadLen(uint8_t type)
{
    switch (type) {
    case 'H':
        return 24;
    case 'S':
        return 20;
    case 'T':
    case 'B':
        return 8;
    default:
        return SIZE_MAX;
    }
}

} // namespace

void
FrameWriter::frame(FrameType type, const uint8_t *payload, size_t len)
{
    size_t base = buf_.size();
    buf_.resize(base + kHeaderLen + len + kCrcLen);
    std::memcpy(&buf_[base], kMagic, kMagicLen);
    buf_[base + kMagicLen] = static_cast<uint8_t>(type);
    if (len > 0)
        std::memcpy(&buf_[base + kHeaderLen], payload, len);
    uint32_t crc = ckpt::crc32(&buf_[base + kMagicLen], 1 + len);
    putU32(&buf_[base + kHeaderLen + len], crc);
}

void
FrameWriter::hello(const HelloFrame &h)
{
    uint8_t p[24];
    putU32(p, h.version);
    putU32(p + 4, h.streams);
    putU64(p + 8, h.start_tick);
    putU64(p + 16, h.total_ticks);
    frame(FrameType::Hello, p, sizeof p);
}

void
FrameWriter::sample(const SampleFrame &s)
{
    uint8_t p[20];
    putU64(p, s.tick);
    putU32(p + 8, s.stream);
    uint64_t bits;
    static_assert(sizeof bits == sizeof s.demand, "double width");
    std::memcpy(&bits, &s.demand, sizeof bits);
    putU64(p + 12, bits);
    frame(FrameType::Sample, p, sizeof p);
}

void
FrameWriter::tickEnd(uint64_t tick)
{
    uint8_t p[8];
    putU64(p, tick);
    frame(FrameType::TickEnd, p, sizeof p);
}

void
FrameWriter::bye(uint64_t final_tick)
{
    uint8_t p[8];
    putU64(p, final_tick);
    frame(FrameType::Bye, p, sizeof p);
}

void
FrameDecoder::feed(const void *data, size_t len)
{
    const uint8_t *p = static_cast<const uint8_t *>(data);
    buf_.insert(buf_.end(), p, p + len);
}

bool
FrameDecoder::next(Frame &out)
{
    while (pos_ + kHeaderLen <= buf_.size()) {
        if (std::memcmp(&buf_[pos_], kMagic, kMagicLen) != 0) {
            ++pos_;
            ++stats_.resync_bytes;
            continue;
        }
        uint8_t type = buf_[pos_ + kMagicLen];
        size_t plen = payloadLen(type);
        if (plen == SIZE_MAX) {
            // Valid magic, unknown type: almost certainly a corrupted
            // frame (or a future protocol). Skip one byte and rescan so
            // a real frame embedded later is still found.
            ++stats_.bad_type;
            ++pos_;
            ++stats_.resync_bytes;
            continue;
        }
        size_t frame_len = kHeaderLen + plen + kCrcLen;
        if (pos_ + frame_len > buf_.size())
            break; // incomplete; wait for more input
        const uint8_t *body = &buf_[pos_ + kMagicLen];
        uint32_t want = getU32(&buf_[pos_ + kHeaderLen + plen]);
        if (ckpt::crc32(body, 1 + plen) != want) {
            ++stats_.bad_crc;
            ++pos_;
            ++stats_.resync_bytes;
            continue;
        }
        const uint8_t *p = &buf_[pos_ + kHeaderLen];
        out = Frame{};
        out.type = static_cast<FrameType>(type);
        switch (out.type) {
        case FrameType::Hello:
            out.hello.version = getU32(p);
            out.hello.streams = getU32(p + 4);
            out.hello.start_tick = getU64(p + 8);
            out.hello.total_ticks = getU64(p + 16);
            break;
        case FrameType::Sample: {
            out.sample.tick = getU64(p);
            out.sample.stream = getU32(p + 8);
            uint64_t bits = getU64(p + 12);
            std::memcpy(&out.sample.demand, &bits, sizeof bits);
            break;
        }
        case FrameType::TickEnd:
        case FrameType::Bye:
            out.tick = getU64(p);
            break;
        }
        pos_ += frame_len;
        ++stats_.frames;
        // Compact lazily so a long session does not grow the buffer
        // without bound.
        if (pos_ > 65536) {
            buf_.erase(buf_.begin(),
                       buf_.begin() + static_cast<long>(pos_));
            pos_ = 0;
        }
        return true;
    }
    if (pos_ > 65536) {
        buf_.erase(buf_.begin(), buf_.begin() + static_cast<long>(pos_));
        pos_ = 0;
    }
    return false;
}

} // namespace stream
} // namespace nps
