/**
 * @file
 * StreamConfig: the `[stream]` block of a deployment configuration — the
 * knobs of the online telemetry engine (docs/STREAMING.md).
 *
 * A plain struct with no behaviour so core/config_io can parse and
 * re-render it without pulling in the transport code. The policy half
 * (hold_last / hold_ticks / fallback_util) deliberately mirrors the
 * budget-lease machinery: a telemetry stream that goes silent degrades a
 * server to a conservative assumed demand exactly the way a lapsed
 * budget lease degrades it to a conservative local cap.
 */

#ifndef NPS_STREAM_STREAM_CONFIG_H
#define NPS_STREAM_STREAM_CONFIG_H

namespace nps {
namespace stream {

/**
 * Configuration of the online telemetry path (`npsim --serve`).
 */
struct StreamConfig
{
    /**
     * Whether this deployment is driven by a live telemetry feed instead
     * of trace playback. Recorded in checkpoints so a mid-stream
     * snapshot refuses to resume in batch mode (the staged demand is
     * not part of the snapshot; only the feed can re-stage it).
     */
    bool enabled = false;

    /**
     * How long one tick may wait for its TICK barrier frame before the
     * feed gives up and delivers the tick with whatever samples arrived
     * (milliseconds; 0 waits forever). A timeout does not end the run —
     * the missing streams degrade through the silent-stream policy.
     */
    unsigned timeout_ms = 5000;

    /**
     * How many ticks ahead of the current one a sample may arrive and
     * still be buffered. Anything further ahead is dropped and counted —
     * the bound that keeps a runaway feeder from growing the queue
     * without limit (backpressure is the kernel socket buffer plus this
     * window).
     */
    unsigned max_pending = 64;

    /**
     * Missing-sample policy: when true a stream that skips a tick holds
     * its last reported demand for up to hold_ticks consecutive misses;
     * when false (or past hold_ticks) the feed assumes fallback_util.
     */
    bool hold_last = true;

    /** Consecutive misses tolerated before falling back (0 = forever). */
    unsigned hold_ticks = 0;

    /** Demand assumed for a stream that is not holding its last value. */
    double fallback_util = 0.0;
};

} // namespace stream
} // namespace nps

#endif // NPS_STREAM_STREAM_CONFIG_H
