#include "stream/stream_source.h"

#include <cerrno>
#include <poll.h>
#include <unistd.h>

#include "util/logging.h"

namespace nps {
namespace stream {

StreamSource::StreamSource(int fd, size_t streams,
                           const StreamConfig &config)
    : fd_(fd), owns_fd_(fd > 2), expected_(streams), config_(config)
{
    if (fd_ < 0)
        util::fatal("stream: invalid telemetry descriptor %d", fd_);
    if (expected_ == 0)
        util::fatal("stream: a telemetry session needs at least one "
                    "stream");
}

StreamSource::~StreamSource()
{
    if (owns_fd_)
        ::close(fd_);
}

StreamSource::ReadResult
StreamSource::readMore()
{
    struct pollfd pfd;
    pfd.fd = fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    int timeout = config_.timeout_ms == 0
                      ? -1
                      : static_cast<int>(config_.timeout_ms);
    for (;;) {
        int rc = ::poll(&pfd, 1, timeout);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            eof_ = true;
            return ReadResult::Eof;
        }
        if (rc == 0)
            return ReadResult::Timeout;
        break;
    }
    // POLLHUP with pending data still reads it; read() returning 0 is
    // the definitive end-of-stream either way.
    uint8_t buf[65536];
    ssize_t n;
    do {
        n = ::read(fd_, buf, sizeof buf);
    } while (n < 0 && errno == EINTR);
    if (n <= 0) {
        eof_ = true;
        return ReadResult::Eof;
    }
    decoder_.feed(buf, static_cast<size_t>(n));
    return ReadResult::Data;
}

void
StreamSource::drainFrames()
{
    Frame f;
    while (decoder_.next(f)) {
        switch (f.type) {
        case FrameType::Hello:
            if (f.hello.version > kProtocolVersion)
                util::fatal("stream: peer speaks NPSF v%u, this build "
                            "understands v%u",
                            f.hello.version, kProtocolVersion);
            if (f.hello.streams != expected_)
                util::fatal("stream: peer advertises %u streams, the "
                            "cluster has %zu VMs",
                            f.hello.streams, expected_);
            hello_ = f.hello;
            got_hello_ = true;
            break;
        case FrameType::Sample: {
            if (f.sample.stream >= expected_) {
                ++ingest_.bad_stream;
                break;
            }
            if (f.sample.tick < cursor_) {
                ++ingest_.late;
                break;
            }
            if (f.sample.tick >=
                cursor_ + static_cast<uint64_t>(config_.max_pending)) {
                ++ingest_.overflow;
                break;
            }
            Pending &p = pending_[f.sample.tick];
            if (p.present.empty()) {
                p.present.assign(expected_, 0);
                p.demand.assign(expected_, 0.0);
            }
            if (p.present[f.sample.stream]) {
                // Last write wins; duplicates are counted, not fatal.
                ++ingest_.duplicates;
            } else {
                p.present[f.sample.stream] = 1;
                ++p.count;
                ++ingest_.samples;
            }
            p.demand[f.sample.stream] = f.sample.demand;
            ingest_.lag_samples.push_back(
                static_cast<uint32_t>(f.sample.tick - cursor_));
            break;
        }
        case FrameType::TickEnd:
            if (!have_closed_ || f.tick > closed_through_) {
                closed_through_ = f.tick;
                have_closed_ = true;
            }
            break;
        case FrameType::Bye:
            got_bye_ = true;
            // BYE(final) asserts everything before @c final was sent in
            // full: close through final - 1.
            if (f.tick > 0 &&
                (!have_closed_ || f.tick - 1 > closed_through_)) {
                closed_through_ = f.tick - 1;
                have_closed_ = true;
            }
            break;
        }
    }
}

bool
StreamSource::pull(size_t tick, TickBatch &batch)
{
    cursor_ = tick;
    drainFrames();
    while (!tickClosed(tick) && !eof_) {
        ReadResult r = readMore();
        drainFrames();
        if (r == ReadResult::Timeout && !tickClosed(tick)) {
            // The peer is alive but the barrier is overdue: deliver the
            // tick as-is. Missing streams degrade via the feed's
            // silent-stream policy — precisely a lost-telemetry fault,
            // not a reason to stop the run.
            ++ingest_.timeouts;
            break;
        }
    }
    if (!tickClosed(tick) && eof_) {
        // End of feed. Only barrier-complete ticks are delivered, so
        // the run's output is a strict prefix of the uninterrupted
        // run's, even when the peer died mid-tick.
        return false;
    }
    batch.reset(expected_, tick);
    auto it = pending_.find(tick);
    if (it != pending_.end()) {
        batch.present = std::move(it->second.present);
        batch.demand = std::move(it->second.demand);
        batch.samples = it->second.count;
    }
    pending_.erase(pending_.begin(),
                   pending_.upper_bound(static_cast<uint64_t>(tick)));
    return true;
}

} // namespace stream
} // namespace nps
