#include "stream/feed.h"

#include <chrono>

#include "ckpt/snapshot.h"
#include "obs/metrics.h"
#include "util/logging.h"

namespace nps {
namespace stream {

ClusterFeed::ClusterFeed(sim::Cluster &cluster, TelemetrySource &source,
                         const StreamConfig &config)
    : cluster_(cluster), source_(source), config_(config)
{
    if (source_.streams() != cluster_.numVms())
        util::fatal("stream: source has %zu streams, cluster has %zu "
                    "VMs",
                    source_.streams(), cluster_.numVms());
    cluster_.enableExternalDemand();
    last_.assign(cluster_.numVms(), config_.fallback_util);
    miss_.assign(cluster_.numVms(), 0);
    cur_silent_.assign(cluster_.numServers(), 0);
    prev_silent_.assign(cluster_.numServers(), 0);
}

bool
ClusterFeed::beginTick(size_t tick)
{
    TickBatch batch;
    auto pull_start = std::chrono::steady_clock::now();
    if (!source_.pull(tick, batch))
        return false;
    if (rt_pull_ms_) {
        rt_pull_ms_->observe(
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - pull_start)
                .count());
        rt_backlog_->observe(static_cast<double>(source_.backlog()));
    }

    std::vector<double> &staged = cluster_.stagedDemand();
    // Roll the silence window: the batch we are about to stage becomes
    // the current tick, the previous one slides into the recorder's
    // look-back slot.
    prev_silent_.swap(cur_silent_);
    prev_tick_ = cur_tick_;
    prev_count_ = cur_count_;
    have_prev_ = have_cur_;
    cur_tick_ = tick;
    cur_count_ = 0;
    cur_silent_.assign(cluster_.numServers(), 0);
    have_cur_ = true;

    for (size_t v = 0; v < batch.present.size(); ++v) {
        if (batch.present[v]) {
            last_[v] = batch.demand[v];
            miss_[v] = 0;
            staged[v] = batch.demand[v];
            ++stats_.staged_samples;
            continue;
        }
        ++miss_[v];
        ++stats_.missing_samples;
        bool hold = config_.hold_last &&
                    (config_.hold_ticks == 0 ||
                     miss_[v] <= config_.hold_ticks);
        if (hold) {
            staged[v] = last_[v];
            ++stats_.held_samples;
        } else {
            staged[v] = config_.fallback_util;
            ++stats_.fallback_samples;
        }
        sim::ServerId sid =
            cluster_.serverOf(static_cast<sim::VmId>(v));
        if (!cur_silent_[sid]) {
            cur_silent_[sid] = 1;
            ++cur_count_;
        }
    }
    ++stats_.ticks;

    if (obs_samples_) {
        obs_samples_->add(static_cast<double>(batch.samples));
        obs_missing_->add(static_cast<double>(batch.present.size() -
                                              batch.samples));
        obs_silent_->set(static_cast<double>(cur_count_));
        obs_batch_->observe(static_cast<double>(batch.samples));
        if (IngestStats *in = source_.ingest()) {
            obs_late_->add(static_cast<double>(in->late -
                                               exported_.late));
            obs_duplicates_->add(static_cast<double>(
                in->duplicates - exported_.duplicates));
            obs_overflow_->add(static_cast<double>(in->overflow -
                                                   exported_.overflow));
            obs_bad_stream_->add(static_cast<double>(
                in->bad_stream - exported_.bad_stream));
            obs_timeouts_->add(static_cast<double>(in->timeouts -
                                                   exported_.timeouts));
            exported_.late = in->late;
            exported_.duplicates = in->duplicates;
            exported_.overflow = in->overflow;
            exported_.bad_stream = in->bad_stream;
            exported_.timeouts = in->timeouts;
            for (uint32_t lag : in->lag_samples)
                obs_lag_->observe(static_cast<double>(lag));
            in->lag_samples.clear();
        }
        if (const DecodeStats *dc = source_.codec()) {
            obs_frames_->add(static_cast<double>(dc->frames -
                                                 exported_frames_));
            obs_resync_->add(static_cast<double>(dc->resync_bytes -
                                                 exported_resync_));
            obs_bad_crc_->add(static_cast<double>(dc->bad_crc -
                                                  exported_bad_crc_));
            obs_bad_type_->add(static_cast<double>(dc->bad_type -
                                                   exported_bad_type_));
            exported_frames_ = dc->frames;
            exported_resync_ = dc->resync_bytes;
            exported_bad_crc_ = dc->bad_crc;
            exported_bad_type_ = dc->bad_type;
        }
    } else if (IngestStats *in = source_.ingest()) {
        // Unmetered runs still must not accumulate lag samples forever.
        in->lag_samples.clear();
    }

    // Also track held/fallback in the feed policy counters above; keep
    // the obs mirrors in lockstep.
    if (obs_held_) {
        obs_held_->add(static_cast<double>(stats_.held_samples) -
                       obs_held_->value());
        obs_fallback_->add(
            static_cast<double>(stats_.fallback_samples) -
            obs_fallback_->value());
    }
    return true;
}

bool
ClusterFeed::silent(long server_id, size_t tick) const
{
    if (server_id < 0 ||
        static_cast<size_t>(server_id) >= cur_silent_.size())
        return false;
    if (have_cur_ && tick == cur_tick_)
        return cur_silent_[static_cast<size_t>(server_id)] != 0;
    if (have_prev_ && tick == prev_tick_)
        return prev_silent_[static_cast<size_t>(server_id)] != 0;
    return false;
}

size_t
ClusterFeed::silentCount(size_t tick) const
{
    if (have_cur_ && tick == cur_tick_)
        return cur_count_;
    if (have_prev_ && tick == prev_tick_)
        return prev_count_;
    return 0;
}

void
ClusterFeed::attachObs(obs::MetricsRegistry *metrics)
{
    if (!metrics)
        return;
    const std::string label = "feed";
    obs_samples_ = metrics->counter(
        "nps_stream_samples_total", label,
        "Telemetry samples staged into the cluster");
    obs_missing_ = metrics->counter(
        "nps_stream_missing_samples_total", label,
        "Stream-ticks that arrived with no sample");
    obs_held_ = metrics->counter(
        "nps_stream_held_samples_total", label,
        "Misses bridged by the hold-last policy");
    obs_fallback_ = metrics->counter(
        "nps_stream_fallback_samples_total", label,
        "Misses degraded to the fallback utilization");
    obs_late_ = metrics->counter(
        "nps_stream_late_samples_total", label,
        "Samples for an already-delivered tick (dropped)");
    obs_duplicates_ = metrics->counter(
        "nps_stream_duplicate_samples_total", label,
        "Repeated (tick, stream) samples (last write wins)");
    obs_overflow_ = metrics->counter(
        "nps_stream_overflow_samples_total", label,
        "Samples beyond the pending window (dropped)");
    obs_bad_stream_ = metrics->counter(
        "nps_stream_bad_stream_samples_total", label,
        "Samples naming a stream that does not exist (dropped)");
    obs_timeouts_ = metrics->counter(
        "nps_stream_tick_timeouts_total", label,
        "Ticks delivered on timeout instead of a barrier frame");
    obs_frames_ = metrics->counter(
        "nps_stream_frames_total", label, "Frames decoded");
    obs_resync_ = metrics->counter(
        "nps_stream_resync_bytes_total", label,
        "Bytes skipped resynchronizing after garbage");
    obs_bad_crc_ = metrics->counter(
        "nps_stream_bad_crc_frames_total", label,
        "Frames rejected on checksum");
    obs_bad_type_ = metrics->counter(
        "nps_stream_bad_type_frames_total", label,
        "Frames rejected on an unknown type byte");
    obs_silent_ = metrics->gauge(
        "nps_stream_silent_servers", label,
        "Servers with at least one silent stream, last staged tick");
    obs_batch_ = metrics->histogram(
        "nps_stream_batch_samples", label,
        "Samples staged per tick",
        {0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0,
         1024.0, 4096.0, 16384.0, 65536.0});
    obs_lag_ = metrics->histogram(
        "nps_stream_ingest_lag_ticks", label,
        "How many ticks ahead of the pull cursor samples arrived",
        {0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0});
    // Runtime (wall-clock) instruments: nondeterministic by nature, so
    // they live in nps_rt_ families, which every determinism check
    // (digests, checkpoints, diffs) excludes.
    rt_pull_ms_ = metrics->histogram(
        "nps_rt_stream_pull_wall_ms", label,
        "Wall-clock time blocked in the telemetry pull per tick — "
        "socket wait plus frame decode (ms)",
        obs::MetricsRegistry::runtimeMsBounds());
    rt_backlog_ = metrics->histogram(
        "nps_rt_stream_backlog_ticks", label,
        "Ticks buffered ahead of the pull cursor after each pull "
        "(backpressure depth)",
        {0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0});
}

void
ClusterFeed::saveState(ckpt::SectionWriter &w) const
{
    w.putDoubleVec(last_);
    w.putU64(miss_.size());
    for (uint64_t m : miss_)
        w.putU64(m);
    auto putBitmap = [&w](const std::vector<uint8_t> &v) {
        w.putU64(v.size());
        for (uint8_t b : v)
            w.putBool(b != 0);
    };
    putBitmap(cur_silent_);
    putBitmap(prev_silent_);
    w.putU64(cur_tick_);
    w.putU64(prev_tick_);
    w.putU64(cur_count_);
    w.putU64(prev_count_);
    w.putBool(have_cur_);
    w.putBool(have_prev_);
    w.putU64(stats_.ticks);
    w.putU64(stats_.staged_samples);
    w.putU64(stats_.missing_samples);
    w.putU64(stats_.held_samples);
    w.putU64(stats_.fallback_samples);
}

void
ClusterFeed::loadState(ckpt::SectionReader &r)
{
    last_ = r.getDoubleVec();
    auto misses = static_cast<size_t>(r.getU64());
    if (last_.size() != cluster_.numVms() ||
        misses != cluster_.numVms())
        util::fatal("stream restore: snapshot covers %zu streams, the "
                    "cluster has %zu VMs",
                    last_.size(), cluster_.numVms());
    miss_.resize(misses);
    for (uint64_t &m : miss_)
        m = r.getU64();
    auto getBitmap = [&r](std::vector<uint8_t> &v) {
        v.resize(static_cast<size_t>(r.getU64()));
        for (auto &b : v)
            b = r.getBool() ? 1 : 0;
    };
    getBitmap(cur_silent_);
    getBitmap(prev_silent_);
    if (cur_silent_.size() != cluster_.numServers())
        util::fatal("stream restore: snapshot covers %zu servers, the "
                    "cluster has %zu",
                    cur_silent_.size(), cluster_.numServers());
    cur_tick_ = static_cast<size_t>(r.getU64());
    prev_tick_ = static_cast<size_t>(r.getU64());
    cur_count_ = static_cast<size_t>(r.getU64());
    prev_count_ = static_cast<size_t>(r.getU64());
    have_cur_ = r.getBool();
    have_prev_ = r.getBool();
    stats_.ticks = r.getU64();
    stats_.staged_samples = r.getU64();
    stats_.missing_samples = r.getU64();
    stats_.held_samples = r.getU64();
    stats_.fallback_samples = r.getU64();
}

} // namespace stream
} // namespace nps
