/**
 * @file
 * ClusterFeed: the bridge between a TelemetrySource and the simulation.
 *
 * Installed as the engine's TickSource, it pulls one batch per tick,
 * stages the demand into the cluster's staged-demand slots (the VMs'
 * demandAt() reads them once external demand is enabled), and applies
 * the late/missing-sample policy: a stream that skipped the tick holds
 * its last value for a while, then degrades to a conservative fallback
 * — the same shape as the budget-lease fallback one layer up.
 *
 * It is also the fault::StreamHealth oracle: a server is *silent* at a
 * tick when any VM it hosts delivered no sample for that tick. The
 * controllers' budget links consult the oracle and treat a grant to a
 * silent server exactly like an injected link drop, so losing a
 * server's telemetry degrades the run identically to losing its budget
 * link (tests/stream/ proves the equivalence against a PR-2 fault
 * campaign, DegradeStats and recorder `faults` column included).
 */

#ifndef NPS_STREAM_FEED_H
#define NPS_STREAM_FEED_H

#include <cstdint>
#include <vector>

#include "fault/health.h"
#include "sim/cluster.h"
#include "sim/engine.h"
#include "stream/source.h"
#include "stream/stream_config.h"

namespace nps {
namespace obs {
class Counter;
class Gauge;
class Histogram;
class MetricsRegistry;
} // namespace obs

namespace stream {

/**
 * Stages telemetry into the cluster, one tick at a time.
 */
class ClusterFeed : public sim::TickSource, public fault::StreamHealth
{
  public:
    /** Deterministic per-feed tallies (tests assert on these). */
    struct Stats
    {
        uint64_t ticks = 0;           //!< ticks staged
        uint64_t staged_samples = 0;  //!< samples written to the cluster
        uint64_t missing_samples = 0; //!< stream-ticks with no sample
        uint64_t held_samples = 0;    //!< misses bridged by hold-last
        uint64_t fallback_samples = 0; //!< misses degraded to fallback
    };

    /**
     * Switches the cluster to external demand immediately.
     *
     * @param cluster The fed cluster; must outlive the feed.
     * @param source  Where demand comes from; must outlive the feed.
     * @param config  Missing-sample policy knobs.
     */
    ClusterFeed(sim::Cluster &cluster, TelemetrySource &source,
                const StreamConfig &config);

    /// @name sim::TickSource
    /// @{
    bool beginTick(size_t tick) override;
    /// @}

    /// @name fault::StreamHealth
    /// @{
    bool silent(long server_id, size_t tick) const override;
    size_t silentCount(size_t tick) const override;
    /// @}

    /** Deterministic feed tallies. */
    const Stats &stats() const { return stats_; }

    /**
     * Register the nps_stream_* instruments. The counts staged per tick
     * are deterministic; the transport families (lag, late, duplicates,
     * timeouts) depend on socket timing and are excluded from replay
     * equivalence (docs/STREAMING.md).
     */
    void attachObs(obs::MetricsRegistry *metrics);

    /**
     * Serialize feed state (miss streaks, last-held values, silence
     * maps, tallies). The staged demand itself is deliberately NOT
     * saved: after a restore the source re-stages the resume tick, so
     * a checkpoint taken mid-stream resumes only under --serve.
     */
    void saveState(ckpt::SectionWriter &w) const;

    /** Restore feed state saved by saveState(). */
    void loadState(ckpt::SectionReader &r);

  private:
    sim::Cluster &cluster_;
    TelemetrySource &source_;
    StreamConfig config_;
    Stats stats_;

    /** Last demand each stream reported (hold-last policy). */
    std::vector<double> last_;
    /** Consecutive ticks each stream has missed. */
    std::vector<uint64_t> miss_;

    // Per-server silence maps for the current and previous staged tick:
    // budget links ask about the tick being evaluated, the recorder
    // samples one tick back.
    std::vector<uint8_t> cur_silent_;
    std::vector<uint8_t> prev_silent_;
    size_t cur_tick_ = 0;
    size_t prev_tick_ = 0;
    size_t cur_count_ = 0;
    size_t prev_count_ = 0;
    bool have_cur_ = false;
    bool have_prev_ = false;

    /** Transport-counter values already mirrored into obs. */
    IngestStats exported_;
    uint64_t exported_frames_ = 0;
    uint64_t exported_resync_ = 0;
    uint64_t exported_bad_crc_ = 0;
    uint64_t exported_bad_type_ = 0;

    obs::Counter *obs_samples_ = nullptr;
    obs::Counter *obs_missing_ = nullptr;
    obs::Counter *obs_held_ = nullptr;
    obs::Counter *obs_fallback_ = nullptr;
    obs::Counter *obs_late_ = nullptr;
    obs::Counter *obs_duplicates_ = nullptr;
    obs::Counter *obs_overflow_ = nullptr;
    obs::Counter *obs_bad_stream_ = nullptr;
    obs::Counter *obs_timeouts_ = nullptr;
    obs::Counter *obs_frames_ = nullptr;
    obs::Counter *obs_resync_ = nullptr;
    obs::Counter *obs_bad_crc_ = nullptr;
    obs::Counter *obs_bad_type_ = nullptr;
    obs::Gauge *obs_silent_ = nullptr;
    obs::Histogram *obs_batch_ = nullptr;
    obs::Histogram *obs_lag_ = nullptr;
    obs::Histogram *rt_pull_ms_ = nullptr;
    obs::Histogram *rt_backlog_ = nullptr;
};

} // namespace stream
} // namespace nps

#endif // NPS_STREAM_FEED_H
