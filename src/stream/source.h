/**
 * @file
 * TelemetrySource: where per-tick VM demand comes from — the seam that
 * makes the engine indifferent to offline/online operation.
 *
 * The batch simulator reads demand from recorded traces; the online
 * daemon reads it from a socket. Both are TelemetrySources: the engine's
 * ClusterFeed pulls one TickBatch per tick and stages it into the
 * cluster, and everything downstream of the staging slot (controllers,
 * recorder, metrics) is provably unable to tell the difference — the
 * replay-equivalence suite (tests/stream/) byte-diffs the two.
 */

#ifndef NPS_STREAM_SOURCE_H
#define NPS_STREAM_SOURCE_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "stream/frame.h"
#include "trace/trace.h"

namespace nps {
namespace stream {

/** Transport-anomaly tallies kept by an online source (all zero for an
 * offline one). lag_samples accumulates one entry per decoded sample —
 * how many ticks ahead of the pull cursor it arrived — and is drained
 * by the consumer (the feed feeds them to a histogram). */
struct IngestStats
{
    uint64_t samples = 0;    //!< samples accepted into a tick batch
    uint64_t late = 0;       //!< samples for an already-delivered tick
    uint64_t duplicates = 0; //!< repeated (tick, stream) pairs
    uint64_t overflow = 0;   //!< samples beyond the pending window
    uint64_t bad_stream = 0; //!< samples naming a stream that doesn't exist
    uint64_t timeouts = 0;   //!< ticks delivered on timeout, not barrier
    std::vector<uint32_t> lag_samples; //!< per-sample arrival lead (ticks)
};

/**
 * One tick's worth of demand across every stream.
 */
struct TickBatch
{
    size_t tick = 0;
    /** Per-stream presence flags, indexed by VM id. */
    std::vector<uint8_t> present;
    /** Per-stream demand, valid where present (index == VM id). */
    std::vector<double> demand;
    /** Number of set presence flags. */
    size_t samples = 0;

    void reset(size_t streams, size_t tick_no)
    {
        tick = tick_no;
        present.assign(streams, 0);
        demand.assign(streams, 0.0);
        samples = 0;
    }
};

/**
 * A pull-based per-tick demand provider.
 */
class TelemetrySource
{
  public:
    virtual ~TelemetrySource() = default;

    /** Number of telemetry streams (must equal the cluster's VM count). */
    virtual size_t streams() const = 0;

    /**
     * Produce the batch for @p tick. Ticks are pulled consecutively,
     * each exactly once. May block (an online source waits for the
     * tick's barrier frame).
     *
     * @return false when the feed has ended — the engine stops before
     *         simulating @p tick.
     */
    virtual bool pull(size_t tick, TickBatch &batch) = 0;

    /** Transport tallies, or nullptr for sources that cannot lose data. */
    virtual IngestStats *ingest() { return nullptr; }

    /** Frame-codec tallies, or nullptr for unframed sources. */
    virtual const DecodeStats *codec() const { return nullptr; }

    /** Ticks buffered ahead of the pull cursor (backpressure depth);
     * 0 for sources with no pending window. */
    virtual size_t backlog() const { return 0; }
};

/**
 * Batch operation expressed as a source: replays recorded traces, every
 * stream present every tick, exactly the values the classic trace-driven
 * path serves. Exists so equivalence tests can run the *staging* code
 * path against ground truth.
 */
class OfflineTraceSource : public TelemetrySource
{
  public:
    /**
     * @param traces  One trace per stream; must outlive the source.
     * @param horizon Ticks to serve before reporting end-of-feed
     *                (0 = never ends; traces wrap like the batch path).
     */
    OfflineTraceSource(const std::vector<trace::UtilizationTrace> &traces,
                       size_t horizon = 0);

    size_t streams() const override { return traces_.size(); }
    bool pull(size_t tick, TickBatch &batch) override;

  private:
    const std::vector<trace::UtilizationTrace> &traces_;
    size_t horizon_;
};

} // namespace stream
} // namespace nps

#endif // NPS_STREAM_SOURCE_H
