#include "stream/net.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <time.h>
#include <unistd.h>

#include "util/logging.h"

namespace nps {
namespace stream {

namespace {

bool
hasPrefix(const std::string &s, const char *prefix)
{
    return s.rfind(prefix, 0) == 0;
}

void
fillUnixAddr(const std::string &path, sockaddr_un &addr)
{
    std::memset(&addr, 0, sizeof addr);
    addr.sun_family = AF_UNIX;
    if (path.empty() || path.size() >= sizeof addr.sun_path)
        util::fatal("stream: unix socket path '%s' is empty or too "
                    "long",
                    path.c_str());
    std::memcpy(addr.sun_path, path.c_str(), path.size());
}

void
fillTcpAddr(const std::string &hostport, bool server, sockaddr_in &addr)
{
    std::string host = "127.0.0.1";
    std::string port = hostport;
    auto colon = hostport.rfind(':');
    if (colon != std::string::npos) {
        host = hostport.substr(0, colon);
        port = hostport.substr(colon + 1);
    }
    if (server)
        host = "127.0.0.1"; // the daemon only ever binds loopback
    char *end = nullptr;
    long p = std::strtol(port.c_str(), &end, 10);
    // Port 0 is only meaningful server-side: "bind me any free port".
    long min_port = server ? 0 : 1;
    if (port.empty() || *end != '\0' || p < min_port || p > 65535)
        util::fatal("stream: bad TCP port '%s'", port.c_str());
    std::memset(&addr, 0, sizeof addr);
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(p));
    if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
        util::fatal("stream: bad TCP host '%s' (numeric IPv4 only)",
                    host.c_str());
}

void
sleepMs(unsigned ms)
{
    struct timespec ts;
    ts.tv_sec = ms / 1000;
    ts.tv_nsec = static_cast<long>(ms % 1000) * 1000000L;
    nanosleep(&ts, nullptr);
}

} // namespace

bool
isStdioSpec(const std::string &spec)
{
    return spec == "stdin" || spec == "-" || spec == "stdio";
}

int
serveAndAccept(const std::string &spec)
{
    if (isStdioSpec(spec))
        return 0;
    int listener = -1;
    std::string unix_path;
    if (hasPrefix(spec, "unix:")) {
        unix_path = spec.substr(5);
        sockaddr_un addr;
        fillUnixAddr(unix_path, addr);
        ::unlink(unix_path.c_str());
        listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (listener < 0)
            util::fatal("stream: socket(AF_UNIX): %s",
                        std::strerror(errno));
        if (::bind(listener, reinterpret_cast<sockaddr *>(&addr),
                   sizeof addr) != 0)
            util::fatal("stream: bind(%s): %s", unix_path.c_str(),
                        std::strerror(errno));
    } else if (hasPrefix(spec, "tcp:")) {
        sockaddr_in addr;
        fillTcpAddr(spec.substr(4), /*server=*/true, addr);
        listener = ::socket(AF_INET, SOCK_STREAM, 0);
        if (listener < 0)
            util::fatal("stream: socket(AF_INET): %s",
                        std::strerror(errno));
        int one = 1;
        ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof one);
        if (::bind(listener, reinterpret_cast<sockaddr *>(&addr),
                   sizeof addr) != 0)
            util::fatal("stream: bind(%s): %s", spec.c_str(),
                        std::strerror(errno));
    } else {
        util::fatal("stream: bad endpoint '%s' (want stdin, unix:PATH "
                    "or tcp:PORT)",
                    spec.c_str());
    }
    if (::listen(listener, 1) != 0)
        util::fatal("stream: listen(%s): %s", spec.c_str(),
                    std::strerror(errno));
    int fd;
    do {
        fd = ::accept(listener, nullptr, nullptr);
    } while (fd < 0 && errno == EINTR);
    if (fd < 0)
        util::fatal("stream: accept(%s): %s", spec.c_str(),
                    std::strerror(errno));
    ::close(listener);
    if (!unix_path.empty())
        ::unlink(unix_path.c_str());
    return fd;
}

int
listenOn(const std::string &spec, int backlog, int *bound_port)
{
    if (isStdioSpec(spec))
        util::fatal("stream: listenOn needs a socket endpoint, not "
                    "stdio");
    int listener = -1;
    if (bound_port)
        *bound_port = 0;
    if (hasPrefix(spec, "unix:")) {
        const std::string unix_path = spec.substr(5);
        sockaddr_un addr;
        fillUnixAddr(unix_path, addr);
        ::unlink(unix_path.c_str());
        listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (listener < 0)
            util::fatal("stream: socket(AF_UNIX): %s",
                        std::strerror(errno));
        if (::bind(listener, reinterpret_cast<sockaddr *>(&addr),
                   sizeof addr) != 0)
            util::fatal("stream: bind(%s): %s", unix_path.c_str(),
                        std::strerror(errno));
    } else if (hasPrefix(spec, "tcp:")) {
        sockaddr_in addr;
        fillTcpAddr(spec.substr(4), /*server=*/true, addr);
        listener = ::socket(AF_INET, SOCK_STREAM, 0);
        if (listener < 0)
            util::fatal("stream: socket(AF_INET): %s",
                        std::strerror(errno));
        int one = 1;
        ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof one);
        // EADDRINUSE despite SO_REUSEADDR means another process still
        // *listens* on the port (commonly a just-killed hub whose OS
        // teardown has not finished). That clears within milliseconds,
        // so retry briefly before declaring the port taken.
        unsigned backoff_ms = 50;
        for (int attempt = 0;; ++attempt) {
            if (::bind(listener, reinterpret_cast<sockaddr *>(&addr),
                       sizeof addr) == 0)
                break;
            if (errno != EADDRINUSE || attempt >= 5)
                util::fatal("stream: bind(%s): %s", spec.c_str(),
                            std::strerror(errno));
            sleepMs(backoff_ms);
            backoff_ms *= 2;
        }
        sockaddr_in got;
        socklen_t got_len = sizeof got;
        if (::getsockname(listener, reinterpret_cast<sockaddr *>(&got),
                          &got_len) != 0)
            util::fatal("stream: getsockname(%s): %s", spec.c_str(),
                        std::strerror(errno));
        if (bound_port)
            *bound_port = static_cast<int>(ntohs(got.sin_port));
    } else {
        util::fatal("stream: bad endpoint '%s' (want unix:PATH or "
                    "tcp:PORT)",
                    spec.c_str());
    }
    if (::listen(listener, backlog) != 0)
        util::fatal("stream: listen(%s): %s", spec.c_str(),
                    std::strerror(errno));
    return listener;
}

int
acceptOne(int listener)
{
    int fd;
    do {
        fd = ::accept(listener, nullptr, nullptr);
    } while (fd < 0 && errno == EINTR);
    if (fd < 0)
        util::fatal("stream: accept: %s", std::strerror(errno));
    return fd;
}

int
connectTo(const std::string &spec, unsigned wait_ms)
{
    if (isStdioSpec(spec))
        return 1; // the feeder writes frames to stdout
    unsigned waited = 0;
    for (;;) {
        int fd = -1;
        int rc = -1;
        if (hasPrefix(spec, "unix:")) {
            sockaddr_un addr;
            fillUnixAddr(spec.substr(5), addr);
            fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
            if (fd < 0)
                util::fatal("stream: socket(AF_UNIX): %s",
                            std::strerror(errno));
            rc = ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                           sizeof addr);
        } else if (hasPrefix(spec, "tcp:")) {
            sockaddr_in addr;
            fillTcpAddr(spec.substr(4), /*server=*/false, addr);
            fd = ::socket(AF_INET, SOCK_STREAM, 0);
            if (fd < 0)
                util::fatal("stream: socket(AF_INET): %s",
                            std::strerror(errno));
            rc = ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                           sizeof addr);
        } else {
            util::fatal("stream: bad endpoint '%s' (want stdin, "
                        "unix:PATH or tcp:HOST:PORT)",
                        spec.c_str());
        }
        if (rc == 0)
            return fd;
        ::close(fd);
        if (waited >= wait_ms)
            util::fatal("stream: cannot connect to %s after %u ms: %s",
                        spec.c_str(), wait_ms, std::strerror(errno));
        sleepMs(50);
        waited += 50;
    }
}

int
connectWithBackoff(const std::string &spec, unsigned attempts,
                   unsigned base_ms, unsigned max_ms,
                   uint64_t jitter_seed)
{
    if (isStdioSpec(spec))
        return 1;
    if (attempts == 0)
        attempts = 1;
    // SplitMix64 over the caller's seed (typically the rank): each rank
    // draws its own jitter sequence, so a fleet restarted at once fans
    // out instead of hammering the hub in lockstep.
    uint64_t z = jitter_seed + 0x9e3779b97f4a7c15ULL;
    auto draw = [&z]() {
        z += 0x9e3779b97f4a7c15ULL;
        uint64_t x = z;
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
        return x ^ (x >> 31);
    };
    unsigned delay_ms = base_ms ? base_ms : 1;
    for (unsigned attempt = 0;; ++attempt) {
        int fd = -1;
        int rc = -1;
        if (hasPrefix(spec, "unix:")) {
            sockaddr_un addr;
            fillUnixAddr(spec.substr(5), addr);
            fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
            if (fd < 0)
                util::fatal("stream: socket(AF_UNIX): %s",
                            std::strerror(errno));
            rc = ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                           sizeof addr);
        } else if (hasPrefix(spec, "tcp:")) {
            sockaddr_in addr;
            fillTcpAddr(spec.substr(4), /*server=*/false, addr);
            fd = ::socket(AF_INET, SOCK_STREAM, 0);
            if (fd < 0)
                util::fatal("stream: socket(AF_INET): %s",
                            std::strerror(errno));
            rc = ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                           sizeof addr);
        } else {
            util::fatal("stream: bad endpoint '%s' (want unix:PATH or "
                        "tcp:HOST:PORT)",
                        spec.c_str());
        }
        if (rc == 0)
            return fd;
        ::close(fd);
        if (attempt + 1 >= attempts)
            util::fatal("stream: cannot connect to %s after %u "
                        "attempts: %s",
                        spec.c_str(), attempts, std::strerror(errno));
        // Bounded exponential backoff with up to 50% additive jitter.
        unsigned jitter =
            delay_ms > 1
                ? static_cast<unsigned>(draw() % (delay_ms / 2 + 1))
                : 0;
        sleepMs(delay_ms + jitter);
        if (max_ms && delay_ms >= max_ms / 2)
            delay_ms = max_ms;
        else
            delay_ms *= 2;
    }
}

bool
writeAll(int fd, const void *data, size_t len)
{
    const uint8_t *p = static_cast<const uint8_t *>(data);
    while (len > 0) {
        ssize_t n = ::write(fd, p, len);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += n;
        len -= static_cast<size_t>(n);
    }
    return true;
}

} // namespace stream
} // namespace nps
