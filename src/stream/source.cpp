#include "stream/source.h"

namespace nps {
namespace stream {

OfflineTraceSource::OfflineTraceSource(
    const std::vector<trace::UtilizationTrace> &traces, size_t horizon)
    : traces_(traces), horizon_(horizon)
{
}

bool
OfflineTraceSource::pull(size_t tick, TickBatch &batch)
{
    if (horizon_ != 0 && tick >= horizon_)
        return false;
    batch.reset(traces_.size(), tick);
    for (size_t i = 0; i < traces_.size(); ++i) {
        batch.present[i] = 1;
        batch.demand[i] = traces_[i].at(tick);
    }
    batch.samples = traces_.size();
    return true;
}

} // namespace stream
} // namespace nps
