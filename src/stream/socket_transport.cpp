#include "stream/socket_transport.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <poll.h>
#include <unistd.h>

#include "bus/control_link.h"
#include "stream/net.h"
#include "util/crc32.h"
#include "util/logging.h"

namespace nps {
namespace stream {

namespace {

/** Wire tag of a channel kind (the 'G'/'V'/'R'/'Y' frame types). */
FrameType
typeFor(bus::ChannelKind kind)
{
    switch (kind) {
    case bus::ChannelKind::Budget: return FrameType::Budget;
    case bus::ChannelKind::Violation: return FrameType::Violation;
    case bus::ChannelKind::Reference: return FrameType::Reference;
    case bus::ChannelKind::Telemetry: return FrameType::Telemetry;
    }
    return FrameType::Budget; // unreachable
}

/** Bit-exact double comparison (lockstep replicas must agree on bits,
 * and NaN != NaN would defeat an equality check). */
bool
sameBits(double a, double b)
{
    return std::memcmp(&a, &b, sizeof a) == 0;
}

} // namespace

const char *
peerHealthName(PeerHealth health)
{
    switch (health) {
    case PeerHealth::Live: return "live";
    case PeerHealth::Degraded: return "degraded";
    case PeerHealth::Dead: return "dead";
    }
    return "?";
}

SocketTransport::SocketTransport(unsigned timeout_ms)
    : rank_(0), timeout_ms_(timeout_ms)
{
}

SocketTransport::SocketTransport(int rank, int fd, unsigned timeout_ms)
    : rank_(rank), timeout_ms_(timeout_ms)
{
    if (rank <= 0)
        util::fatal("dist: leaf transport needs rank > 0, got %d", rank);
    Peer &hub = peers_[0];
    hub.fd = fd;
    hub.alive = true;
    hub.last_heard = std::chrono::steady_clock::now();
}

SocketTransport::~SocketTransport()
{
    for (auto &entry : peers_) {
        if (entry.second.fd >= 0)
            ::close(entry.second.fd);
    }
}

uint32_t
SocketTransport::registerLink(bus::ControlLink *link, int owner_rank)
{
    const uint32_t id = static_cast<uint32_t>(links_.size());
    LinkState ls;
    ls.link = link;
    ls.owner = owner_rank;
    links_.push_back(std::move(ls));
    // Digest the name *including* its terminator so "AB"+"C" cannot
    // collide with "A"+"BC"; every replica registers in the canonical
    // Coordinator::attachTransport order, so equal digests mean equal
    // wiring.
    digest_ = util::crc32Update(digest_, link->name().c_str(),
                                link->name().size() + 1);
    return id;
}

bus::WireMsg
SocketTransport::resolve(const bus::ControlLink &link,
                         const bus::WireMsg &local)
{
    if (local.link >= links_.size())
        util::fatal("dist: resolve on unregistered link %s",
                    link.name().c_str());
    LinkState &ls = links_[local.link];
    // Rank-0-owned links resolve locally in every replica and touch no
    // mutable transport state — the one path sharded worker threads may
    // take (see the file comment).
    if (ls.owner == 0)
        return local;
    if (ls.owner == rank_) {
        writeCtrl(0, typeFor(link.kind()), local);
        ++stats_.sent;
        return local;
    }
    return consumeRemote(ls, local);
}

void
SocketTransport::writeCtrl(int to_rank, FrameType type,
                           const bus::WireMsg &m)
{
    // Netem wire mangling happens here, at the rank that owns the link
    // — the single point every control frame leaves from. The hub
    // re-frames relays, so only the first-hop decoder ever sees a
    // corrupted copy; duplicates survive the relay and exercise every
    // receiver's duplicate window.
    if (mangler_) {
        size_t off = 0;
        if (mangler_->corruptCtrl(m, &off)) {
            FrameWriter c;
            c.ctrl(type, m);
            std::vector<uint8_t> bad(c.buffer());
            bad[off % bad.size()] ^= 0xFF;
            writePeer(to_rank, bad.data(), bad.size());
        }
    }
    FrameWriter w;
    w.ctrl(type, m);
    if (mangler_ && mangler_->duplicateCtrl(m))
        w.ctrl(type, m);
    writePeer(to_rank, w.data(), w.size());
}

bus::WireMsg
SocketTransport::consumeRemote(LinkState &ls, const bus::WireMsg &local)
{
    for (;;) {
        // Discard re-deliveries of the frame we already consumed (the
        // one-frame duplicate window injected faults and tests exercise;
        // anything older trips the desync check below instead).
        while (!ls.queue.empty() && ls.consumed_any &&
               ls.queue.front().seq == ls.last_seq &&
               ls.queue.front().tick == ls.last_tick) {
            ls.queue.pop_front();
            ++stats_.duplicates;
        }
        if (!ls.queue.empty())
            break;
        if (!alive(ls.owner)) {
            // The owning process is down: the message the replicas all
            // computed resolves as an undelivered drop, exactly an
            // injected link-drop fault as far as the caller can tell.
            ++stats_.peer_drops;
            bus::WireMsg dropped;
            dropped.link = local.link;
            dropped.tick = local.tick;
            dropped.seq = local.seq;
            dropped.flags = 0;
            return dropped;
        }
        pumpOnce();
    }
    bus::WireMsg m = ls.queue.front();
    ls.queue.pop_front();
    if (m.seq != local.seq || m.tick != local.tick) {
        util::fatal("dist: replica desync on link %s: owner rank %d sent "
                    "tick %llu seq %llu, this rank computed tick %llu "
                    "seq %llu",
                    ls.link->name().c_str(), ls.owner,
                    static_cast<unsigned long long>(m.tick),
                    static_cast<unsigned long long>(m.seq),
                    static_cast<unsigned long long>(local.tick),
                    static_cast<unsigned long long>(local.seq));
    }
    if (!sameBits(m.value, local.value) || !sameBits(m.aux, local.aux) ||
        m.flags != local.flags || m.trace != local.trace) {
        util::fatal("dist: replica desync on link %s at tick %llu: "
                    "owner value %.17g/%.17g flags %u trace %u, local "
                    "%.17g/%.17g flags %u trace %u",
                    ls.link->name().c_str(),
                    static_cast<unsigned long long>(local.tick), m.value,
                    m.aux, m.flags, m.trace, local.value, local.aux,
                    local.flags, local.trace);
    }
    ls.last_seq = m.seq;
    ls.last_tick = m.tick;
    ls.consumed_any = true;
    ++stats_.received;
    return m;
}

bool
SocketTransport::alive(int rank) const
{
    if (rank == 0 || rank == rank_)
        return true;
    auto it = peers_.find(rank);
    if (it != peers_.end())
        return it->second.alive;
    // Leaf view of the other children: alive unless the hub said
    // otherwise (the supervisor collects every join before tick 0).
    auto ra = remote_alive_.find(rank);
    return ra == remote_alive_.end() || ra->second;
}

void
SocketTransport::addPeer(int rank, int fd)
{
    if (rank_ != 0)
        util::fatal("dist: only the hub accepts peers");
    if (rank <= 0)
        util::fatal("dist: peer rank must be > 0, got %d", rank);
    Peer &p = peers_[rank]; // replaces a dead entry on restart
    if (p.fd >= 0)
        ::close(p.fd);
    p = Peer{};
    p.fd = fd;
    p.alive = true;
    p.last_heard = std::chrono::steady_clock::now();
}

int
SocketTransport::acceptPeer(int listener)
{
    const int fd = acceptOne(listener);
    // Read this one descriptor until its join frame arrives; the frame
    // must be first on a fresh connection.
    FrameDecoder dec;
    Frame f;
    while (!dec.next(f)) {
        pollfd pfd{fd, POLLIN, 0};
        int rc = ::poll(&pfd, 1, static_cast<int>(timeout_ms_));
        if (rc == 0)
            util::fatal("dist: no join frame within %u ms", timeout_ms_);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            util::fatal("dist: poll: %s", std::strerror(errno));
        }
        uint8_t buf[4096];
        ssize_t n = ::read(fd, buf, sizeof buf);
        if (n == 0)
            util::fatal("dist: peer closed before joining");
        if (n < 0) {
            if (errno == EINTR)
                continue;
            util::fatal("dist: read: %s", std::strerror(errno));
        }
        dec.feed(buf, static_cast<size_t>(n));
    }
    if (f.type != FrameType::Join)
        util::fatal("dist: expected join frame, got type '%c'",
                    static_cast<char>(f.type));
    if (f.join.version != kProtocolVersion)
        util::fatal("dist: protocol version mismatch: peer %u, ours %u",
                    f.join.version, kProtocolVersion);
    if (f.join.links != numLinks() || f.join.digest != digest_)
        util::fatal("dist: wiring mismatch from rank %u: peer has %u "
                    "links digest %08x, this replica %u links digest "
                    "%08x — the processes were built from different "
                    "plans or binaries",
                    f.join.rank, f.join.links, f.join.digest, numLinks(),
                    digest_);
    addPeer(static_cast<int>(f.join.rank), fd);
    return static_cast<int>(f.join.rank);
}

void
SocketTransport::broadcast(const FrameWriter &w, int except)
{
    for (auto &entry : peers_) {
        if (entry.first == except || !entry.second.alive)
            continue;
        writePeer(entry.first, w.data(), w.size());
    }
}

void
SocketTransport::writePeer(int rank, const void *data, size_t len)
{
    auto it = peers_.find(rank);
    if (it == peers_.end() || !it->second.alive)
        return;
    if (writeAll(it->second.fd, data, len))
        return;
    if (rank_ == 0)
        markDead(rank);
    else
        util::fatal("dist: rank %d lost the supervisor socket", rank_);
}

void
SocketTransport::markDead(int rank)
{
    auto it = peers_.find(rank);
    if (it == peers_.end() || !it->second.alive)
        return;
    it->second.alive = false;
    if (it->second.fd >= 0) {
        ::close(it->second.fd);
        it->second.fd = -1;
    }
    // Tell the survivors so their blocked resolves degrade to drops the
    // same way ours do.
    FrameWriter w;
    w.peerDown(static_cast<uint32_t>(rank));
    broadcast(w, rank);
}

void
SocketTransport::pumpOnce()
{
    std::vector<pollfd> fds;
    std::vector<int> ranks;
    for (auto &entry : peers_) {
        if (!entry.second.alive || entry.second.fd < 0)
            continue;
        fds.push_back(pollfd{entry.second.fd, POLLIN, 0});
        ranks.push_back(entry.first);
    }
    if (fds.empty())
        util::fatal("dist: rank %d has no live peers left to wait on",
                    rank_);
    // With heartbeats or a peer timeout on, wake often enough to emit
    // keepalives and to notice a silent peer; otherwise one poll spans
    // the whole deadlock-guard window, exactly as before.
    unsigned slice = timeout_ms_;
    if (hb_ms_)
        slice = std::min(slice, std::max(1u, hb_ms_ / 2));
    if (peer_timeout_ms_)
        slice = std::min(slice, std::max(1u, peer_timeout_ms_ / 4));
    int rc;
    do {
        rc = ::poll(fds.data(), fds.size(), static_cast<int>(slice));
    } while (rc < 0 && errno == EINTR);
    if (rc < 0)
        util::fatal("dist: poll: %s", std::strerror(errno));
    maybeHeartbeat();
    checkPeerTimeouts();
    if (rc == 0) {
        silent_ms_ += slice;
        if (silent_ms_ >= timeout_ms_)
            util::fatal("dist: rank %d heard nothing for %u ms — a peer "
                        "is hung or the barrier deadlocked",
                        rank_, timeout_ms_);
        return; // callers loop until their condition holds
    }
    silent_ms_ = 0;
    for (size_t i = 0; i < fds.size(); ++i) {
        if (!(fds[i].revents & (POLLIN | POLLHUP | POLLERR)))
            continue;
        const int peer_rank = ranks[i];
        Peer &peer = peers_[peer_rank];
        if (!peer.alive)
            continue; // died while handling an earlier fd this round
        uint8_t buf[65536];
        ssize_t n = ::read(peer.fd, buf, sizeof buf);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            util::fatal("dist: read from rank %d: %s", peer_rank,
                        std::strerror(errno));
        }
        if (n == 0) {
            if (rank_ == 0) {
                markDead(peer_rank);
                continue;
            }
            if (bye_seen_)
                continue;
            util::fatal("dist: rank %d lost the supervisor socket",
                        rank_);
        }
        peer.last_heard = std::chrono::steady_clock::now();
        peer.decoder.feed(buf, static_cast<size_t>(n));
        Frame f;
        while (peer.decoder.next(f))
            dispatch(peer_rank, f);
    }
}

void
SocketTransport::maybeHeartbeat()
{
    if (hb_ms_ == 0)
        return;
    auto now = std::chrono::steady_clock::now();
    if (last_hb_sent_ != std::chrono::steady_clock::time_point{} &&
        std::chrono::duration_cast<std::chrono::milliseconds>(
            now - last_hb_sent_)
                .count() < static_cast<long>(hb_ms_))
        return;
    last_hb_sent_ = now;
    // The tick field is a hint, not protocol state: the leaf reports
    // the last tick the hub released to it, the hub reports nothing.
    uint64_t tick = tick_start_plus1_ ? tick_start_plus1_ - 1 : 0;
    FrameWriter w;
    w.heartbeat(static_cast<uint32_t>(rank_), tick);
    for (auto &entry : peers_) {
        if (!entry.second.alive)
            continue;
        writePeer(entry.first, w.data(), w.size());
        ++stats_.heartbeats_sent;
    }
}

void
SocketTransport::checkPeerTimeouts()
{
    if (peer_timeout_ms_ == 0 || rank_ != 0)
        return;
    auto now = std::chrono::steady_clock::now();
    for (auto &entry : peers_) {
        if (!entry.second.alive)
            continue;
        auto silent = std::chrono::duration_cast<std::chrono::milliseconds>(
                          now - entry.second.last_heard)
                          .count();
        if (silent < static_cast<long>(peer_timeout_ms_))
            continue;
        ++stats_.peer_timeouts;
        std::fprintf(stderr,
                     "npsim: rank %d silent for %ld ms (limit %u) — "
                     "declaring it dead\n",
                     entry.first, static_cast<long>(silent),
                     peer_timeout_ms_);
        markDead(entry.first);
    }
}

PeerHealth
SocketTransport::peerHealth(int rank) const
{
    if (rank == 0 || rank == rank_)
        return PeerHealth::Live;
    auto it = peers_.find(rank);
    if (it == peers_.end()) {
        auto ra = remote_alive_.find(rank);
        return (ra == remote_alive_.end() || ra->second)
                   ? PeerHealth::Live
                   : PeerHealth::Dead;
    }
    if (!it->second.alive)
        return PeerHealth::Dead;
    unsigned limit = peer_timeout_ms_
                         ? peer_timeout_ms_ / 2
                         : (hb_ms_ ? hb_ms_ * 3 : timeout_ms_ / 2);
    auto silent = std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::steady_clock::now() -
                      it->second.last_heard)
                      .count();
    return silent > static_cast<long>(limit) ? PeerHealth::Degraded
                                             : PeerHealth::Live;
}

void
SocketTransport::dispatch(int from_rank, const Frame &f)
{
    if (isCtrlFrame(f.type)) {
        if (f.ctrl.link >= links_.size())
            util::fatal("dist: control frame for unknown link id %u "
                        "(have %u)",
                        f.ctrl.link, numLinks());
        links_[f.ctrl.link].queue.push_back(f.ctrl);
        if (rank_ == 0) {
            // Hub: relay the owner's frame to every other live child,
            // preserving per-sender FIFO order.
            FrameWriter w;
            w.ctrl(f.type, f.ctrl);
            for (auto &entry : peers_) {
                if (entry.first == from_rank || !entry.second.alive)
                    continue;
                writePeer(entry.first, w.data(), w.size());
                ++stats_.forwarded;
            }
        }
        return;
    }
    switch (f.type) {
    case FrameType::TickDone:
        if (rank_ != 0)
            util::fatal("dist: tick-done frame reached rank %d", rank_);
        done_plus1_[static_cast<int>(f.rank)] = f.tick + 1;
        return;
    case FrameType::TickStart:
        if (rank_ == 0)
            util::fatal("dist: tick-start frame reached the hub");
        tick_start_plus1_ = f.tick + 1;
        return;
    case FrameType::PeerDown:
        if (static_cast<int>(f.rank) != rank_)
            remote_alive_[static_cast<int>(f.rank)] = false;
        return;
    case FrameType::PeerUp:
        if (static_cast<int>(f.rank) != rank_)
            remote_alive_[static_cast<int>(f.rank)] = true;
        return;
    case FrameType::Bye:
        if (rank_ == 0)
            util::fatal("dist: bye frame reached the hub");
        bye_seen_ = true;
        return;
    case FrameType::Heartbeat:
        // Keepalive: the bytes themselves already refreshed the
        // sender's last_heard; nothing to route, nothing to relay.
        ++stats_.heartbeats_received;
        return;
    case FrameType::Metrics:
        // Supervision traffic, consumed by the hub; never relayed.
        if (rank_ != 0)
            util::fatal("dist: metrics frame reached rank %d", rank_);
        if (metrics_sink_)
            metrics_sink_(f.rank, f.tick, f.bytes);
        return;
    default:
        util::fatal("dist: unexpected frame type '%c' from rank %d",
                    static_cast<char>(f.type), from_rank);
    }
}

void
SocketTransport::broadcastTickStart(uint64_t tick)
{
    FrameWriter w;
    w.tickStart(tick);
    broadcast(w, -1);
}

bool
SocketTransport::waitTickDone(int rank, uint64_t tick)
{
    for (;;) {
        auto it = done_plus1_.find(rank);
        if (it != done_plus1_.end() && it->second >= tick + 1)
            return true;
        if (!alive(rank))
            return false;
        pumpOnce();
    }
}

void
SocketTransport::broadcastPeerUp(int rank, uint64_t tick)
{
    FrameWriter w;
    w.peerUp(static_cast<uint32_t>(rank), tick);
    broadcast(w, rank);
}

void
SocketTransport::syncLiveness(int rank)
{
    if (rank_ != 0)
        util::fatal("dist: only the hub syncs liveness");
    for (auto &entry : peers_) {
        if (entry.first == rank || entry.second.alive)
            continue;
        FrameWriter w;
        w.peerDown(static_cast<uint32_t>(entry.first));
        writePeer(rank, w.data(), w.size());
    }
}

void
SocketTransport::broadcastBye(uint64_t final_tick)
{
    FrameWriter w;
    w.bye(final_tick);
    broadcast(w, -1);
}

void
SocketTransport::sendJoin()
{
    JoinFrame j;
    j.rank = static_cast<uint32_t>(rank_);
    j.version = kProtocolVersion;
    j.links = numLinks();
    j.digest = digest_;
    FrameWriter w;
    w.join(j);
    writePeer(0, w.data(), w.size());
}

bool
SocketTransport::waitTickStart(uint64_t tick)
{
    for (;;) {
        if (bye_seen_)
            return false;
        if (tick_start_plus1_ >= tick + 1) {
            if (tick_start_plus1_ != tick + 1)
                util::fatal("dist: rank %d waiting for tick %llu but the "
                            "supervisor already released %llu",
                            rank_,
                            static_cast<unsigned long long>(tick),
                            static_cast<unsigned long long>(
                                tick_start_plus1_ - 1));
            return true;
        }
        pumpOnce();
    }
}

void
SocketTransport::sendTickDone(uint64_t tick)
{
    FrameWriter w;
    w.tickDone(tick, static_cast<uint32_t>(rank_));
    writePeer(0, w.data(), w.size());
}

void
SocketTransport::sendMetricsSnapshot(uint64_t tick, const uint8_t *data,
                                     size_t len)
{
    FrameWriter w;
    w.metrics(static_cast<uint32_t>(rank_), tick, data, len);
    writePeer(0, w.data(), w.size());
}

} // namespace stream
} // namespace nps
