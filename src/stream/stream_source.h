/**
 * @file
 * StreamSource: the online TelemetrySource — reads NPSF frames from a
 * connected file descriptor (Unix/TCP socket or a pipe) and assembles
 * them into per-tick batches.
 *
 * Reads happen on the engine thread inside pull(): the simulation is
 * clocked by the feed, one TICK barrier per tick, which is what makes
 * the online run replay-equivalent to batch. Backpressure is the kernel
 * socket buffer plus a bounded pending window (samples arriving more
 * than max_pending ticks early are dropped and counted); a tick whose
 * barrier does not arrive within timeout_ms is delivered with whatever
 * samples made it, and the absent streams degrade through the feed's
 * silent-stream policy. End-of-stream (BYE, EOF, or a dead peer) ends
 * the run cleanly: only barrier-complete ticks are ever delivered, so a
 * feeder killed mid-tick yields a strict prefix of the batch output,
 * never a half-filled tick.
 */

#ifndef NPS_STREAM_STREAM_SOURCE_H
#define NPS_STREAM_STREAM_SOURCE_H

#include <map>

#include "stream/frame.h"
#include "stream/source.h"
#include "stream/stream_config.h"

namespace nps {
namespace stream {

/**
 * Framed telemetry over a file descriptor.
 */
class StreamSource : public TelemetrySource
{
  public:
    /**
     * @param fd      Connected stream descriptor; the source owns it and
     *                closes it on destruction (stdin is left open).
     * @param streams Expected stream count (the cluster's VM count); a
     *                HELLO advertising anything else is fatal.
     * @param config  Timeout and window knobs (policy fields unused here).
     */
    StreamSource(int fd, size_t streams, const StreamConfig &config);
    ~StreamSource() override;

    StreamSource(const StreamSource &) = delete;
    StreamSource &operator=(const StreamSource &) = delete;

    size_t streams() const override { return expected_; }
    bool pull(size_t tick, TickBatch &batch) override;
    IngestStats *ingest() override { return &ingest_; }
    const DecodeStats *codec() const override { return &decoder_.stats(); }
    size_t backlog() const override { return pending_.size(); }

    /** Frame-level anomaly counters. */
    const DecodeStats &decodeStats() const { return decoder_.stats(); }

    /** The handshake, valid once sawHello(). */
    bool sawHello() const { return got_hello_; }
    const HelloFrame &hello() const { return hello_; }

    /** @return true when the stream ended with bytes of an unfinished
     * frame still buffered (the peer died mid-frame). */
    bool truncated() const { return eof_ && decoder_.buffered() > 0; }

    /** @return true when the peer signed off with a BYE frame. */
    bool sawBye() const { return got_bye_; }

  private:
    enum class ReadResult
    {
        Data,
        Timeout,
        Eof,
    };

    /** One poll+read cycle feeding the decoder. */
    ReadResult readMore();

    /** Decode and file every buffered frame. */
    void drainFrames();

    /** @return true when every sample for @p tick has been promised. */
    bool tickClosed(size_t tick) const
    {
        return have_closed_ && closed_through_ >= tick;
    }

    struct Pending
    {
        std::vector<uint8_t> present;
        std::vector<double> demand;
        size_t count = 0;
    };

    int fd_;
    bool owns_fd_;
    size_t expected_;
    StreamConfig config_;
    FrameDecoder decoder_;
    IngestStats ingest_;
    HelloFrame hello_;
    bool got_hello_ = false;
    bool got_bye_ = false;
    bool eof_ = false;
    bool have_closed_ = false;
    uint64_t closed_through_ = 0; //!< barrier high-water mark
    size_t cursor_ = 0;           //!< tick currently being pulled
    std::map<uint64_t, Pending> pending_;
};

} // namespace stream
} // namespace nps

#endif // NPS_STREAM_STREAM_SOURCE_H
