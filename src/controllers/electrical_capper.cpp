#include "controllers/electrical_capper.h"

#include "obs/decision_trace.h"
#include "obs/metrics.h"
#include "util/logging.h"

namespace nps {
namespace controllers {

ElectricalCapper::ElectricalCapper(sim::Server &server, double limit_watts,
                                   const Params &params)
    : server_(server),
      limit_(limit_watts),
      params_(params),
      name_("CAP/" + std::to_string(server.id())),
      telemetry_(name_ + ".clamp")
{
    if (limit_ <= 0.0)
        util::fatal("CAP/%u: non-positive limit", server.id());
}

void
ElectricalCapper::attachObs(obs::MetricsRegistry *metrics,
                            obs::TraceSink *trace)
{
    if (metrics) {
        obs_engagements_ = metrics->counter(
            "nps_cap_engagements_total", name_,
            "Electrical clamp engage transitions");
    }
    if (trace)
        obs_trace_ = trace->channel(name_);
}

void
ElectricalCapper::publishClamp(bool clamping, size_t tick)
{
    // Edge-triggered: one sample per engage/release transition, carrying
    // the measured power that caused it against the limit.
    if (clamping == clamping_)
        return;
    clamping_ = clamping;
    telemetry_.emit(clamping ? 1.0 : 0.0, server_.lastPower(), tick);
    if (clamping) {
        if (obs_engagements_)
            obs_engagements_->add();
        if (obs_trace_)
            obs_trace_->emit(tick,
                             "clamp engaged: pow=%.6gW > limit=%.6gW, "
                             "overriding EC P-state",
                             server_.lastPower(), limit_);
    } else if (obs_trace_) {
        obs_trace_->emit(tick,
                         "clamp released: P0 safe under %.6gW, authority "
                         "back to EC",
                         limit_);
    }
}

void
ElectricalCapper::observe(size_t tick)
{
    if (faults_ && faults_->down(fault::Level::CAP,
                                 static_cast<long>(server_.id()), tick)) {
        ++degrade_.outage_ticks;
        was_down_ = true;
        return;
    }
    if (server_.platformPower(tick) != sim::PlatformPower::Off)
        record(server_.lastPower() > limit_ + 1e-9);
}

void
ElectricalCapper::step(size_t tick)
{
    if (faults_ && faults_->down(fault::Level::CAP,
                                 static_cast<long>(server_.id()), tick)) {
        // A dead capper leaves the fuse unprotected; nothing graceful is
        // possible here beyond coming back stateless.
        ++degrade_.outage_steps;
        return;
    }
    if (was_down_) {
        was_down_ = false;
        ++degrade_.restarts;
        publishClamp(false, tick);
    }
    if (!server_.isOn(tick)) {
        publishClamp(false, tick);
        return;
    }

    const auto &m = server_.model();
    double demand = server_.lastRealUtil();
    size_t chosen = server_.pstate();

    if (server_.lastPower() > limit_) {
        // Clamp: the fastest state predicted to respect the limit for
        // the current load; fall back to the slowest state.
        size_t p = chosen;
        size_t slowest = m.pstates().slowestIndex();
        while (p < slowest && m.powerForDemand(p, demand) > limit_)
            ++p;
        if (p != chosen && faults_ &&
            faults_->pstateStuck(static_cast<long>(server_.id()), tick)) {
            ++degrade_.stuck_actuations;
        } else {
            server_.setPState(p);
        }
        publishClamp(true, tick);
        return;
    }

    if (clamping_) {
        // Gradual release: step one state faster only while the
        // prediction stays inside the hysteresis margin, and hand
        // authority back to the EC once P0 itself is safe. Releasing in
        // one jump would let the EC re-trip the limit immediately.
        double headroom = limit_ * (1.0 - params_.release_margin);
        size_t p = server_.pstate();
        // A saturated server's measured consumption understates the true
        // demand, so the prediction for the faster state cannot be
        // trusted — hold the clamp.
        bool saturated = server_.lastApparentUtil() >= 0.98;
        if (!saturated && p > 0 &&
            m.powerForDemand(p - 1, demand) <= headroom) {
            if (faults_ && faults_->pstateStuck(
                               static_cast<long>(server_.id()), tick)) {
                ++degrade_.stuck_actuations;
            } else {
                server_.setPState(p - 1);
                p = p - 1;
            }
        }
        if (p == 0 && m.powerForDemand(0, demand) <= headroom)
            publishClamp(false, tick);
    }
}

} // namespace controllers
} // namespace nps
