/**
 * @file
 * Group Manager (GM): power capping at the rack / zone / data-center
 * level.
 *
 * Works like the EM one level up (Eq. GMs): each interval it divides the
 * group budget among its children — child group managers (a zone GM
 * parenting rack GMs), blade enclosures (through their EMs) and
 * standalone servers (through their SMs) — proportionally to their
 * recent power by default. GMs nest to arbitrary depth: a child GM
 * receives its parent's grant on a typed GM→GM budget link and enforces
 * min(its own static cap, the grant), exactly the coordination rule the
 * EM and SM apply one level down. The paper's Figure 2 stack is the
 * one-GM special case.
 *
 * Coordinated mode respects the hierarchy: enclosure grants go to the EM,
 * which subdivides among its blades. Uncoordinated mode models a solo
 * group capper from a different vendor that is blind to the EMs: it
 * assigns per-*server* budgets directly to every server, silently
 * overwriting whatever the EMs set — the actuator overlap the paper calls
 * the most insidious coordination failure.
 */

#ifndef NPS_CONTROLLERS_GROUP_MANAGER_H
#define NPS_CONTROLLERS_GROUP_MANAGER_H

#include <memory>
#include <string>
#include <vector>

#include "bus/control_link.h"
#include "controllers/enclosure_manager.h"
#include "controllers/policies.h"
#include "controllers/server_manager.h"
#include "sim/cluster.h"
#include "sim/engine.h"
#include "util/random.h"

namespace nps {
namespace obs {
class Counter;
class Gauge;
class Histogram;
class MetricsRegistry;
class TraceChannel;
class TraceSink;
} // namespace obs

namespace controllers {

/**
 * The group-level power capper.
 */
class GroupManager : public sim::Actor, public ViolationTracker
{
  public:
    /** Operating mode (see file comment). */
    enum class Mode
    {
        Coordinated,
        Uncoordinated,
    };

    /** Tunable parameters (defaults follow Figure 5). */
    struct Params
    {
        unsigned period = 50;  //!< control interval T_grp
        DivisionPolicy policy = DivisionPolicy::Proportional;
        /** Per-child priorities (Priority policy only). */
        std::vector<int> priorities;
        uint64_t seed = 2;     //!< RNG seed (Random policy)
        double demand_horizon = 20.0;   //!< short smoothing (ticks)
        double history_horizon = 400.0; //!< History policy smoothing
        Mode mode = Mode::Coordinated;
        /**
         * Budget-lease length in ticks on the parent-GM channel: past it
         * a silent parent makes this GM degrade to lease_fallback * its
         * static cap. Only meaningful for nested GMs (the root has no
         * parent); 0 disables leasing.
         */
        unsigned lease_ticks = 0;
        /** Fraction of the static cap enforced while the lease lapsed. */
        double lease_fallback = 1.0;
    };

    /**
     * The managed children of one GM. Division order (and therefore
     * grant-slot order) is groups, then enclosures, then standalone.
     */
    struct Children
    {
        std::vector<GroupManager *> groups;      //!< nested child GMs
        std::vector<EnclosureManager *> enclosures;
        std::vector<ServerManager *> standalone;
        /**
         * SMs of every server in this GM's scope (subtree), in server-id
         * order — the uncoordinated direct-to-server mode's targets and
         * the basis of the scope power measurement.
         */
        std::vector<ServerManager *> all_servers;
    };

    /**
     * The paper's single flat GM over the whole cluster: id 0, name
     * "GM", no child groups.
     */
    GroupManager(sim::Cluster &cluster,
                 std::vector<EnclosureManager *> enclosures,
                 std::vector<ServerManager *> standalone,
                 std::vector<ServerManager *> all_servers,
                 double static_cap, const Params &params);

    /**
     * General (possibly nested) GM.
     *
     * @param cluster    The cluster.
     * @param id         Fault-target / GM→GM link id, unique per GM.
     * @param name       Actor name; also keys the RNG stream.
     * @param children   Managed children (see Children).
     * @param static_cap This group's own budget.
     * @param params     Controller parameters.
     */
    GroupManager(sim::Cluster &cluster, long id, std::string name,
                 Children children, double static_cap,
                 const Params &params);

    /// @name sim::Actor
    /// @{
    const std::string &name() const override { return name_; }
    unsigned period() const override { return params_.period; }
    void observe(size_t tick) override;
    void step(size_t tick) override;
    /// @}

    /** The group's own static budget. */
    double staticCap() const { return static_cap_; }

    /// @name Budget channel (driven by a parent GM, nested GMs only)
    /// @{

    /** Grant from the parent GM; effective = min(static, grant). */
    void setBudget(double watts);

    /**
     * Timestamped variant: additionally refreshes the parent lease and
     * adopts the grant's cascade trace id as this GM's trace context.
     */
    void setBudget(double watts, size_t tick, uint32_t trace = 0);

    /** The budget currently being enforced (ignoring lease expiry). */
    double effectiveCap() const;

    /**
     * The budget divided at @p tick: effectiveCap(), unless the parent
     * lease has lapsed, in which case min(static, fallback * static).
     */
    double currentCap(size_t tick) const;

    /// @}

    /** This GM's id (0 for the root). */
    long id() const { return id_; }

    /** @return true when a parent GM feeds this one. */
    bool hasParent() const { return has_parent_; }

    /** Total last-tick power of every server in this GM's scope. */
    double scopePower() const;

    /** The SMs of every server in this GM's scope, in id order. */
    const std::vector<ServerManager *> &allServers() const
    {
        return all_servers_;
    }

    /** The nested child GMs (empty for a flat Figure-2 GM). */
    const std::vector<GroupManager *> &childGroups() const
    {
        return groups_;
    }

    /** The most recent per-child grants (coordinated mode). */
    const std::vector<double> &lastGrants() const { return last_grants_; }

    /// @name Fault injection
    /// @{

    /**
     * Attach the fault oracle (null = fault-free, the default). The
     * oracle is propagated to this GM's outgoing budget links, where
     * drop/stale faults are actually applied.
     */
    void setFaultInjector(const fault::FaultInjector *faults);

    /** Degradation counters accumulated by the GM. */
    const fault::DegradeStats &degradeStats() const { return degrade_; }

    /// @}

    /**
     * Attach the stream-liveness oracle of an online run (src/stream/)
     * to this GM's server-targeting budget links (GM→SM: standalone
     * grants and the uncoordinated direct-to-server channels): grants
     * to a server whose telemetry stream is silent are dropped like a
     * lost link. Group- and enclosure-targeting links are unaffected —
     * stream liveness is a per-server property. Null detaches.
     */
    void setStreamHealth(const fault::StreamHealth *health);

    /** Mirror this GM's outgoing budget links into @p log. */
    void attachControlLog(bus::ControlPlaneLog *log);

    /** Record this GM's outgoing budget hops into @p tracer. */
    void attachCascade(bus::CascadeTracer *tracer);

    /**
     * Cascade trace context: the root GM's is the epoch it most
     * recently opened (tick + 1 of its last division); a nested GM's is
     * the trace id of the last parent grant it received.
     */
    uint32_t cascadeStamp() const override { return trace_ctx_; }

    /**
     * Route this GM's outgoing budget links through @p transport (null
     * detaches). @p owner maps the link's owning (level, id) to the
     * process rank hosting it; all of this GM's links are owned by
     * (Gm, id()). Wiring time only, before the engine runs.
     */
    void attachTransport(bus::Transport *transport,
                         const bus::OwnerFn &owner);

    /**
     * Register this GM's metrics series and decision-trace channel.
     * Either argument may be null; wiring time only (not thread-safe).
     */
    void attachObs(obs::MetricsRegistry *metrics, obs::TraceSink *trace);

    /** Serialize mutable controller state (checkpointing). */
    void saveState(ckpt::SectionWriter &w) const;

    /** Restore mutable controller state (checkpoint restore). */
    void loadState(ckpt::SectionReader &r);

  private:
    /** Coordinated step: divide among groups + enclosures + standalone. */
    void stepCoordinated(size_t tick);

    /** Uncoordinated step: divide among all servers directly. */
    void stepUncoordinated(size_t tick);

    /** @return true when the parent budget lease lapsed as of @p tick. */
    bool leaseLapsed(size_t tick) const;

    /** Register one coordinated child budget link (slot order). */
    void addChildLink(fault::Link link, long child,
                      const std::string &peer, bus::BudgetLink::Sink sink);

    /** Cold restart after an outage: forget estimates and grant state. */
    void restartCold(size_t tick);

    sim::Cluster &cluster_;
    long id_;
    std::vector<GroupManager *> groups_;
    std::vector<EnclosureManager *> enclosures_;
    std::vector<ServerManager *> standalone_;
    std::vector<ServerManager *> all_servers_;
    /**
     * Server ids of all_servers_, in the same order: the scope power
     * fold and the per-server estimate loops index the cluster's
     * contiguous SoA power array through these ids instead of chasing
     * SM -> Server -> store pointers, which at fleet scale turns a
     * cache-missing pointer walk into a linear array scan (identical
     * values, identical fold order).
     */
    std::vector<sim::ServerId> scope_ids_;
    /**
     * Per-server demand estimates feed only the uncoordinated
     * direct-to-server division; coordinated GMs skip maintaining them
     * (the vectors stay zero-filled, keeping the checkpoint layout).
     */
    bool track_server_ewmas_ = true;
    double static_cap_;
    double dynamic_cap_;
    Params params_;
    std::string name_;
    util::Rng rng_;
    /** Child power estimates: coordinated children then all servers. */
    std::vector<double> child_demand_;
    std::vector<double> child_history_;
    std::vector<double> server_demand_;
    std::vector<double> server_history_;
    std::vector<double> last_grants_;
    /** Coordinated-mode budget channels, in child (slot) order. */
    std::vector<std::unique_ptr<bus::BudgetLink>> child_links_;
    /** Uncoordinated-mode direct-to-server channels, in server order. */
    std::vector<std::unique_ptr<bus::BudgetLink>> server_links_;
    const fault::FaultInjector *faults_ = nullptr;
    fault::DegradeStats degrade_;
    bool has_parent_ = false;
    size_t budget_tick_ = 0;     //!< receipt tick of the live grant
    uint32_t trace_ctx_ = 0;     //!< cascade trace context (see above)
    bool lease_expired_ = false; //!< edge detector for lease_expiries
    bool was_down_ = false;      //!< edge detector for restarts

    obs::Counter *obs_divisions_ = nullptr;
    obs::Counter *obs_lease_expiries_ = nullptr;
    obs::Counter *obs_restarts_ = nullptr;
    obs::Gauge *obs_cap_ = nullptr;
    obs::Gauge *obs_scope_power_ = nullptr;
    obs::Histogram *obs_grants_ = nullptr;
    obs::TraceChannel *obs_trace_ = nullptr;
};

} // namespace controllers
} // namespace nps

#endif // NPS_CONTROLLERS_GROUP_MANAGER_H
