/**
 * @file
 * Group Manager (GM): power capping at the rack / data-center level.
 *
 * Works like the EM one level up (Eq. GMs): each interval it divides the
 * group budget among its children — blade enclosures (through their EMs)
 * and standalone servers (through their SMs) — proportionally to their
 * recent power by default.
 *
 * Coordinated mode respects the hierarchy: enclosure grants go to the EM,
 * which subdivides among its blades. Uncoordinated mode models a solo
 * group capper from a different vendor that is blind to the EMs: it
 * assigns per-*server* budgets directly to every server, silently
 * overwriting whatever the EMs set — the actuator overlap the paper calls
 * the most insidious coordination failure.
 */

#ifndef NPS_CONTROLLERS_GROUP_MANAGER_H
#define NPS_CONTROLLERS_GROUP_MANAGER_H

#include <string>
#include <vector>

#include "controllers/enclosure_manager.h"
#include "controllers/policies.h"
#include "controllers/server_manager.h"
#include "sim/cluster.h"
#include "sim/engine.h"
#include "util/random.h"

namespace nps {
namespace controllers {

/**
 * The group-level power capper.
 */
class GroupManager : public sim::Actor, public ViolationTracker
{
  public:
    /** Operating mode (see file comment). */
    enum class Mode
    {
        Coordinated,
        Uncoordinated,
    };

    /** Tunable parameters (defaults follow Figure 5). */
    struct Params
    {
        unsigned period = 50;  //!< control interval T_grp
        DivisionPolicy policy = DivisionPolicy::Proportional;
        /** Per-child priorities (Priority policy only). */
        std::vector<int> priorities;
        uint64_t seed = 2;     //!< RNG seed (Random policy)
        double demand_horizon = 20.0;   //!< short smoothing (ticks)
        double history_horizon = 400.0; //!< History policy smoothing
        Mode mode = Mode::Coordinated;
    };

    /**
     * @param cluster     The cluster.
     * @param enclosures  EMs of all enclosures (coordinated children).
     * @param standalone  SMs of the standalone servers.
     * @param all_servers SMs of *every* server, in server-id order (used
     *                    by the uncoordinated direct-to-server mode).
     * @param static_cap  The group budget CAP_GRP.
     * @param params      Controller parameters.
     */
    GroupManager(sim::Cluster &cluster,
                 std::vector<EnclosureManager *> enclosures,
                 std::vector<ServerManager *> standalone,
                 std::vector<ServerManager *> all_servers,
                 double static_cap, const Params &params);

    /// @name sim::Actor
    /// @{
    const std::string &name() const override { return name_; }
    unsigned period() const override { return params_.period; }
    void observe(size_t tick) override;
    void step(size_t tick) override;
    /// @}

    /** The group budget CAP_GRP. */
    double staticCap() const { return static_cap_; }

    /** The most recent per-child grants (coordinated mode). */
    const std::vector<double> &lastGrants() const { return last_grants_; }

    /// @name Fault injection
    /// @{

    /** Attach the fault oracle (null = fault-free, the default). */
    void setFaultInjector(const fault::FaultInjector *faults)
    {
        faults_ = faults;
    }

    /** Degradation counters accumulated by the GM. */
    const fault::DegradeStats &degradeStats() const { return degrade_; }

    /// @}

  private:
    /** Coordinated step: divide among enclosures + standalone servers. */
    void stepCoordinated(size_t tick);

    /** Uncoordinated step: divide among all servers directly. */
    void stepUncoordinated(size_t tick);

    /** Cold restart after an outage: forget demand estimates and grants. */
    void restartCold();

    /**
     * Deliver @p grant to child @p id on @p link, honoring any active
     * drop/stale fault. @p send receives the value to forward (fresh or
     * previous-epoch); @return false when the send was dropped.
     */
    bool faultedSend(fault::Link link, long id, size_t tick, size_t slot,
                     double grant, double &send);

    sim::Cluster &cluster_;
    std::vector<EnclosureManager *> enclosures_;
    std::vector<ServerManager *> standalone_;
    std::vector<ServerManager *> all_servers_;
    double static_cap_;
    Params params_;
    std::string name_;
    util::Rng rng_;
    /** Child power estimates: coordinated children then all servers. */
    std::vector<double> child_demand_;
    std::vector<double> child_history_;
    std::vector<double> server_demand_;
    std::vector<double> server_history_;
    std::vector<double> last_grants_;
    std::vector<double> prev_grants_; //!< previous epoch (stale delivery)
    const fault::FaultInjector *faults_ = nullptr;
    fault::DegradeStats degrade_;
    bool was_down_ = false; //!< edge detector for restarts
};

} // namespace controllers
} // namespace nps

#endif // NPS_CONTROLLERS_GROUP_MANAGER_H
