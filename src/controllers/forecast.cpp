#include "controllers/forecast.h"

#include <algorithm>

#include "util/logging.h"

namespace nps {
namespace controllers {

const char *
forecastMethodName(ForecastMethod method)
{
    switch (method) {
      case ForecastMethod::LastValue:  return "last";
      case ForecastMethod::Ewma:       return "ewma";
      case ForecastMethod::HoltLinear: return "holt";
    }
    return "?";
}

DemandForecaster::DemandForecaster(const Params &params)
    : params_(params)
{
    if (params_.alpha <= 0.0 || params_.alpha > 1.0)
        util::fatal("DemandForecaster: alpha %f out of (0,1]",
                    params_.alpha);
    if (params_.beta < 0.0 || params_.beta > 1.0)
        util::fatal("DemandForecaster: beta %f out of [0,1]",
                    params_.beta);
}

void
DemandForecaster::observe(double value)
{
    if (count_ == 0) {
        level_ = value;
        trend_ = 0.0;
        ++count_;
        return;
    }
    switch (params_.method) {
      case ForecastMethod::LastValue:
        level_ = value;
        break;
      case ForecastMethod::Ewma:
        level_ += params_.alpha * (value - level_);
        break;
      case ForecastMethod::HoltLinear: {
        double prev_level = level_;
        level_ = params_.alpha * value +
                 (1.0 - params_.alpha) * (level_ + trend_);
        trend_ = params_.beta * (level_ - prev_level) +
                 (1.0 - params_.beta) * trend_;
        break;
      }
    }
    ++count_;
}

double
DemandForecaster::forecast(size_t horizon) const
{
    if (count_ == 0)
        return 0.0;
    if (horizon == 0)
        util::fatal("DemandForecaster::forecast: zero horizon");
    double h = static_cast<double>(horizon);
    double value = params_.method == ForecastMethod::HoltLinear
                       ? level_ + h * trend_
                       : level_;
    return std::max(0.0, value);
}

void
DemandForecaster::reset()
{
    level_ = 0.0;
    trend_ = 0.0;
    count_ = 0;
}

} // namespace controllers
} // namespace nps
