#include "controllers/memory_manager.h"

#include "obs/decision_trace.h"
#include "obs/metrics.h"
#include "util/logging.h"

namespace nps {
namespace controllers {

MemoryManager::MemoryManager(sim::Server &server, const Params &params)
    : server_(server),
      params_(params),
      name_("MM/" + std::to_string(server.id())),
      telemetry_(name_ + ".memmode")
{
    if (params_.engage_below >= params_.release_above)
        util::fatal("MM/%u: engage threshold %f must sit below the "
                    "release threshold %f", server.id(),
                    params_.engage_below, params_.release_above);
}

void
MemoryManager::attachObs(obs::MetricsRegistry *metrics,
                         obs::TraceSink *trace)
{
    if (metrics) {
        obs_engagements_ = metrics->counter(
            "nps_mm_engagements_total", name_,
            "Memory low-power mode engage transitions");
    }
    if (trace)
        obs_trace_ = trace->channel(name_);
}

void
MemoryManager::setMode(bool low, size_t tick)
{
    // Edge-triggered telemetry: one sample per engage/release, carrying
    // the apparent utilization that drove the decision.
    if (low == server_.memLowPower())
        return;
    server_.setMemLowPower(low);
    telemetry_.emit(low ? 1.0 : 0.0, server_.lastApparentUtil(), tick);
    if (low && obs_engagements_)
        obs_engagements_->add();
    if (obs_trace_)
        obs_trace_->emit(tick, "mem low-power %s: util=%.6g",
                         low ? "engaged" : "released",
                         server_.lastApparentUtil());
}

void
MemoryManager::step(size_t tick)
{
    if (!server_.isOn(tick)) {
        setMode(false, tick);
        quiet_steps_ = 0;
        return;
    }
    double util = server_.lastApparentUtil();
    if (server_.memLowPower()) {
        if (util > params_.release_above) {
            setMode(false, tick);
            quiet_steps_ = 0;
        }
        return;
    }
    if (util < params_.engage_below) {
        if (++quiet_steps_ >= params_.engage_patience) {
            setMode(true, tick);
            ++engagements_;
            quiet_steps_ = 0;
        }
    } else {
        quiet_steps_ = 0;
    }
}

} // namespace controllers
} // namespace nps
