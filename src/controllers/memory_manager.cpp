#include "controllers/memory_manager.h"

#include "util/logging.h"

namespace nps {
namespace controllers {

MemoryManager::MemoryManager(sim::Server &server, const Params &params)
    : server_(server),
      params_(params),
      name_("MM/" + std::to_string(server.id()))
{
    if (params_.engage_below >= params_.release_above)
        util::fatal("MM/%u: engage threshold %f must sit below the "
                    "release threshold %f", server.id(),
                    params_.engage_below, params_.release_above);
}

void
MemoryManager::step(size_t tick)
{
    if (!server_.isOn(tick)) {
        server_.setMemLowPower(false);
        quiet_steps_ = 0;
        return;
    }
    double util = server_.lastApparentUtil();
    if (server_.memLowPower()) {
        if (util > params_.release_above) {
            server_.setMemLowPower(false);
            quiet_steps_ = 0;
        }
        return;
    }
    if (util < params_.engage_below) {
        if (++quiet_steps_ >= params_.engage_patience) {
            server_.setMemLowPower(true);
            ++engagements_;
            quiet_steps_ = 0;
        }
    } else {
        quiet_steps_ = 0;
    }
}

} // namespace controllers
} // namespace nps
