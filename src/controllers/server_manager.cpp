#include "controllers/server_manager.h"

#include <algorithm>

#include "control/stability.h"
#include "util/logging.h"

namespace nps {
namespace controllers {

double
ViolationTracker::epochViolationRate() const
{
    if (epoch_total_ == 0)
        return 0.0;
    return static_cast<double>(epoch_hits_) /
           static_cast<double>(epoch_total_);
}

void
ViolationTracker::drainEpoch()
{
    epoch_total_ = 0;
    epoch_hits_ = 0;
}

double
ViolationTracker::lifetimeViolationRate() const
{
    if (life_total_ == 0)
        return 0.0;
    return static_cast<double>(life_hits_) /
           static_cast<double>(life_total_);
}

GrantBounds
grantBounds(const sim::Server &server, size_t tick)
{
    GrantBounds b;
    if (server.platformPower(tick) == sim::PlatformPower::Off) {
        b.floor = server.spec().offWatts();
        b.max = server.spec().offWatts();
        return b;
    }
    const auto &m = server.model();
    b.floor = m.idlePower(m.pstates().slowestIndex());
    b.max = m.maxPower();
    return b;
}

ServerManager::ServerManager(sim::Server &server, EfficiencyController *ec,
                             double static_cap, const Params &params)
    : ctl::ControlLoop("SM/" + std::to_string(server.id())),
      server_(server),
      ec_(ec),
      static_cap_(static_cap),
      dynamic_cap_(static_cap),
      params_(params),
      name_("SM/" + std::to_string(server.id())),
      r_ref_(params.r_ref_min, params.r_ref_min, params.r_ref_max)
{
    if (static_cap_ <= 0.0)
        util::fatal("SM/%u: non-positive static cap", server.id());
    if (params_.mode == Mode::Coordinated && !ec_)
        util::fatal("SM/%u: coordinated mode requires a nested EC",
                    server.id());
    // Normalized-power stability check: the effective slope of power with
    // respect to r_ref is bounded by maxPowerSlope()/maxPower.
    double c_max = server_.model().maxPowerSlope() /
                   server_.model().maxPower();
    if (!ctl::smGainStable(params_.beta, c_max)) {
        util::warn("SM/%u: beta %f violates the stability bound 2/c_max "
                   "= %f", server.id(), params_.beta,
                   ctl::smBetaBound(c_max));
    }
    setReference(effectiveCap());
}

void
ServerManager::setBudget(double watts)
{
    if (watts <= 0.0)
        util::fatal("SM/%u: non-positive budget recommendation",
                    server_.id());
    dynamic_cap_ = watts;
    setReference(effectiveCap());
}

double
ServerManager::effectiveCap() const
{
    if (params_.mode == Mode::Coordinated)
        return std::min(static_cap_, dynamic_cap_);
    // Solo capper: the management console's setting is the setting.
    return dynamic_cap_;
}

void
ServerManager::observe(size_t tick)
{
    // Violation bookkeeping runs at tick granularity and against the
    // *static* budget: dynamic grants re-provision headroom but the
    // physical fuse/fan limit is CAP_LOC, and that is the signal the
    // exposed (CIM-style) interface reports to the VMC.
    if (server_.platformPower(tick) != sim::PlatformPower::Off)
        record(server_.lastPower() > static_cap_ + 1e-9);
}

void
ServerManager::step(size_t tick)
{
    if (!server_.isOn(tick))
        return;
    if (params_.mode == Mode::DirectPState) {
        stepDirect();
        return;
    }
    setReference(effectiveCap());
    ControlLoop::step();
}

double
ServerManager::measure()
{
    return server_.lastPower();
}

double
ServerManager::control(double error, double measurement)
{
    (void)measurement;
    // r_ref(k) = r_ref(k-1) - beta * (cap - pow), with power normalized
    // by the machine's peak so beta is machine-independent. The release
    // direction (power under cap, error > 0) uses a reduced gain.
    double norm_error = error / server_.model().maxPower();
    double beta = params_.beta *
                  (error > 0.0 ? params_.release_gain_ratio : 1.0);
    return r_ref_.update(-beta, norm_error);
}

void
ServerManager::actuate(double value)
{
    ec_->setReference(value);
}

void
ServerManager::stepDirect()
{
    double pow = server_.lastPower();
    double cap = effectiveCap();
    const auto &m = server_.model();
    size_t p = server_.pstate();
    size_t slowest = server_.spec().pstates().slowestIndex();
    if (pow > cap) {
        // Hardware cappers clamp immediately: jump to the fastest state
        // predicted to respect the budget for the current load.
        double demand = server_.lastRealUtil();
        size_t q = p;
        while (q < slowest && m.powerForDemand(q, demand) > cap)
            ++q;
        server_.setPState(q);
    } else if (pow < cap * (1.0 - params_.unthrottle_margin) && p > 0) {
        // Solo cappers restore performance when comfortably under budget.
        server_.setPState(p - 1);
    }
}

} // namespace controllers
} // namespace nps
