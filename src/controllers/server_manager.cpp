#include "controllers/server_manager.h"

#include <algorithm>

#include "control/stability.h"
#include "obs/decision_trace.h"
#include "obs/metrics.h"
#include "util/logging.h"

namespace nps {
namespace controllers {

GrantBounds
grantBounds(const sim::Server &server, size_t tick)
{
    GrantBounds b;
    if (server.platformPower(tick) == sim::PlatformPower::Off) {
        b.floor = server.spec().offWatts();
        b.max = server.spec().offWatts();
        return b;
    }
    const auto &m = server.model();
    b.floor = m.idlePower(m.pstates().slowestIndex());
    b.max = m.maxPower();
    return b;
}

ServerManager::ServerManager(sim::Server &server, EfficiencyController *ec,
                             double static_cap, const Params &params)
    : ctl::ControlLoop("SM/" + std::to_string(server.id())),
      server_(server),
      ec_(ec),
      static_cap_(static_cap),
      dynamic_cap_(static_cap),
      params_(params),
      name_("SM/" + std::to_string(server.id())),
      r_ref_(params.r_ref_min, params.r_ref_min, params.r_ref_max)
{
    if (static_cap_ <= 0.0)
        util::fatal("SM/%u: non-positive static cap", server.id());
    if (params_.mode == Mode::Coordinated && !ec_)
        util::fatal("SM/%u: coordinated mode requires a nested EC",
                    server.id());
    if (ec_) {
        ref_link_.emplace(
            name_ + "->EC/" + std::to_string(server.id()),
            [this](const bus::ReferenceUpdate &u) {
                ec_->setReference(u.r_ref);
            });
    }
    // Normalized-power stability check: the effective slope of power with
    // respect to r_ref is bounded by maxPowerSlope()/maxPower.
    double c_max = server_.model().maxPowerSlope() /
                   server_.model().maxPower();
    if (!ctl::smGainStable(params_.beta, c_max)) {
        util::warn("SM/%u: beta %f violates the stability bound 2/c_max "
                   "= %f", server.id(), params_.beta,
                   ctl::smBetaBound(c_max));
    }
    setReference(effectiveCap());
}

void
ServerManager::setBudget(double watts)
{
    if (watts <= 0.0)
        util::fatal("SM/%u: non-positive budget recommendation",
                    server_.id());
    dynamic_cap_ = watts;
    setReference(effectiveCap());
}

void
ServerManager::setBudget(double watts, size_t tick, uint32_t trace)
{
    setBudget(watts);
    budget_tick_ = tick;
    trace_ctx_ = trace;
    if (params_.mode == Mode::Coordinated && watts < static_cap_) {
        if (obs_grant_clamps_)
            obs_grant_clamps_->add();
        if (obs_trace_)
            obs_trace_->emit(tick,
                             "clamped budget %.6gW -> %.6gW: grant < "
                             "static",
                             static_cap_, watts);
    }
}

void
ServerManager::attachObs(obs::MetricsRegistry *metrics,
                         obs::TraceSink *trace)
{
    if (metrics) {
        obs_grant_clamps_ = metrics->counter(
            "nps_sm_grant_clamps_total", name_,
            "Dynamic grants below the static cap (grant won the min)");
        obs_lease_expiries_ = metrics->counter(
            "nps_sm_lease_expiries_total", name_,
            "Budget leases that lapsed into the local fallback cap");
        obs_ec_fallback_steps_ = metrics->counter(
            "nps_sm_ec_fallback_steps_total", name_,
            "Steps spent capping P-states directly because the nested "
            "EC was down");
        obs_restarts_ = metrics->counter(
            "nps_sm_restarts_total", name_,
            "Cold restarts after an SM outage");
        obs_cap_ = metrics->gauge(
            "nps_sm_cap_watts", name_,
            "Budget enforced by the SM at its most recent step");
    }
    if (trace)
        obs_trace_ = trace->channel(name_);
}

double
ServerManager::effectiveCap() const
{
    if (params_.mode == Mode::Coordinated)
        return std::min(static_cap_, dynamic_cap_);
    // Solo capper: the management console's setting is the setting.
    return dynamic_cap_;
}

bool
ServerManager::leaseLapsed(size_t tick) const
{
    return params_.mode == Mode::Coordinated && params_.lease_ticks > 0 &&
           tick > budget_tick_ + params_.lease_ticks;
}

double
ServerManager::currentCap(size_t tick) const
{
    if (leaseLapsed(tick))
        return std::min(static_cap_, params_.lease_fallback * static_cap_);
    return effectiveCap();
}

void
ServerManager::restartCold(size_t tick)
{
    // A restarted SM has no memory of its integrator or of any grant its
    // parent sent while it was down; it re-enters on the static budget
    // with a fresh lease and waits for the next recommendation.
    r_ref_.setValue(params_.r_ref_min);
    ControlLoop::reset();
    dynamic_cap_ = static_cap_;
    budget_tick_ = tick;
    trace_ctx_ = 0;
    lease_expired_ = false;
    setReference(effectiveCap());
}

void
ServerManager::observe(size_t tick)
{
    if (faults_) {
        if (faults_->down(fault::Level::SM,
                          static_cast<long>(server_.id()), tick)) {
            // A down SM records nothing — its CIM interface is dark.
            ++degrade_.outage_ticks;
            was_down_ = true;
            return;
        }
        if (was_down_) {
            was_down_ = false;
            ++degrade_.restarts;
            if (obs_restarts_)
                obs_restarts_->add();
            if (obs_trace_)
                obs_trace_->emit(tick,
                                 "cold restart after outage: static "
                                 "budget %.6gW, fresh lease",
                                 static_cap_);
            restartCold(tick);
        }
    }
    // Violation bookkeeping runs at tick granularity and against the
    // *static* budget: dynamic grants re-provision headroom but the
    // physical fuse/fan limit is CAP_LOC, and that is the signal the
    // exposed (CIM-style) interface reports to the VMC.
    if (server_.platformPower(tick) != sim::PlatformPower::Off)
        record(server_.lastPower() > static_cap_ + 1e-9);
}

void
ServerManager::attachControlLog(bus::ControlPlaneLog *log)
{
    if (ref_link_)
        ref_link_->attachLog(log);
}

void
ServerManager::attachTransport(bus::Transport *transport,
                               const bus::OwnerFn &owner)
{
    if (!ref_link_)
        return;
    const int rank =
        owner ? owner(bus::OwnerLevel::Sm, static_cast<long>(server_.id()))
              : 0;
    ref_link_->setTransport(transport, rank);
}

void
ServerManager::step(size_t tick)
{
    step_tick_ = tick;
    if (faults_ && faults_->down(fault::Level::SM,
                                 static_cast<long>(server_.id()), tick)) {
        ++degrade_.outage_steps;
        return;
    }
    if (!server_.isOn(tick))
        return;

    // Lease bookkeeping: degrade to the conservative local cap when the
    // parent has gone silent past the lease, and recover the moment a
    // fresh grant lands.
    bool lapsed = leaseLapsed(tick);
    if (lapsed) {
        if (!lease_expired_) {
            lease_expired_ = true;
            ++degrade_.lease_expiries;
            if (obs_lease_expiries_)
                obs_lease_expiries_->add();
            if (obs_trace_)
                obs_trace_->emit(tick,
                                 "lease expired (grant from tick %zu, "
                                 "lease %u) -> fallback cap %.6gW",
                                 budget_tick_, params_.lease_ticks,
                                 currentCap(tick));
        }
        ++degrade_.lease_fallback_steps;
    } else {
        if (lease_expired_ && obs_trace_)
            obs_trace_->emit(tick,
                             "lease recovered: fresh grant, enforcing "
                             "%.6gW",
                             effectiveCap());
        lease_expired_ = false;
    }
    double cap = currentCap(tick);
    if (obs_cap_)
        obs_cap_->set(cap);

    bool ec_down = faults_ && ec_ &&
                   faults_->down(fault::Level::EC,
                                 static_cast<long>(server_.id()), tick);
    if (params_.mode == Mode::DirectPState || ec_down) {
        // With the nested EC down nobody runs the inner loop; the SM
        // degrades to capping P-states directly, like a solo product.
        if (ec_down && params_.mode == Mode::Coordinated) {
            ++degrade_.ec_fallback_steps;
            if (obs_ec_fallback_steps_)
                obs_ec_fallback_steps_->add();
            if (!ec_fallback_ && obs_trace_)
                obs_trace_->emit(tick, "nested EC down -> direct "
                                       "P-state capping");
            ec_fallback_ = true;
        }
        stepDirect(tick, cap);
        return;
    }
    if (ec_fallback_) {
        ec_fallback_ = false;
        if (obs_trace_)
            obs_trace_->emit(tick, "nested EC back -> r_ref actuation "
                                   "resumed");
    }
    setReference(cap);
    ControlLoop::step();
}

double
ServerManager::measure()
{
    return server_.lastPower();
}

double
ServerManager::control(double error, double measurement)
{
    (void)measurement;
    // r_ref(k) = r_ref(k-1) - beta * (cap - pow), with power normalized
    // by the machine's peak so beta is machine-independent. The release
    // direction (power under cap, error > 0) uses a reduced gain.
    double norm_error = error / server_.model().maxPower();
    double beta = params_.beta *
                  (error > 0.0 ? params_.release_gain_ratio : 1.0);
    return r_ref_.update(-beta, norm_error);
}

void
ServerManager::actuate(double value)
{
    ref_link_->send(value, step_tick_);
}

void
ServerManager::stepDirect(size_t tick, double cap)
{
    double pow = server_.lastPower();
    const auto &m = server_.model();
    size_t p = server_.pstate();
    size_t slowest = server_.spec().pstates().slowestIndex();
    size_t q = p;
    if (pow > cap) {
        // Hardware cappers clamp immediately: jump to the fastest state
        // predicted to respect the budget for the current load.
        double demand = server_.lastRealUtil();
        while (q < slowest && m.powerForDemand(q, demand) > cap)
            ++q;
    } else if (pow < cap * (1.0 - params_.unthrottle_margin) && p > 0) {
        // Solo cappers restore performance when comfortably under budget.
        q = p - 1;
    }
    if (q == p)
        return;
    if (faults_ && faults_->pstateStuck(static_cast<long>(server_.id()),
                                        tick)) {
        // The firmware actuator swallowed the write.
        ++degrade_.stuck_actuations;
        return;
    }
    if (obs_trace_)
        obs_trace_->emit(tick, "%s P%zu -> P%zu: pow=%.6gW cap=%.6gW",
                         q > p ? "throttle" : "unthrottle", p, q, pow,
                         cap);
    server_.setPState(q);
}

void
ServerManager::saveState(ckpt::SectionWriter &w) const
{
    w.putDouble(reference());
    w.putDouble(lastMeasurement());
    w.putDouble(lastError());
    w.putU64(steps());
    ViolationTracker::saveState(w);
    w.putDouble(dynamic_cap_);
    w.putDouble(r_ref_.value());
    w.putU64(step_tick_);
    degrade_.saveState(w);
    w.putU64(budget_tick_);
    w.putU32(trace_ctx_);
    w.putBool(lease_expired_);
    w.putBool(was_down_);
    w.putBool(ec_fallback_);
    w.putBool(ref_link_.has_value());
    if (ref_link_)
        ref_link_->saveState(w);
}

void
ServerManager::loadState(ckpt::SectionReader &r)
{
    double ref = r.getDouble();
    double meas = r.getDouble();
    double err = r.getDouble();
    auto steps = static_cast<unsigned long>(r.getU64());
    restoreLoopState(ref, meas, err, steps);
    ViolationTracker::loadState(r);
    dynamic_cap_ = r.getDouble();
    r_ref_.setValue(r.getDouble());
    step_tick_ = static_cast<size_t>(r.getU64());
    degrade_.loadState(r);
    budget_tick_ = static_cast<size_t>(r.getU64());
    trace_ctx_ = r.getU32();
    lease_expired_ = r.getBool();
    was_down_ = r.getBool();
    ec_fallback_ = r.getBool();
    bool has_link = r.getBool();
    if (has_link != ref_link_.has_value())
        util::fatal("SM %s restore: reference-link presence mismatch "
                    "(snapshot %d, rebuilt %d)",
                    name().c_str(), has_link ? 1 : 0,
                    ref_link_ ? 1 : 0);
    if (ref_link_)
        ref_link_->loadState(r);
}

} // namespace controllers
} // namespace nps
