/**
 * @file
 * VM Controller (VMC): data-center-wide consolidation for average power.
 *
 * Every epoch the VMC solves the placement problem of Eq. (VMCs) with a
 * greedy bin-packing approximation: minimize estimated total power plus
 * migration cost, subject to server capacity and (in coordinated mode)
 * the local/enclosure/group power budgets shrunk by feedback-tuned
 * buffers. Idle machines are powered off when allowed.
 *
 * The two coordination-critical behaviors (Section 3.1):
 *  1. *real* utilization — measured VM utilization is translated to
 *     full-speed units so throttled servers are not misread;
 *  2. budget awareness — budgets act as packing constraints, and exposed
 *     budget-violation rates tune the buffers b_loc/b_enc/b_grp that damp
 *     consolidation aggressiveness (breaking the vicious cycle).
 * Both are switchable so the paper's ablations (Figure 9) can disable
 * them one at a time.
 */

#ifndef NPS_CONTROLLERS_VM_CONTROLLER_H
#define NPS_CONTROLLERS_VM_CONTROLLER_H

#include <memory>
#include <string>
#include <vector>

#include "bus/control_link.h"
#include "controllers/binpack.h"
#include "controllers/forecast.h"
#include "controllers/server_manager.h"
#include "fault/injector.h"
#include "sim/cluster.h"
#include "sim/engine.h"

namespace nps {
namespace obs {
class Counter;
class Gauge;
class MetricsRegistry;
class TraceChannel;
class TraceSink;
} // namespace obs

namespace controllers {

/**
 * The consolidation controller.
 */
class VmController : public sim::Actor
{
  public:
    /** Tunable parameters (defaults follow Figure 5). */
    struct Params
    {
        unsigned period = 500;          //!< epoch length T_vmc
        bool use_real_util = true;      //!< coordinated utilization input
        bool use_budget_constraints = true;  //!< Eqs. (3)-(5)
        bool use_violation_feedback = true;  //!< buffer tuning
        bool allow_power_off = true;    //!< turn empty machines off
        double capacity_target = 0.90;  //!< max packed load per server
        double util_limit = 0.75;       //!< EC target used in estimates
        double alpha_v = 0.10;          //!< virtualization overhead
        double alpha_m = 0.10;          //!< migration overhead weight
        size_t migration_ticks = 50;    //!< pre-copy duration
        double buffer_gain = 0.5;       //!< violation-rate -> buffer gain
        /**
         * The epoch length buffer_gain is calibrated for. The effective
         * per-epoch gain is buffer_gain * gain_ref_period / period, so
         * the feedback integrates violations at a fixed *rate per tick*:
         * running the VMC more frequently makes the feedback parameter
         * proportionally more aggressive (Section 5.4's explanation of
         * the time-constant sensitivity).
         */
        unsigned gain_ref_period = 500;
        double buffer_decay = 0.5;      //!< per-epoch buffer retention
        double buffer_max = 0.35;       //!< clamp on each buffer
        double buffer_init = 0.02;      //!< initial (pre-feedback) buffer
        /**
         * Adoption hysteresis: a new plan must beat the current one by
         * this fraction of estimated power (unless the current placement
         * has become infeasible), damping migration churn.
         */
        double adoption_margin = 0.02;
        /**
         * Demand-spread allowance: VMs are packed at mean + this many
         * standard deviations of their observed per-tick load, preserving
         * the statistical headroom the capping levels expect
         * (Section 3.1). The naive solo consolidator sets this to 0 and
         * packs on bare means.
         */
        double spread_sigma = 0.5;
        /**
         * Predictive packing: when true, each VM's epoch means feed a
         * per-VM forecaster and the packer sizes against the *next*
         * epoch's predicted demand (plus the spread allowance) instead
         * of the last epoch's average — anticipating ramps instead of
         * chasing them.
         */
        bool use_forecast = false;
        DemandForecaster::Params forecast;
    };

    /** Violation feeds for the feedback buffers (may be empty). */
    struct Feedback
    {
        std::vector<ViolationSource *> local;     //!< the SMs
        std::vector<ViolationSource *> enclosure; //!< the EMs
        ViolationSource *group = nullptr;         //!< the root GM
        /** Nested sub-GMs; their rates average into the group tier. */
        std::vector<ViolationSource *> subgroup;
    };

    /** Running statistics of the controller. */
    struct Stats
    {
        unsigned long epochs = 0;      //!< completed optimization epochs
        unsigned long migrations = 0;  //!< VM moves applied
        unsigned long adoptions = 0;   //!< epochs whose new plan was used
        unsigned long infeasible = 0;  //!< epochs with infeasible packing
        double last_est_power = 0.0;   //!< estimate of the adopted plan
    };

    /**
     * @param cluster  The managed cluster.
     * @param feedback Violation feeds (pass empty feeds when the
     *                 coordination interfaces are disabled).
     * @param params   Controller parameters.
     */
    VmController(sim::Cluster &cluster, Feedback feedback,
                 const Params &params);

    /// @name sim::Actor
    /// @{
    const std::string &name() const override { return name_; }
    unsigned period() const override { return params_.period; }
    void observe(size_t tick) override;
    void step(size_t tick) override;
    /// @}

    /** Active parameters. */
    const Params &params() const { return params_; }

    /** Running statistics. */
    const Stats &stats() const { return stats_; }

    /** Current feedback buffers (b_loc, b_enc, b_grp). */
    double bufferLoc() const { return b_loc_; }
    double bufferEnc() const { return b_enc_; }
    double bufferGrp() const { return b_grp_; }

    /// @name Fault injection
    /// @{

    /** Attach the fault oracle (null = fault-free, the default). */
    void setFaultInjector(const fault::FaultInjector *faults)
    {
        faults_ = faults;
    }

    /** Degradation counters accumulated by the VMC. */
    const fault::DegradeStats &degradeStats() const { return degrade_; }

    /// @}

    /** Mirror the upstream violation channels into @p log. */
    void attachControlLog(bus::ControlPlaneLog *log);

    /**
     * Record the upstream violation hops into @p tracer: each polled
     * report closes the loop of the budget epoch the source last
     * received, completing the GM→EM→SM→VMC cascade.
     */
    void attachCascade(bus::CascadeTracer *tracer);

    /**
     * Route the upstream violation channels through @p transport (null
     * detaches). A violation channel belongs to the *polled source's*
     * level — (Sm, i) for the local tier, (Em, i) for the enclosure
     * tier, (Gm, id) for the group tier — because the source's rates
     * are only observable in the process hosting that controller.
     * Wiring time only, before the engine runs.
     */
    void attachTransport(bus::Transport *transport,
                         const bus::OwnerFn &owner);

    /**
     * Register the VMC's metrics series and decision-trace channel.
     * Either argument may be null; wiring time only (not thread-safe).
     */
    void attachObs(obs::MetricsRegistry *metrics, obs::TraceSink *trace);

    /** Serialize mutable controller state (checkpointing). */
    void saveState(ckpt::SectionWriter &w) const;

    /** Restore mutable controller state (checkpoint restore). */
    void loadState(ckpt::SectionReader &r);

  private:
    /** Per-VM load estimate for the next epoch (updates forecasters). */
    std::vector<double> epochLoads();

    /** Update the buffers from the violation channels. */
    void updateBuffers(size_t tick);

    /** Build the candidate bins for the packer. */
    std::vector<PackBin> buildBins(size_t tick) const;

    /** Apply an adopted assignment: migrations and power state changes. */
    void applyAssignment(const std::vector<PackItem> &items,
                         const std::vector<sim::ServerId> &assignment,
                         size_t tick);

    /** Cold restart after an outage: forget epoch state and buffers. */
    void restartCold();

    sim::Cluster &cluster_;
    Feedback feedback_;
    /** Typed upstream channels wrapping the feeds, by tier. */
    std::vector<std::unique_ptr<bus::ViolationChannel>> loc_channels_;
    std::vector<std::unique_ptr<bus::ViolationChannel>> enc_channels_;
    std::vector<std::unique_ptr<bus::ViolationChannel>> grp_channels_;
    Params params_;
    std::string name_;
    Stats stats_;
    double b_loc_;
    double b_enc_;
    double b_grp_;
    std::vector<double> load_accum_;
    std::vector<double> load_sq_accum_;
    std::vector<DemandForecaster> forecasters_;
    unsigned long obs_ticks_ = 0;
    const fault::FaultInjector *faults_ = nullptr;
    fault::DegradeStats degrade_;
    bool was_down_ = false; //!< edge detector for restarts

    obs::Counter *obs_epochs_ = nullptr;
    obs::Counter *obs_adoptions_ = nullptr;
    obs::Counter *obs_migrations_ = nullptr;
    obs::Counter *obs_infeasible_ = nullptr;
    obs::Counter *obs_poweroffs_ = nullptr;
    obs::Gauge *obs_b_loc_ = nullptr;
    obs::Gauge *obs_b_enc_ = nullptr;
    obs::Gauge *obs_b_grp_ = nullptr;
    obs::Gauge *obs_est_power_ = nullptr;
    obs::TraceChannel *obs_trace_ = nullptr;
};

} // namespace controllers
} // namespace nps

#endif // NPS_CONTROLLERS_VM_CONTROLLER_H
