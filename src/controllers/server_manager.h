/**
 * @file
 * Server Manager (SM): per-server thermal power capping.
 *
 * Coordinated design (Section 3.1): nested on the EC, the SM actuates the
 * EC's utilization reference r_ref instead of touching P-states:
 *
 *     r_ref(k) = r_ref(k-1) - beta_loc * (cap_loc - pow(k-1))    (Eq. SM)
 *
 * A power reading above the budget raises r_ref, which makes the EC shrink
 * the container (deeper P-state), which lowers power. Stability holds for
 * 0 < beta < 2 / c_max (Appendix A). A lower bound of 75% on r_ref keeps
 * servers reasonably utilized when under budget.
 *
 * Uncoordinated (commercial-solo) design: steps the P-state directly on a
 * violation — the configuration whose interaction with an independently
 * deployed EC produces the paper's "power struggle".
 *
 * The SM's budget input is the coordination channel of the EM/GM: the
 * effective cap is min(static local budget, latest recommendation). The SM
 * also exposes its budget-violation history (the CIM/DMTF stand-in) for
 * the VMC's consolidation-aggressiveness feedback.
 */

#ifndef NPS_CONTROLLERS_SERVER_MANAGER_H
#define NPS_CONTROLLERS_SERVER_MANAGER_H

#include <optional>
#include <string>

#include "bus/control_link.h"
#include "bus/violation.h"
#include "control/integral.h"
#include "control/loop.h"
#include "controllers/efficiency.h"
#include "fault/injector.h"
#include "sim/engine.h"
#include "sim/server.h"

namespace nps {
namespace obs {
class Counter;
class Gauge;
class MetricsRegistry;
class TraceChannel;
class TraceSink;
} // namespace obs

namespace controllers {

/**
 * The violation-history interfaces live in the bus layer (they are the
 * payload of the upstream feedback channel); these aliases keep the
 * controllers' historical spelling.
 */
using ViolationSource = bus::ViolationSource;
using ViolationTracker = bus::ViolationTracker;

/**
 * Physical grant bounds of one server, used by the budget-division
 * levels: a powered-off machine is pinned at its residual off draw,
 * while a live one can usefully receive anything between its deepest
 * idle power and its peak.
 */
struct GrantBounds
{
    double floor = 0.0;  //!< smallest allocation the server can honor
    double max = 0.0;    //!< largest allocation it could ever consume
};

/** Compute the grant bounds of @p server as of @p tick. */
GrantBounds grantBounds(const sim::Server &server, size_t tick);

/**
 * The per-server power capper.
 */
class ServerManager : public sim::Actor,
                      public ctl::ControlLoop,
                      public ViolationTracker
{
  public:
    /** Operating mode. */
    enum class Mode
    {
        /** Actuate the EC's r_ref (the paper's coordinated design). */
        Coordinated,
        /**
         * Actuate P-states directly, as a solo commercial capper does;
         * deployed next to an independent EC this is the power struggle.
         */
        DirectPState,
    };

    /** Tunable parameters (defaults follow Figure 5). */
    struct Params
    {
        double beta = 1.0;        //!< gain, in r_ref per *normalized* watt
        double r_ref_min = 0.75;  //!< lower bound on the EC target
        double r_ref_max = 2.0;   //!< anti-windup upper bound
        unsigned period = 5;      //!< control interval T_sm
        Mode mode = Mode::Coordinated;
        /**
         * Gain multiplier applied when power is *under* the cap, so the
         * throttle releases more slowly than it engages. Damps the limit
         * cycle around the P-state quantization boundary.
         */
        double release_gain_ratio = 0.25;
        /**
         * In DirectPState mode: headroom fraction under the cap below
         * which the capper steps the P-state back up.
         */
        double unthrottle_margin = 0.12;
        /**
         * Budget-lease length in ticks: a dynamic grant received at tick t
         * is trusted through t + lease_ticks; past that the SM assumes its
         * parent is silent (down, or the link is dropping) and degrades to
         * the conservative local cap lease_fallback * CAP_LOC. 0 disables
         * leasing (grants never expire — the pre-fault behavior).
         */
        unsigned lease_ticks = 0;
        /** Fraction of CAP_LOC enforced while the lease is expired. */
        double lease_fallback = 1.0;
    };

    /**
     * @param server     The managed server.
     * @param ec         The nested EC (required in Coordinated mode; may
     *                   be null in DirectPState mode).
     * @param static_cap The server's own local power budget CAP_LOC.
     * @param params     Controller parameters.
     */
    ServerManager(sim::Server &server, EfficiencyController *ec,
                  double static_cap, const Params &params);

    /// @name sim::Actor
    /// @{
    const std::string &name() const override { return name_; }
    unsigned period() const override { return params_.period; }
    void observe(size_t tick) override;
    void step(size_t tick) override;
    /** Shardable: touches only its own server and its nested EC. */
    long shardKey() const override
    {
        return static_cast<long>(server_.id());
    }
    /// @}

    /// @name Budget channel (driven by the EM / GM)
    /// @{

    /**
     * Receive a budget recommendation from an upper-level capper.
     * Coordinated mode keeps min(static, recommendation); DirectPState
     * mode adopts the recommendation verbatim (solo products trust their
     * management console), which is exactly how uncoordinated stacks leak
     * above local limits.
     */
    void setBudget(double watts);

    /**
     * Timestamped variant: additionally refreshes the budget lease, so a
     * parent that keeps sending keeps the SM on the dynamic grant, and
     * adopts the grant's cascade trace id as this SM's context. The
     * coordination stack always sends through this overload; the plain one
     * exists for lease-agnostic callers (tests, scripted experiments).
     */
    void setBudget(double watts, size_t tick, uint32_t trace = 0);

    /** Cascade trace id of the last parent grant received (0 = none). */
    uint32_t cascadeStamp() const override { return trace_ctx_; }

    /** The budget currently being enforced (ignoring lease expiry). */
    double effectiveCap() const;

    /**
     * The budget enforced at @p tick: effectiveCap(), unless the lease
     * has lapsed, in which case the conservative local fallback
     * min(CAP_LOC, lease_fallback * CAP_LOC).
     */
    double currentCap(size_t tick) const;

    /** The server's own static budget CAP_LOC. */
    double staticCap() const { return static_cap_; }

    /// @}

    /// @name Fault injection
    /// @{

    /** Attach the fault oracle (null = fault-free, the default). */
    void setFaultInjector(const fault::FaultInjector *faults)
    {
        faults_ = faults;
    }

    /** Degradation counters accumulated by this SM. */
    const fault::DegradeStats &degradeStats() const { return degrade_; }

    /// @}

    /**
     * Mirror this SM's outgoing control traffic (the r_ref reference
     * channel into the nested EC) into @p log; null detaches.
     */
    void attachControlLog(bus::ControlPlaneLog *log);

    /**
     * Route the r_ref reference link through @p transport (null
     * detaches); it is owned by (Sm, server id). Wiring time only,
     * before the engine runs.
     */
    void attachTransport(bus::Transport *transport,
                         const bus::OwnerFn &owner);

    /**
     * Register this SM's metrics series and decision-trace channel.
     * Either argument may be null; wiring time only (not thread-safe).
     */
    void attachObs(obs::MetricsRegistry *metrics, obs::TraceSink *trace);

    /** Active parameters. */
    const Params &params() const { return params_; }

    /** The managed server. */
    const sim::Server &server() const { return server_; }

    /** Serialize mutable controller state (checkpointing). */
    void saveState(ckpt::SectionWriter &w) const;

    /** Restore mutable controller state (checkpoint restore). */
    void loadState(ckpt::SectionReader &r);

  protected:
    /// @name ctl::ControlLoop hooks (Coordinated mode)
    /// @{
    double measure() override;
    double control(double error, double measurement) override;
    void actuate(double value) override;
    /// @}

  private:
    /** One step of the solo (direct P-state) capper, enforcing @p cap. */
    void stepDirect(size_t tick, double cap);

    /** @return true when the budget lease has lapsed as of @p tick. */
    bool leaseLapsed(size_t tick) const;

    /** Cold restart after an outage: forget integrator and grant state. */
    void restartCold(size_t tick);

    sim::Server &server_;
    EfficiencyController *ec_;
    double static_cap_;
    double dynamic_cap_;
    Params params_;
    std::string name_;
    ctl::IntegralController r_ref_;
    std::optional<bus::ReferenceLink> ref_link_; //!< SM -> EC r_ref channel
    size_t step_tick_ = 0; //!< tick of the step in flight (for actuate)
    const fault::FaultInjector *faults_ = nullptr;
    fault::DegradeStats degrade_;
    size_t budget_tick_ = 0;    //!< receipt tick of the live grant
    uint32_t trace_ctx_ = 0;    //!< cascade trace id of that grant
    bool lease_expired_ = false; //!< edge detector for lease_expiries
    bool was_down_ = false;      //!< edge detector for restarts
    bool ec_fallback_ = false;   //!< edge detector for EC-down tracing

    obs::Counter *obs_grant_clamps_ = nullptr;
    obs::Counter *obs_lease_expiries_ = nullptr;
    obs::Counter *obs_ec_fallback_steps_ = nullptr;
    obs::Counter *obs_restarts_ = nullptr;
    obs::Gauge *obs_cap_ = nullptr;
    obs::TraceChannel *obs_trace_ = nullptr;
};

} // namespace controllers
} // namespace nps

#endif // NPS_CONTROLLERS_SERVER_MANAGER_H
