/**
 * @file
 * Budget-division policies for the enclosure and group managers.
 *
 * "The actual division of the total enclosure power budget to individual
 * blades is policy-driven and different policies (e.g., fair-share, FIFO,
 * random, priority-based, history-based) can be implemented."
 * (Section 3.1.) Section 5.4 finds the architecture robust to the choice;
 * the tbl_policies bench reproduces that finding.
 *
 * All policies guarantee: each grant is within [0, max_i]; grants sum to
 * at most the budget; when the budget covers every child's floor, each
 * grant is at least its floor (a floor is the smallest allocation a child
 * can physically honor, e.g. its idle power).
 */

#ifndef NPS_CONTROLLERS_POLICIES_H
#define NPS_CONTROLLERS_POLICIES_H

#include <vector>

#include "util/random.h"

namespace nps {
namespace controllers {

/** Available division policies. */
enum class DivisionPolicy
{
    Proportional,  //!< proportional to last observed power (paper base)
    Equal,         //!< fair equal shares
    Priority,      //!< greedy by external priority
    Fifo,          //!< greedy by child index
    Random,        //!< greedy in random order
    History,       //!< proportional to long-horizon smoothed power
};

/** @return a short name for a policy ("prop", "equal", ...). */
const char *policyName(DivisionPolicy policy);

/** Inputs of one division round. */
struct DivisionInput
{
    double budget = 0.0;            //!< total watts to divide
    std::vector<double> demands;    //!< recent power per child
    std::vector<double> maxima;     //!< per-child physical maximum
    std::vector<double> floors;     //!< per-child minimum useful grant
    std::vector<int> priorities;    //!< used by Priority (higher first)
};

/**
 * Divide a power budget among children.
 *
 * @param policy The division policy.
 * @param in     Division inputs; demands/maxima/floors must share one
 *               size; priorities may be empty except for Priority.
 * @param rng    Randomness source (required by Random, ignored otherwise).
 * @return one grant per child.
 */
std::vector<double> divideBudget(DivisionPolicy policy,
                                 const DivisionInput &in,
                                 util::Rng *rng = nullptr);

} // namespace controllers
} // namespace nps

#endif // NPS_CONTROLLERS_POLICIES_H
