#include "controllers/policies.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"
#include "util/stats.h"

namespace nps {
namespace controllers {

const char *
policyName(DivisionPolicy policy)
{
    switch (policy) {
      case DivisionPolicy::Proportional: return "prop";
      case DivisionPolicy::Equal:        return "equal";
      case DivisionPolicy::Priority:     return "prio";
      case DivisionPolicy::Fifo:         return "fifo";
      case DivisionPolicy::Random:       return "random";
      case DivisionPolicy::History:      return "history";
    }
    return "?";
}

namespace {

void
validate(const DivisionInput &in)
{
    size_t n = in.demands.size();
    if (n == 0)
        util::fatal("divideBudget: no children");
    if (in.maxima.size() != n || in.floors.size() != n)
        util::fatal("divideBudget: inconsistent input sizes");
    if (in.budget < 0.0)
        util::fatal("divideBudget: negative budget");
    for (size_t i = 0; i < n; ++i) {
        if (in.maxima[i] < 0.0 || in.floors[i] < 0.0 ||
            in.floors[i] > in.maxima[i]) {
            util::fatal("divideBudget: bad floor/max for child %zu", i);
        }
        if (in.demands[i] < 0.0)
            util::fatal("divideBudget: negative demand for child %zu", i);
    }
}

/**
 * Share-based division: grants proportional to weights, honoring floors
 * and maxima, then water-fill any leftover into unclamped children.
 */
std::vector<double>
shareDivide(const DivisionInput &in, const std::vector<double> &weights)
{
    size_t n = in.demands.size();
    std::vector<double> grant(n, 0.0);

    double total_floor = std::accumulate(in.floors.begin(),
                                         in.floors.end(), 0.0);
    if (total_floor >= in.budget && total_floor > 0.0) {
        // Infeasible floors: scale them down to fit.
        double scale = in.budget / total_floor;
        for (size_t i = 0; i < n; ++i)
            grant[i] = in.floors[i] * scale;
        return grant;
    }

    // Start everyone at their floor; divide the rest by weight.
    grant = in.floors;
    double remaining = in.budget - total_floor;
    std::vector<bool> capped(n, false);

    // Each pass either distributes everything or caps at least one more
    // child, so n+1 passes always suffice.
    const int max_passes = static_cast<int>(n) + 1;
    for (int pass = 0; pass < max_passes && remaining > 1e-9; ++pass) {
        double weight_sum = 0.0;
        for (size_t i = 0; i < n; ++i) {
            if (!capped[i])
                weight_sum += weights[i];
        }
        if (weight_sum <= 0.0) {
            // Degenerate weights: spread equally over uncapped children.
            size_t open = 0;
            for (size_t i = 0; i < n; ++i)
                open += capped[i] ? 0 : 1;
            if (open == 0)
                break;
            double each = remaining / static_cast<double>(open);
            double given = 0.0;
            for (size_t i = 0; i < n; ++i) {
                if (capped[i])
                    continue;
                double add = std::min(each, in.maxima[i] - grant[i]);
                grant[i] += add;
                given += add;
                if (grant[i] >= in.maxima[i] - 1e-12)
                    capped[i] = true;
            }
            remaining -= given;
            continue;
        }
        double given = 0.0;
        for (size_t i = 0; i < n; ++i) {
            if (capped[i])
                continue;
            double want = remaining * weights[i] / weight_sum;
            double add = std::min(want, in.maxima[i] - grant[i]);
            grant[i] += add;
            given += add;
            if (grant[i] >= in.maxima[i] - 1e-12)
                capped[i] = true;
        }
        remaining -= given;
        if (given <= 1e-12)
            break;
    }
    return grant;
}

/**
 * Greedy division in the given visiting order: each child gets as much as
 * possible, subject to reserving the floors of the children still to come.
 */
std::vector<double>
greedyDivide(const DivisionInput &in, const std::vector<size_t> &order)
{
    size_t n = in.demands.size();
    std::vector<double> grant(n, 0.0);

    double total_floor = std::accumulate(in.floors.begin(),
                                         in.floors.end(), 0.0);
    if (total_floor >= in.budget && total_floor > 0.0) {
        double scale = in.budget / total_floor;
        for (size_t i = 0; i < n; ++i)
            grant[i] = in.floors[i] * scale;
        return grant;
    }

    double remaining = in.budget;
    double floors_ahead = total_floor;
    for (size_t rank = 0; rank < n; ++rank) {
        size_t i = order[rank];
        floors_ahead -= in.floors[i];
        double avail = remaining - floors_ahead;
        grant[i] = util::clamp(avail, in.floors[i], in.maxima[i]);
        remaining -= grant[i];
    }
    return grant;
}

} // namespace

std::vector<double>
divideBudget(DivisionPolicy policy, const DivisionInput &in, util::Rng *rng)
{
    validate(in);
    size_t n = in.demands.size();

    switch (policy) {
      case DivisionPolicy::Proportional:
      case DivisionPolicy::History:
        // History differs only in the horizon of the demand estimate the
        // caller feeds in; the division math is identical.
        return shareDivide(in, in.demands);
      case DivisionPolicy::Equal: {
        std::vector<double> ones(n, 1.0);
        return shareDivide(in, ones);
      }
      case DivisionPolicy::Priority: {
        if (in.priorities.size() != n)
            util::fatal("divideBudget: Priority needs priorities");
        std::vector<size_t> order(n);
        std::iota(order.begin(), order.end(), 0);
        std::stable_sort(order.begin(), order.end(),
                         [&](size_t a, size_t b) {
                             return in.priorities[a] > in.priorities[b];
                         });
        return greedyDivide(in, order);
      }
      case DivisionPolicy::Fifo: {
        std::vector<size_t> order(n);
        std::iota(order.begin(), order.end(), 0);
        return greedyDivide(in, order);
      }
      case DivisionPolicy::Random: {
        if (!rng)
            util::fatal("divideBudget: Random needs an Rng");
        std::vector<size_t> order(n);
        std::iota(order.begin(), order.end(), 0);
        rng->shuffle(order.begin(), order.end());
        return greedyDivide(in, order);
      }
    }
    util::panic("divideBudget: unreachable");
}

} // namespace controllers
} // namespace nps
