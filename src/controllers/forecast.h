/**
 * @file
 * Demand forecasting for predictive placement.
 *
 * Figure 1 describes the EC as matching "estimated future demand", and
 * the paper's future-work section points at richer prediction. This
 * module provides the standard light-weight forecasters used in
 * capacity management — last-value, exponential smoothing, and Holt's
 * linear (level + trend) method — so the VMC can pack against the
 * *next* epoch's expected demand instead of the last epoch's average,
 * anticipating ramps instead of chasing them.
 */

#ifndef NPS_CONTROLLERS_FORECAST_H
#define NPS_CONTROLLERS_FORECAST_H

#include <cstddef>

namespace nps {
namespace controllers {

/** Available forecasting methods. */
enum class ForecastMethod
{
    LastValue,   //!< naive: tomorrow looks like today
    Ewma,        //!< exponential smoothing (level only)
    HoltLinear,  //!< double exponential smoothing (level + trend)
};

/** @return a short name for a method ("last", "ewma", "holt"). */
const char *forecastMethodName(ForecastMethod method);

/**
 * One scalar demand series forecaster.
 */
class DemandForecaster
{
  public:
    /** Tunable parameters. */
    struct Params
    {
        ForecastMethod method = ForecastMethod::HoltLinear;
        double alpha = 0.4;  //!< level smoothing factor, in (0,1]
        double beta = 0.2;   //!< trend smoothing factor, in [0,1]
    };

    /** Construct with validated parameters (fatal() on bad factors). */
    explicit DemandForecaster(const Params &params);

    /** Feed one observation (the newest value of the series). */
    void observe(double value);

    /**
     * Predict the series @p horizon steps past the last observation
     * (horizon >= 1). Before any observation, returns 0. Forecasts are
     * clamped at 0 from below (demand cannot be negative).
     */
    double forecast(size_t horizon = 1) const;

    /** Number of observations so far. */
    size_t observations() const { return count_; }

    /** Current smoothed level. */
    double level() const { return level_; }

    /** Current smoothed trend (0 unless HoltLinear). */
    double trend() const { return trend_; }

    /** Forget all history. */
    void reset();

    /** Overwrite the smoothing state verbatim (checkpoint restore only). */
    void
    restoreState(double level, double trend, size_t count)
    {
        level_ = level;
        trend_ = trend;
        count_ = count;
    }

  private:
    Params params_;
    double level_ = 0.0;
    double trend_ = 0.0;
    size_t count_ = 0;
};

} // namespace controllers
} // namespace nps

#endif // NPS_CONTROLLERS_FORECAST_H
