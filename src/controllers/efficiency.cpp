#include "controllers/efficiency.h"

#include "control/stability.h"
#include "util/logging.h"

namespace nps {
namespace controllers {

EfficiencyController::EfficiencyController(sim::Server &server,
                                           const Params &params)
    : ctl::ControlLoop("EC/" + std::to_string(server.id())),
      server_(server),
      params_(params),
      name_("EC/" + std::to_string(server.id())),
      freq_(server.spec().pstates().fastest().freq_mhz,
            server.spec().pstates().slowest().freq_mhz,
            server.spec().pstates().fastest().freq_mhz)
{
    if (params_.r_ref <= 0.0 || params_.r_ref >= 1.0)
        util::fatal("EC: r_ref %f out of (0,1)", params_.r_ref);
    if (!ctl::ecGainStable(params_.lambda, params_.r_ref)) {
        util::warn("EC/%u: lambda %f violates the global stability bound "
                   "1/r_ref = %f", server.id(), params_.lambda,
                   ctl::ecLambdaBound(params_.r_ref));
    }
    setReference(params_.r_ref);
}

void
EfficiencyController::step(size_t tick)
{
    (void)tick;
    if (!server_.isOn(tick)) {
        // Nothing to manage; reset to full speed so a rebooted machine
        // comes back at P0, as firmware does.
        freq_.setValue(freq_.hi());
        return;
    }
    if (params_.objective == EcObjective::EnergyDelay) {
        stepEnergyDelay();
        return;
    }
    ControlLoop::step();
}

double
EfficiencyController::measure()
{
    return server_.lastApparentUtil();
}

double
EfficiencyController::control(double error, double measurement)
{
    // Consumed frequency f_C = r * f at the quantized operating point.
    double f_c = measurement * server_.frequencyMhz();
    double gain = params_.lambda * f_c / reference();
    // f(k) = f(k-1) - gain * (r_ref - r): integral law on the frequency.
    return freq_.update(-gain, error);
}

void
EfficiencyController::actuate(double value)
{
    const auto &table = server_.spec().pstates();
    size_t p = params_.quantize_up ? table.quantizeUp(value)
                                   : table.quantizeNearest(value);
    server_.setPState(p);
}

void
EfficiencyController::stepEnergyDelay()
{
    // Estimate current real demand from the last measurement and pick the
    // state minimizing power * delay ~ power / relSpeed, while keeping
    // apparent utilization under the reference.
    double demand = server_.lastRealUtil();
    const auto &m = server_.model();
    const auto &table = m.pstates();
    size_t best = 0;
    double best_score = 0.0;
    bool have = false;
    for (size_t p = 0; p < table.size(); ++p) {
        if (m.apparentUtil(p, demand) > reference() && p != 0)
            continue;
        double score = m.powerForDemand(p, demand) / table.relSpeed(p);
        if (!have || score < best_score) {
            best = p;
            best_score = score;
            have = true;
        }
    }
    server_.setPState(best);
    freq_.setValue(table.at(best).freq_mhz);
}

} // namespace controllers
} // namespace nps
