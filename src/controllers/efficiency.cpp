#include "controllers/efficiency.h"

#include <algorithm>

#include "control/stability.h"
#include "obs/decision_trace.h"
#include "obs/metrics.h"
#include "util/logging.h"

namespace nps {
namespace controllers {

EfficiencyController::EfficiencyController(sim::Server &server,
                                           const Params &params)
    : ctl::ControlLoop("EC/" + std::to_string(server.id())),
      server_(server),
      params_(params),
      name_("EC/" + std::to_string(server.id())),
      freq_(server.spec().pstates().fastest().freq_mhz,
            server.spec().pstates().slowest().freq_mhz,
            server.spec().pstates().fastest().freq_mhz)
{
    if (params_.r_ref <= 0.0 || params_.r_ref >= 1.0)
        util::fatal("EC: r_ref %f out of (0,1)", params_.r_ref);
    if (!ctl::ecGainStable(params_.lambda, params_.r_ref)) {
        util::warn("EC/%u: lambda %f violates the global stability bound "
                   "1/r_ref = %f", server.id(), params_.lambda,
                   ctl::ecLambdaBound(params_.r_ref));
    }
    setReference(params_.r_ref);
}

void
EfficiencyController::attachObs(obs::MetricsRegistry *metrics,
                                obs::TraceSink *trace)
{
    if (metrics) {
        obs_pstate_changes_ = metrics->counter(
            "nps_ec_pstate_changes_total", name_,
            "P-state transitions actuated by the EC");
        obs_restarts_ = metrics->counter(
            "nps_ec_restarts_total", name_,
            "Cold restarts after an EC outage");
        obs_stuck_ = metrics->counter(
            "nps_ec_stuck_actuations_total", name_,
            "P-state writes swallowed by a stuck actuator fault");
    }
    if (trace)
        obs_trace_ = trace->channel(name_);
}

void
EfficiencyController::step(size_t tick)
{
    if (faults_ && faults_->down(fault::Level::EC,
                                 static_cast<long>(server_.id()), tick)) {
        if (!was_down_ && obs_trace_)
            obs_trace_->emit(tick, "outage begins: EC down, P-state held");
        ++degrade_.outage_ticks;
        ++degrade_.outage_steps;
        was_down_ = true;
        return;
    }
    if (was_down_) {
        was_down_ = false;
        ++degrade_.restarts;
        if (obs_restarts_)
            obs_restarts_->add();
        if (obs_trace_)
            obs_trace_->emit(tick, "cold restart after outage: back to "
                                   "P0, integrator and r_ref reset");
        restartCold();
    }
    cur_tick_ = tick;
    if (!server_.isOn(tick)) {
        // Nothing to manage; reset to full speed so a rebooted machine
        // comes back at P0, as firmware does.
        freq_.setValue(freq_.hi());
        return;
    }
    if (params_.objective == EcObjective::EnergyDelay) {
        stepEnergyDelay(tick);
        return;
    }
    ControlLoop::step();
}

void
EfficiencyController::restartCold()
{
    // A restarted EC forgets its integrator and any r_ref its SM sent
    // while it was down; the SM re-actuates on its next step.
    freq_.setValue(freq_.hi());
    ControlLoop::reset();
    setReference(params_.r_ref);
}

double
EfficiencyController::sensedUtil(size_t tick, double raw)
{
    if (!faults_)
        return raw;
    long id = static_cast<long>(server_.id());
    if (faults_->utilFrozen(id, tick)) {
        ++degrade_.noisy_reads;
        return held_util_;
    }
    double noise = faults_->utilNoise(id, tick);
    if (noise != 0.0) {
        ++degrade_.noisy_reads;
        raw = std::min(1.0, std::max(0.0, raw + noise));
    }
    held_util_ = raw;
    return raw;
}

double
EfficiencyController::measure()
{
    return sensedUtil(cur_tick_, server_.lastApparentUtil());
}

double
EfficiencyController::control(double error, double measurement)
{
    // Consumed frequency f_C = r * f at the quantized operating point.
    double f_c = measurement * server_.frequencyMhz();
    double gain = params_.lambda * f_c / reference();
    // f(k) = f(k-1) - gain * (r_ref - r): integral law on the frequency.
    return freq_.update(-gain, error);
}

void
EfficiencyController::actuate(double value)
{
    const auto &table = server_.spec().pstates();
    size_t p = params_.quantize_up ? table.quantizeUp(value)
                                   : table.quantizeNearest(value);
    if (p != server_.pstate() && faults_ &&
        faults_->pstateStuck(static_cast<long>(server_.id()), cur_tick_)) {
        // The firmware actuator swallowed the write; the integrator keeps
        // running against the stuck plant (realistic windup).
        ++degrade_.stuck_actuations;
        if (obs_stuck_)
            obs_stuck_->add();
        if (obs_trace_)
            obs_trace_->emit(cur_tick_,
                             "actuator stuck: P%zu held (wanted P%zu)",
                             server_.pstate(), p);
        return;
    }
    if (p != server_.pstate()) {
        if (obs_pstate_changes_)
            obs_pstate_changes_->add();
        if (obs_trace_)
            obs_trace_->emit(cur_tick_,
                             "P%zu -> P%zu: f_cont=%.6g MHz r_ref=%.6g",
                             server_.pstate(), p, value, reference());
    }
    server_.setPState(p);
}

void
EfficiencyController::stepEnergyDelay(size_t tick)
{
    // Estimate current real demand from the last measurement and pick the
    // state minimizing power * delay ~ power / relSpeed, while keeping
    // apparent utilization under the reference.
    double demand = sensedUtil(tick, server_.lastRealUtil());
    const auto &m = server_.model();
    const auto &table = m.pstates();
    size_t best = 0;
    double best_score = 0.0;
    bool have = false;
    for (size_t p = 0; p < table.size(); ++p) {
        if (m.apparentUtil(p, demand) > reference() && p != 0)
            continue;
        double score = m.powerForDemand(p, demand) / table.relSpeed(p);
        if (!have || score < best_score) {
            best = p;
            best_score = score;
            have = true;
        }
    }
    if (best != server_.pstate() && faults_ &&
        faults_->pstateStuck(static_cast<long>(server_.id()), tick)) {
        ++degrade_.stuck_actuations;
        if (obs_stuck_)
            obs_stuck_->add();
        return;
    }
    if (best != server_.pstate()) {
        if (obs_pstate_changes_)
            obs_pstate_changes_->add();
        if (obs_trace_)
            obs_trace_->emit(tick,
                             "P%zu -> P%zu: energy-delay best for "
                             "demand=%.6g",
                             server_.pstate(), best, demand);
    }
    server_.setPState(best);
    freq_.setValue(table.at(best).freq_mhz);
}

void
EfficiencyController::saveState(ckpt::SectionWriter &w) const
{
    w.putDouble(reference());
    w.putDouble(lastMeasurement());
    w.putDouble(lastError());
    w.putU64(steps());
    w.putDouble(freq_.value());
    degrade_.saveState(w);
    w.putU64(cur_tick_);
    w.putDouble(held_util_);
    w.putBool(was_down_);
}

void
EfficiencyController::loadState(ckpt::SectionReader &r)
{
    double ref = r.getDouble();
    double meas = r.getDouble();
    double err = r.getDouble();
    auto steps = static_cast<unsigned long>(r.getU64());
    restoreLoopState(ref, meas, err, steps);
    freq_.setValue(r.getDouble());
    degrade_.loadState(r);
    cur_tick_ = static_cast<size_t>(r.getU64());
    held_util_ = r.getDouble();
    was_down_ = r.getBool();
}

} // namespace controllers
} // namespace nps
