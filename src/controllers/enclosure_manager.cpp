#include "controllers/enclosure_manager.h"

#include <algorithm>

#include "obs/decision_trace.h"
#include "obs/metrics.h"
#include "util/logging.h"

namespace nps {
namespace controllers {

EnclosureManager::EnclosureManager(sim::Cluster &cluster,
                                   sim::EnclosureId enclosure,
                                   std::vector<ServerManager *> blades,
                                   double static_cap, const Params &params)
    : cluster_(cluster),
      enclosure_(enclosure),
      blades_(std::move(blades)),
      static_cap_(static_cap),
      dynamic_cap_(static_cap),
      params_(params),
      name_("EM/" + std::to_string(enclosure)),
      rng_(params.seed, name_),
      demand_ewma_(blades_.size(), 0.0),
      history_ewma_(blades_.size(), 0.0)
{
    if (blades_.empty())
        util::fatal("EM/%u: no blades", enclosure_);
    if (static_cap_ <= 0.0)
        util::fatal("EM/%u: non-positive static cap", enclosure_);
    for (auto *sm : blades_) {
        if (!sm)
            util::fatal("EM/%u: null blade SM", enclosure_);
    }
    if (params_.policy == DivisionPolicy::Priority &&
        params_.priorities.size() != blades_.size()) {
        util::fatal("EM/%u: Priority policy needs one priority per blade",
                    enclosure_);
    }
    blade_ids_.reserve(blades_.size());
    for (const auto *sm : blades_)
        blade_ids_.push_back(sm->server().id());
    for (auto *sm : blades_) {
        long sid = static_cast<long>(sm->server().id());
        grant_links_.push_back(std::make_unique<bus::BudgetLink>(
            fault::Link::EmToSm, sid,
            name_ + "->SM/" + std::to_string(sid),
            [sm](const bus::BudgetGrant &g) {
                sm->setBudget(g.watts, g.tick, g.trace);
            }));
    }
}

void
EnclosureManager::setFaultInjector(const fault::FaultInjector *faults)
{
    faults_ = faults;
    for (auto &link : grant_links_)
        link->setFaultInjector(faults, &degrade_);
}

void
EnclosureManager::setStreamHealth(const fault::StreamHealth *health)
{
    for (auto &link : grant_links_)
        link->setStreamHealth(health, &degrade_);
}

void
EnclosureManager::attachControlLog(bus::ControlPlaneLog *log)
{
    for (auto &link : grant_links_)
        link->attachLog(log);
}

void
EnclosureManager::attachCascade(bus::CascadeTracer *tracer)
{
    for (auto &link : grant_links_)
        link->attachCascade(tracer);
}

void
EnclosureManager::attachTransport(bus::Transport *transport,
                                  const bus::OwnerFn &owner)
{
    const int rank =
        owner ? owner(bus::OwnerLevel::Em, static_cast<long>(enclosure_))
              : 0;
    for (auto &link : grant_links_) {
        link->setTransport(transport, rank);
        if (transport)
            link->attachDegradeStats(&degrade_);
    }
}

void
EnclosureManager::attachObs(obs::MetricsRegistry *metrics,
                            obs::TraceSink *trace)
{
    if (metrics) {
        obs_divisions_ = metrics->counter(
            "nps_em_divisions_total", name_,
            "Budget divisions performed by the EM");
        obs_lease_expiries_ = metrics->counter(
            "nps_em_lease_expiries_total", name_,
            "GM-budget leases that lapsed into the local fallback cap");
        obs_restarts_ = metrics->counter(
            "nps_em_restarts_total", name_,
            "Cold restarts after an EM outage");
        obs_cap_ = metrics->gauge(
            "nps_em_cap_watts", name_,
            "Budget divided by the EM at its most recent step");
        obs_grants_ = metrics->histogram(
            "nps_em_grant_watts", name_,
            "Per-blade grants sent by the EM",
            {25.0, 50.0, 75.0, 100.0, 150.0, 200.0, 300.0, 500.0});
    }
    if (trace)
        obs_trace_ = trace->channel(name_);
}

void
EnclosureManager::setBudget(double watts)
{
    if (watts <= 0.0)
        util::fatal("EM/%u: non-positive budget recommendation",
                    enclosure_);
    dynamic_cap_ = watts;
}

void
EnclosureManager::setBudget(double watts, size_t tick, uint32_t trace)
{
    setBudget(watts);
    budget_tick_ = tick;
    trace_ctx_ = trace;
}

double
EnclosureManager::effectiveCap() const
{
    return std::min(static_cap_, dynamic_cap_);
}

bool
EnclosureManager::leaseLapsed(size_t tick) const
{
    return params_.lease_ticks > 0 &&
           tick > budget_tick_ + params_.lease_ticks;
}

double
EnclosureManager::currentCap(size_t tick) const
{
    if (leaseLapsed(tick))
        return std::min(static_cap_, params_.lease_fallback * static_cap_);
    return effectiveCap();
}

void
EnclosureManager::restartCold(size_t tick)
{
    // A restarted EM has lost its demand estimates and any GM grant that
    // arrived while it was down; it re-enters on CAP_ENC with a fresh
    // lease and rebuilds its EWMAs from zero, as at construction.
    std::fill(demand_ewma_.begin(), demand_ewma_.end(), 0.0);
    std::fill(history_ewma_.begin(), history_ewma_.end(), 0.0);
    last_grants_.clear();
    for (auto &link : grant_links_)
        link->reset();
    dynamic_cap_ = static_cap_;
    budget_tick_ = tick;
    trace_ctx_ = 0;
    lease_expired_ = false;
}

void
EnclosureManager::observe(size_t tick)
{
    if (faults_) {
        if (faults_->down(fault::Level::EM,
                          static_cast<long>(enclosure_), tick)) {
            ++degrade_.outage_ticks;
            was_down_ = true;
            return;
        }
        if (was_down_) {
            was_down_ = false;
            ++degrade_.restarts;
            if (obs_restarts_)
                obs_restarts_->add();
            if (obs_trace_)
                obs_trace_->emit(tick,
                                 "cold restart after outage: CAP_ENC "
                                 "%.6gW, estimates rebuilt from zero",
                                 static_cap_);
            restartCold(tick);
        }
    }
    // Violations are reported against the static CAP_ENC — the physical
    // limit of the enclosure's power delivery and cooling.
    record(cluster_.lastEnclosurePower(enclosure_) >
           static_cap_ + 1e-9);

    double a_short = 1.0 / params_.demand_horizon;
    double a_long = 1.0 / params_.history_horizon;
    const std::vector<double> &power = cluster_.serverState().power;
    for (size_t i = 0; i < blade_ids_.size(); ++i) {
        double p = power[blade_ids_[i]];
        demand_ewma_[i] += a_short * (p - demand_ewma_[i]);
        history_ewma_[i] += a_long * (p - history_ewma_[i]);
    }
}

void
EnclosureManager::step(size_t tick)
{
    if (faults_ && faults_->down(fault::Level::EM,
                                 static_cast<long>(enclosure_), tick)) {
        // A down EM neither re-divides nor refreshes its blades' leases;
        // the SMs ride their last grants until those expire.
        ++degrade_.outage_steps;
        return;
    }
    bool lapsed = leaseLapsed(tick);
    if (lapsed) {
        if (!lease_expired_) {
            lease_expired_ = true;
            ++degrade_.lease_expiries;
            if (obs_lease_expiries_)
                obs_lease_expiries_->add();
            if (obs_trace_)
                obs_trace_->emit(tick,
                                 "GM lease expired (grant from tick "
                                 "%zu, lease %u) -> fallback cap %.6gW",
                                 budget_tick_, params_.lease_ticks,
                                 currentCap(tick));
        }
        ++degrade_.lease_fallback_steps;
    } else {
        if (lease_expired_ && obs_trace_)
            obs_trace_->emit(tick,
                             "GM lease recovered: dividing %.6gW again",
                             effectiveCap());
        lease_expired_ = false;
    }

    DivisionInput in;
    in.budget = currentCap(tick);
    in.demands = params_.policy == DivisionPolicy::History ? history_ewma_
                                                           : demand_ewma_;
    in.priorities = params_.priorities;
    for (auto *sm : blades_) {
        // Platform-state-aware bounds: a live blade cannot draw less
        // than its deepest idle power (granting less guarantees a
        // violation), and a powered-off blade is pinned at its residual
        // draw so no policy wastes budget on dark machines.
        GrantBounds gb = grantBounds(sm->server(), tick);
        in.maxima.push_back(gb.max);
        in.floors.push_back(gb.floor);
    }
    last_grants_ = divideBudget(params_.policy, in, &rng_);
    if (obs_divisions_)
        obs_divisions_->add();
    if (obs_cap_)
        obs_cap_->set(in.budget);
    if (obs_grants_) {
        for (double g : last_grants_)
            obs_grants_->observe(g);
    }
    if (obs_trace_) {
        double lo = last_grants_.empty() ? 0.0 : last_grants_[0];
        double hi = lo;
        for (double g : last_grants_) {
            lo = std::min(lo, g);
            hi = std::max(hi, g);
        }
        obs_trace_->emit(tick,
                         "divided %.6gW across %zu blades (%s): "
                         "grants %.6g..%.6gW%s",
                         in.budget, blades_.size(),
                         policyName(params_.policy), lo, hi,
                         lapsed ? " [lease fallback]" : "");
    }
    // Each grant goes out on the blade's typed budget channel; drop and
    // stale faults (and the delivery floor) are the link's business now.
    // Grants propagate the cascade epoch of the GM grant they subdivide.
    for (size_t i = 0; i < blades_.size(); ++i) {
        grant_links_[i]->setTraceStamp(trace_ctx_);
        grant_links_[i]->send(last_grants_[i], tick);
    }
}

void
EnclosureManager::saveState(ckpt::SectionWriter &w) const
{
    ViolationTracker::saveState(w);
    w.putDouble(dynamic_cap_);
    uint64_t rng_state[4];
    rng_.getState(rng_state);
    for (uint64_t s : rng_state)
        w.putU64(s);
    w.putDoubleVec(demand_ewma_);
    w.putDoubleVec(history_ewma_);
    w.putDoubleVec(last_grants_);
    w.putU64(grant_links_.size());
    for (const auto &link : grant_links_)
        link->saveState(w);
    degrade_.saveState(w);
    w.putU64(budget_tick_);
    w.putU32(trace_ctx_);
    w.putBool(lease_expired_);
    w.putBool(was_down_);
}

void
EnclosureManager::loadState(ckpt::SectionReader &r)
{
    ViolationTracker::loadState(r);
    dynamic_cap_ = r.getDouble();
    uint64_t rng_state[4];
    for (uint64_t &s : rng_state)
        s = r.getU64();
    rng_.setState(rng_state);
    demand_ewma_ = r.getDoubleVec();
    history_ewma_ = r.getDoubleVec();
    last_grants_ = r.getDoubleVec();
    auto links = static_cast<size_t>(r.getU64());
    if (links != grant_links_.size())
        util::fatal("EM %s restore: snapshot has %zu grant links, "
                    "rebuilt EM has %zu — topology mismatch",
                    name_.c_str(), links, grant_links_.size());
    for (auto &link : grant_links_)
        link->loadState(r);
    degrade_.loadState(r);
    budget_tick_ = static_cast<size_t>(r.getU64());
    trace_ctx_ = r.getU32();
    lease_expired_ = r.getBool();
    was_down_ = r.getBool();
    if (demand_ewma_.size() != blades_.size() ||
        history_ewma_.size() != blades_.size())
        util::fatal("EM %s restore: blade-count mismatch", name_.c_str());
}

} // namespace controllers
} // namespace nps
