#include "controllers/enclosure_manager.h"

#include <algorithm>

#include "util/logging.h"

namespace nps {
namespace controllers {

EnclosureManager::EnclosureManager(sim::Cluster &cluster,
                                   sim::EnclosureId enclosure,
                                   std::vector<ServerManager *> blades,
                                   double static_cap, const Params &params)
    : cluster_(cluster),
      enclosure_(enclosure),
      blades_(std::move(blades)),
      static_cap_(static_cap),
      dynamic_cap_(static_cap),
      params_(params),
      name_("EM/" + std::to_string(enclosure)),
      rng_(params.seed, name_),
      demand_ewma_(blades_.size(), 0.0),
      history_ewma_(blades_.size(), 0.0)
{
    if (blades_.empty())
        util::fatal("EM/%u: no blades", enclosure_);
    if (static_cap_ <= 0.0)
        util::fatal("EM/%u: non-positive static cap", enclosure_);
    for (auto *sm : blades_) {
        if (!sm)
            util::fatal("EM/%u: null blade SM", enclosure_);
    }
    if (params_.policy == DivisionPolicy::Priority &&
        params_.priorities.size() != blades_.size()) {
        util::fatal("EM/%u: Priority policy needs one priority per blade",
                    enclosure_);
    }
}

void
EnclosureManager::setBudget(double watts)
{
    if (watts <= 0.0)
        util::fatal("EM/%u: non-positive budget recommendation",
                    enclosure_);
    dynamic_cap_ = watts;
}

double
EnclosureManager::effectiveCap() const
{
    return std::min(static_cap_, dynamic_cap_);
}

void
EnclosureManager::observe(size_t tick)
{
    (void)tick;
    // Violations are reported against the static CAP_ENC — the physical
    // limit of the enclosure's power delivery and cooling.
    record(cluster_.lastEnclosurePower(enclosure_) >
           static_cap_ + 1e-9);

    double a_short = 1.0 / params_.demand_horizon;
    double a_long = 1.0 / params_.history_horizon;
    for (size_t i = 0; i < blades_.size(); ++i) {
        double p = blades_[i]->server().lastPower();
        demand_ewma_[i] += a_short * (p - demand_ewma_[i]);
        history_ewma_[i] += a_long * (p - history_ewma_[i]);
    }
}

void
EnclosureManager::step(size_t tick)
{
    DivisionInput in;
    in.budget = effectiveCap();
    in.demands = params_.policy == DivisionPolicy::History ? history_ewma_
                                                           : demand_ewma_;
    in.priorities = params_.priorities;
    for (auto *sm : blades_) {
        // Platform-state-aware bounds: a live blade cannot draw less
        // than its deepest idle power (granting less guarantees a
        // violation), and a powered-off blade is pinned at its residual
        // draw so no policy wastes budget on dark machines.
        GrantBounds gb = grantBounds(sm->server(), tick);
        in.maxima.push_back(gb.max);
        in.floors.push_back(gb.floor);
    }
    last_grants_ = divideBudget(params_.policy, in, &rng_);
    for (size_t i = 0; i < blades_.size(); ++i)
        blades_[i]->setBudget(std::max(last_grants_[i], 1e-6));
}

} // namespace controllers
} // namespace nps
