#include "controllers/group_manager.h"

#include <algorithm>

#include "util/logging.h"

namespace nps {
namespace controllers {

GroupManager::GroupManager(sim::Cluster &cluster,
                           std::vector<EnclosureManager *> enclosures,
                           std::vector<ServerManager *> standalone,
                           std::vector<ServerManager *> all_servers,
                           double static_cap, const Params &params)
    : cluster_(cluster),
      enclosures_(std::move(enclosures)),
      standalone_(std::move(standalone)),
      all_servers_(std::move(all_servers)),
      static_cap_(static_cap),
      params_(params),
      name_("GM"),
      rng_(params.seed, name_),
      child_demand_(enclosures_.size() + standalone_.size(), 0.0),
      child_history_(enclosures_.size() + standalone_.size(), 0.0),
      server_demand_(all_servers_.size(), 0.0),
      server_history_(all_servers_.size(), 0.0)
{
    if (static_cap_ <= 0.0)
        util::fatal("GM: non-positive static cap");
    if (all_servers_.empty())
        util::fatal("GM: no servers");
    for (auto *em : enclosures_) {
        if (!em)
            util::fatal("GM: null EM child");
    }
    for (auto *sm : standalone_) {
        if (!sm)
            util::fatal("GM: null standalone SM child");
    }
    size_t n_children = enclosures_.size() + standalone_.size();
    if (params_.policy == DivisionPolicy::Priority &&
        params_.priorities.size() != n_children &&
        params_.priorities.size() != all_servers_.size()) {
        util::fatal("GM: Priority policy needs one priority per child");
    }
}

void
GroupManager::restartCold()
{
    // A restarted GM rebuilds its demand estimates from zero and has no
    // memory of past grants; children ride their leases meanwhile.
    std::fill(child_demand_.begin(), child_demand_.end(), 0.0);
    std::fill(child_history_.begin(), child_history_.end(), 0.0);
    std::fill(server_demand_.begin(), server_demand_.end(), 0.0);
    std::fill(server_history_.begin(), server_history_.end(), 0.0);
    last_grants_.clear();
    prev_grants_.clear();
}

bool
GroupManager::faultedSend(fault::Link link, long id, size_t tick,
                          size_t slot, double grant, double &send)
{
    send = grant;
    if (!faults_)
        return true;
    if (faults_->budgetDropped(link, id, tick)) {
        ++degrade_.dropped_budgets;
        return false;
    }
    if (faults_->budgetStale(link, id, tick) && slot < prev_grants_.size()) {
        ++degrade_.stale_budgets;
        send = prev_grants_[slot];
    }
    return true;
}

void
GroupManager::observe(size_t tick)
{
    if (faults_) {
        if (faults_->down(fault::Level::GM, 0, tick)) {
            ++degrade_.outage_ticks;
            was_down_ = true;
            return;
        }
        if (was_down_) {
            was_down_ = false;
            ++degrade_.restarts;
            restartCold();
        }
    }
    record(cluster_.lastTick().total_power > static_cap_ + 1e-9);

    double a_short = 1.0 / params_.demand_horizon;
    double a_long = 1.0 / params_.history_horizon;

    size_t c = 0;
    for (auto *em : enclosures_) {
        double p = cluster_.lastEnclosurePower(em->enclosureId());
        child_demand_[c] += a_short * (p - child_demand_[c]);
        child_history_[c] += a_long * (p - child_history_[c]);
        ++c;
    }
    for (auto *sm : standalone_) {
        double p = sm->server().lastPower();
        child_demand_[c] += a_short * (p - child_demand_[c]);
        child_history_[c] += a_long * (p - child_history_[c]);
        ++c;
    }
    for (size_t i = 0; i < all_servers_.size(); ++i) {
        double p = all_servers_[i]->server().lastPower();
        server_demand_[i] += a_short * (p - server_demand_[i]);
        server_history_[i] += a_long * (p - server_history_[i]);
    }
}

void
GroupManager::step(size_t tick)
{
    if (faults_ && faults_->down(fault::Level::GM, 0, tick)) {
        // A down GM stops refreshing child leases; EMs and standalone SMs
        // degrade to their local fallbacks when those expire.
        ++degrade_.outage_steps;
        return;
    }
    if (params_.mode == Mode::Coordinated)
        stepCoordinated(tick);
    else
        stepUncoordinated(tick);
}

void
GroupManager::stepCoordinated(size_t tick)
{
    DivisionInput in;
    in.budget = static_cap_;
    in.demands = params_.policy == DivisionPolicy::History
                     ? child_history_
                     : child_demand_;
    if (params_.priorities.size() == child_demand_.size())
        in.priorities = params_.priorities;

    for (auto *em : enclosures_) {
        // Aggregate the platform-state-aware bounds of the member
        // blades: a half-dark enclosure neither needs nor can use its
        // nameplate maximum.
        double floor = 0.0, max_pow = 0.0;
        for (sim::ServerId sid :
             cluster_.enclosure(em->enclosureId()).members()) {
            GrantBounds gb = grantBounds(cluster_.server(sid), tick);
            floor += gb.floor;
            max_pow += gb.max;
        }
        in.maxima.push_back(max_pow);
        in.floors.push_back(floor);
    }
    for (auto *sm : standalone_) {
        GrantBounds gb = grantBounds(sm->server(), tick);
        in.maxima.push_back(gb.max);
        in.floors.push_back(gb.floor);
    }

    prev_grants_ = last_grants_;
    last_grants_ = divideBudget(params_.policy, in, &rng_);

    size_t c = 0;
    double send = 0.0;
    for (auto *em : enclosures_) {
        size_t slot = c++;
        if (faultedSend(fault::Link::GmToEm,
                        static_cast<long>(em->enclosureId()), tick, slot,
                        last_grants_[slot], send))
            em->setBudget(std::max(send, 1e-6), tick);
    }
    for (auto *sm : standalone_) {
        size_t slot = c++;
        if (faultedSend(fault::Link::GmToSm,
                        static_cast<long>(sm->server().id()), tick, slot,
                        last_grants_[slot], send))
            sm->setBudget(std::max(send, 1e-6), tick);
    }
}

void
GroupManager::stepUncoordinated(size_t tick)
{
    // A solo group capper knows only servers; it pushes per-server
    // budgets straight to every iLO, overwriting any EM allocation.
    DivisionInput in;
    in.budget = static_cap_;
    in.demands = params_.policy == DivisionPolicy::History
                     ? server_history_
                     : server_demand_;
    if (params_.priorities.size() == all_servers_.size())
        in.priorities = params_.priorities;

    for (auto *sm : all_servers_) {
        GrantBounds gb = grantBounds(sm->server(), tick);
        in.maxima.push_back(gb.max);
        in.floors.push_back(gb.floor);
    }
    prev_grants_ = last_grants_;
    last_grants_ = divideBudget(params_.policy, in, &rng_);
    double send = 0.0;
    for (size_t i = 0; i < all_servers_.size(); ++i) {
        long sid = static_cast<long>(all_servers_[i]->server().id());
        if (faultedSend(fault::Link::GmToSm, sid, tick, i,
                        last_grants_[i], send))
            all_servers_[i]->setBudget(std::max(send, 1e-6), tick);
    }
}

} // namespace controllers
} // namespace nps
