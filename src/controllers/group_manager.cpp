#include "controllers/group_manager.h"

#include <algorithm>

#include "util/logging.h"

namespace nps {
namespace controllers {

GroupManager::GroupManager(sim::Cluster &cluster,
                           std::vector<EnclosureManager *> enclosures,
                           std::vector<ServerManager *> standalone,
                           std::vector<ServerManager *> all_servers,
                           double static_cap, const Params &params)
    : cluster_(cluster),
      enclosures_(std::move(enclosures)),
      standalone_(std::move(standalone)),
      all_servers_(std::move(all_servers)),
      static_cap_(static_cap),
      params_(params),
      name_("GM"),
      rng_(params.seed, name_),
      child_demand_(enclosures_.size() + standalone_.size(), 0.0),
      child_history_(enclosures_.size() + standalone_.size(), 0.0),
      server_demand_(all_servers_.size(), 0.0),
      server_history_(all_servers_.size(), 0.0)
{
    if (static_cap_ <= 0.0)
        util::fatal("GM: non-positive static cap");
    if (all_servers_.empty())
        util::fatal("GM: no servers");
    for (auto *em : enclosures_) {
        if (!em)
            util::fatal("GM: null EM child");
    }
    for (auto *sm : standalone_) {
        if (!sm)
            util::fatal("GM: null standalone SM child");
    }
    size_t n_children = enclosures_.size() + standalone_.size();
    if (params_.policy == DivisionPolicy::Priority &&
        params_.priorities.size() != n_children &&
        params_.priorities.size() != all_servers_.size()) {
        util::fatal("GM: Priority policy needs one priority per child");
    }
}

void
GroupManager::observe(size_t tick)
{
    (void)tick;
    record(cluster_.lastTick().total_power > static_cap_ + 1e-9);

    double a_short = 1.0 / params_.demand_horizon;
    double a_long = 1.0 / params_.history_horizon;

    size_t c = 0;
    for (auto *em : enclosures_) {
        double p = cluster_.lastEnclosurePower(em->enclosureId());
        child_demand_[c] += a_short * (p - child_demand_[c]);
        child_history_[c] += a_long * (p - child_history_[c]);
        ++c;
    }
    for (auto *sm : standalone_) {
        double p = sm->server().lastPower();
        child_demand_[c] += a_short * (p - child_demand_[c]);
        child_history_[c] += a_long * (p - child_history_[c]);
        ++c;
    }
    for (size_t i = 0; i < all_servers_.size(); ++i) {
        double p = all_servers_[i]->server().lastPower();
        server_demand_[i] += a_short * (p - server_demand_[i]);
        server_history_[i] += a_long * (p - server_history_[i]);
    }
}

void
GroupManager::step(size_t tick)
{
    if (params_.mode == Mode::Coordinated)
        stepCoordinated(tick);
    else
        stepUncoordinated(tick);
}

void
GroupManager::stepCoordinated(size_t tick)
{
    DivisionInput in;
    in.budget = static_cap_;
    in.demands = params_.policy == DivisionPolicy::History
                     ? child_history_
                     : child_demand_;
    if (params_.priorities.size() == child_demand_.size())
        in.priorities = params_.priorities;

    for (auto *em : enclosures_) {
        // Aggregate the platform-state-aware bounds of the member
        // blades: a half-dark enclosure neither needs nor can use its
        // nameplate maximum.
        double floor = 0.0, max_pow = 0.0;
        for (sim::ServerId sid :
             cluster_.enclosure(em->enclosureId()).members()) {
            GrantBounds gb = grantBounds(cluster_.server(sid), tick);
            floor += gb.floor;
            max_pow += gb.max;
        }
        in.maxima.push_back(max_pow);
        in.floors.push_back(floor);
    }
    for (auto *sm : standalone_) {
        GrantBounds gb = grantBounds(sm->server(), tick);
        in.maxima.push_back(gb.max);
        in.floors.push_back(gb.floor);
    }

    last_grants_ = divideBudget(params_.policy, in, &rng_);

    size_t c = 0;
    for (auto *em : enclosures_)
        em->setBudget(std::max(last_grants_[c++], 1e-6));
    for (auto *sm : standalone_)
        sm->setBudget(std::max(last_grants_[c++], 1e-6));
}

void
GroupManager::stepUncoordinated(size_t tick)
{
    // A solo group capper knows only servers; it pushes per-server
    // budgets straight to every iLO, overwriting any EM allocation.
    DivisionInput in;
    in.budget = static_cap_;
    in.demands = params_.policy == DivisionPolicy::History
                     ? server_history_
                     : server_demand_;
    if (params_.priorities.size() == all_servers_.size())
        in.priorities = params_.priorities;

    for (auto *sm : all_servers_) {
        GrantBounds gb = grantBounds(sm->server(), tick);
        in.maxima.push_back(gb.max);
        in.floors.push_back(gb.floor);
    }
    last_grants_ = divideBudget(params_.policy, in, &rng_);
    for (size_t i = 0; i < all_servers_.size(); ++i)
        all_servers_[i]->setBudget(std::max(last_grants_[i], 1e-6));
}

} // namespace controllers
} // namespace nps
