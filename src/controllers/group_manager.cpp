#include "controllers/group_manager.h"

#include <algorithm>

#include "obs/decision_trace.h"
#include "obs/metrics.h"
#include "util/logging.h"

namespace nps {
namespace controllers {

GroupManager::GroupManager(sim::Cluster &cluster,
                           std::vector<EnclosureManager *> enclosures,
                           std::vector<ServerManager *> standalone,
                           std::vector<ServerManager *> all_servers,
                           double static_cap, const Params &params)
    : GroupManager(cluster, 0, "GM",
                   Children{{}, std::move(enclosures),
                            std::move(standalone),
                            std::move(all_servers)},
                   static_cap, params)
{
}

GroupManager::GroupManager(sim::Cluster &cluster, long id,
                           std::string name, Children children,
                           double static_cap, const Params &params)
    : cluster_(cluster),
      id_(id),
      groups_(std::move(children.groups)),
      enclosures_(std::move(children.enclosures)),
      standalone_(std::move(children.standalone)),
      all_servers_(std::move(children.all_servers)),
      static_cap_(static_cap),
      dynamic_cap_(static_cap),
      params_(params),
      name_(std::move(name)),
      rng_(params.seed, name_),
      child_demand_(groups_.size() + enclosures_.size() +
                        standalone_.size(),
                    0.0),
      child_history_(child_demand_.size(), 0.0),
      server_demand_(all_servers_.size(), 0.0),
      server_history_(all_servers_.size(), 0.0)
{
    if (static_cap_ <= 0.0)
        util::fatal("%s: non-positive static cap", name_.c_str());
    if (all_servers_.empty())
        util::fatal("%s: no servers", name_.c_str());
    for (auto *g : groups_) {
        if (!g)
            util::fatal("%s: null GM child", name_.c_str());
        if (g == this)
            util::fatal("%s: GM cannot parent itself", name_.c_str());
        g->has_parent_ = true;
    }
    for (auto *em : enclosures_) {
        if (!em)
            util::fatal("%s: null EM child", name_.c_str());
    }
    for (auto *sm : standalone_) {
        if (!sm)
            util::fatal("%s: null standalone SM child", name_.c_str());
    }
    scope_ids_.reserve(all_servers_.size());
    for (const auto *sm : all_servers_)
        scope_ids_.push_back(sm->server().id());
    track_server_ewmas_ = params_.mode == Mode::Uncoordinated;
    size_t n_children = child_demand_.size();
    if (params_.policy == DivisionPolicy::Priority &&
        params_.priorities.size() != n_children &&
        params_.priorities.size() != all_servers_.size()) {
        util::fatal("%s: Priority policy needs one priority per child",
                    name_.c_str());
    }
    if (params_.mode == Mode::Coordinated) {
        for (auto *g : groups_) {
            addChildLink(fault::Link::GmToGm, g->id(), g->name(),
                         [g](const bus::BudgetGrant &b) {
                             g->setBudget(b.watts, b.tick, b.trace);
                         });
        }
        for (auto *em : enclosures_) {
            addChildLink(fault::Link::GmToEm,
                         static_cast<long>(em->enclosureId()), em->name(),
                         [em](const bus::BudgetGrant &b) {
                             em->setBudget(b.watts, b.tick, b.trace);
                         });
        }
        for (auto *sm : standalone_) {
            addChildLink(fault::Link::GmToSm,
                         static_cast<long>(sm->server().id()), sm->name(),
                         [sm](const bus::BudgetGrant &b) {
                             sm->setBudget(b.watts, b.tick, b.trace);
                         });
        }
    } else {
        for (auto *sm : all_servers_) {
            long sid = static_cast<long>(sm->server().id());
            server_links_.push_back(std::make_unique<bus::BudgetLink>(
                fault::Link::GmToSm, sid,
                name_ + "->" + sm->name(),
                [sm](const bus::BudgetGrant &b) {
                    sm->setBudget(b.watts, b.tick, b.trace);
                }));
        }
    }
}

void
GroupManager::addChildLink(fault::Link link, long child,
                           const std::string &peer,
                           bus::BudgetLink::Sink sink)
{
    child_links_.push_back(std::make_unique<bus::BudgetLink>(
        link, child, name_ + "->" + peer, std::move(sink)));
}

void
GroupManager::setFaultInjector(const fault::FaultInjector *faults)
{
    faults_ = faults;
    for (auto &link : child_links_)
        link->setFaultInjector(faults, &degrade_);
    for (auto &link : server_links_)
        link->setFaultInjector(faults, &degrade_);
}

void
GroupManager::setStreamHealth(const fault::StreamHealth *health)
{
    for (auto &link : child_links_) {
        if (link->link() == fault::Link::GmToSm)
            link->setStreamHealth(health, &degrade_);
    }
    for (auto &link : server_links_)
        link->setStreamHealth(health, &degrade_);
}

void
GroupManager::attachControlLog(bus::ControlPlaneLog *log)
{
    for (auto &link : child_links_)
        link->attachLog(log);
    for (auto &link : server_links_)
        link->attachLog(log);
}

void
GroupManager::attachCascade(bus::CascadeTracer *tracer)
{
    for (auto &link : child_links_)
        link->attachCascade(tracer);
    for (auto &link : server_links_)
        link->attachCascade(tracer);
}

void
GroupManager::attachTransport(bus::Transport *transport,
                              const bus::OwnerFn &owner)
{
    const int rank = owner ? owner(bus::OwnerLevel::Gm, id_) : 0;
    for (auto &link : child_links_) {
        link->setTransport(transport, rank);
        if (transport)
            link->attachDegradeStats(&degrade_);
    }
    for (auto &link : server_links_) {
        link->setTransport(transport, rank);
        if (transport)
            link->attachDegradeStats(&degrade_);
    }
}

void
GroupManager::attachObs(obs::MetricsRegistry *metrics,
                        obs::TraceSink *trace)
{
    if (metrics) {
        obs_divisions_ = metrics->counter(
            "nps_gm_divisions_total", name_,
            "Budget divisions performed by the GM");
        obs_lease_expiries_ = metrics->counter(
            "nps_gm_lease_expiries_total", name_,
            "Parent-GM budget leases that lapsed into the fallback cap");
        obs_restarts_ = metrics->counter(
            "nps_gm_restarts_total", name_,
            "Cold restarts after a GM outage");
        obs_cap_ = metrics->gauge(
            "nps_gm_cap_watts", name_,
            "Budget divided by the GM at its most recent step");
        obs_scope_power_ = metrics->gauge(
            "nps_gm_scope_power_watts", name_,
            "Scope power observed at the GM's most recent step");
        obs_grants_ = metrics->histogram(
            "nps_gm_grant_watts", name_,
            "Per-child grants sent by the GM",
            {100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0,
             25000.0});
    }
    if (trace)
        obs_trace_ = trace->channel(name_);
}

void
GroupManager::setBudget(double watts)
{
    if (watts <= 0.0)
        util::fatal("%s: non-positive budget recommendation",
                    name_.c_str());
    dynamic_cap_ = watts;
}

void
GroupManager::setBudget(double watts, size_t tick, uint32_t trace)
{
    setBudget(watts);
    budget_tick_ = tick;
    trace_ctx_ = trace;
}

double
GroupManager::effectiveCap() const
{
    return std::min(static_cap_, dynamic_cap_);
}

bool
GroupManager::leaseLapsed(size_t tick) const
{
    return has_parent_ && params_.lease_ticks > 0 &&
           tick > budget_tick_ + params_.lease_ticks;
}

double
GroupManager::currentCap(size_t tick) const
{
    if (leaseLapsed(tick))
        return std::min(static_cap_, params_.lease_fallback * static_cap_);
    return effectiveCap();
}

double
GroupManager::scopePower() const
{
    // Serial left-fold in server-id order: for a full-cluster scope this
    // reproduces ClusterTick::total_power bit-for-bit (same fold). Reads
    // go straight to the SoA power array (slot == ServerId).
    const std::vector<double> &power = cluster_.serverState().power;
    double sum = 0.0;
    for (sim::ServerId id : scope_ids_)
        sum += power[id];
    return sum;
}

void
GroupManager::restartCold(size_t tick)
{
    // A restarted GM rebuilds its demand estimates from zero and has no
    // memory of past grants or of its parent's; children ride their
    // leases meanwhile.
    std::fill(child_demand_.begin(), child_demand_.end(), 0.0);
    std::fill(child_history_.begin(), child_history_.end(), 0.0);
    std::fill(server_demand_.begin(), server_demand_.end(), 0.0);
    std::fill(server_history_.begin(), server_history_.end(), 0.0);
    last_grants_.clear();
    for (auto &link : child_links_)
        link->reset();
    for (auto &link : server_links_)
        link->reset();
    dynamic_cap_ = static_cap_;
    budget_tick_ = tick;
    trace_ctx_ = 0;
    lease_expired_ = false;
}

void
GroupManager::observe(size_t tick)
{
    if (faults_) {
        if (faults_->down(fault::Level::GM, id_, tick)) {
            ++degrade_.outage_ticks;
            was_down_ = true;
            return;
        }
        if (was_down_) {
            was_down_ = false;
            ++degrade_.restarts;
            if (obs_restarts_)
                obs_restarts_->add();
            if (obs_trace_)
                obs_trace_->emit(tick,
                                 "cold restart after outage: static cap "
                                 "%.6gW, estimates rebuilt from zero",
                                 static_cap_);
            restartCold(tick);
        }
    }
    record(scopePower() > static_cap_ + 1e-9);

    double a_short = 1.0 / params_.demand_horizon;
    double a_long = 1.0 / params_.history_horizon;

    size_t c = 0;
    for (auto *g : groups_) {
        double p = g->scopePower();
        child_demand_[c] += a_short * (p - child_demand_[c]);
        child_history_[c] += a_long * (p - child_history_[c]);
        ++c;
    }
    for (auto *em : enclosures_) {
        double p = cluster_.lastEnclosurePower(em->enclosureId());
        child_demand_[c] += a_short * (p - child_demand_[c]);
        child_history_[c] += a_long * (p - child_history_[c]);
        ++c;
    }
    for (auto *sm : standalone_) {
        double p = sm->server().lastPower();
        child_demand_[c] += a_short * (p - child_demand_[c]);
        child_history_[c] += a_long * (p - child_history_[c]);
        ++c;
    }
    if (track_server_ewmas_) {
        // Uncoordinated mode only: the direct-to-server division needs
        // per-server estimates. Coordinated GMs never read these, so
        // they skip the O(scope) update (the vectors stay zero).
        const std::vector<double> &power = cluster_.serverState().power;
        for (size_t i = 0; i < scope_ids_.size(); ++i) {
            double p = power[scope_ids_[i]];
            server_demand_[i] += a_short * (p - server_demand_[i]);
            server_history_[i] += a_long * (p - server_history_[i]);
        }
    }
}

void
GroupManager::step(size_t tick)
{
    if (faults_ && faults_->down(fault::Level::GM, id_, tick)) {
        // A down GM stops refreshing child leases; child GMs, EMs and
        // standalone SMs degrade to their fallbacks when those expire.
        ++degrade_.outage_steps;
        return;
    }
    bool lapsed = leaseLapsed(tick);
    if (lapsed) {
        if (!lease_expired_) {
            lease_expired_ = true;
            ++degrade_.lease_expiries;
            if (obs_lease_expiries_)
                obs_lease_expiries_->add();
            if (obs_trace_)
                obs_trace_->emit(tick,
                                 "parent lease expired (grant from tick "
                                 "%zu, lease %u) -> fallback cap %.6gW",
                                 budget_tick_, params_.lease_ticks,
                                 currentCap(tick));
        }
        ++degrade_.lease_fallback_steps;
    } else {
        if (lease_expired_ && obs_trace_)
            obs_trace_->emit(tick,
                             "parent lease recovered: dividing %.6gW "
                             "again",
                             effectiveCap());
        lease_expired_ = false;
    }
    // The root GM opens a new cascade epoch at every division; nested
    // GMs propagate the epoch of the parent grant they hold. Derived
    // purely from (tick, serialized grant state), so every replica of a
    // distributed run stamps identically.
    if (!has_parent_)
        trace_ctx_ = static_cast<uint32_t>(tick + 1);
    if (params_.mode == Mode::Coordinated)
        stepCoordinated(tick);
    else
        stepUncoordinated(tick);
}

void
GroupManager::stepCoordinated(size_t tick)
{
    DivisionInput in;
    in.budget = currentCap(tick);
    in.demands = params_.policy == DivisionPolicy::History
                     ? child_history_
                     : child_demand_;
    if (params_.priorities.size() == child_demand_.size())
        in.priorities = params_.priorities;

    for (auto *g : groups_) {
        // A child group's bounds aggregate over its whole subtree.
        double floor = 0.0, max_pow = 0.0;
        for (auto *sm : g->allServers()) {
            GrantBounds gb = grantBounds(sm->server(), tick);
            floor += gb.floor;
            max_pow += gb.max;
        }
        in.maxima.push_back(max_pow);
        in.floors.push_back(floor);
    }
    for (auto *em : enclosures_) {
        // Aggregate the platform-state-aware bounds of the member
        // blades: a half-dark enclosure neither needs nor can use its
        // nameplate maximum.
        double floor = 0.0, max_pow = 0.0;
        for (sim::ServerId sid :
             cluster_.enclosure(em->enclosureId()).members()) {
            GrantBounds gb = grantBounds(cluster_.server(sid), tick);
            floor += gb.floor;
            max_pow += gb.max;
        }
        in.maxima.push_back(max_pow);
        in.floors.push_back(floor);
    }
    for (auto *sm : standalone_) {
        GrantBounds gb = grantBounds(sm->server(), tick);
        in.maxima.push_back(gb.max);
        in.floors.push_back(gb.floor);
    }

    last_grants_ = divideBudget(params_.policy, in, &rng_);
    if (obs_divisions_)
        obs_divisions_->add();
    if (obs_cap_)
        obs_cap_->set(in.budget);
    if (obs_scope_power_)
        obs_scope_power_->set(scopePower());
    if (obs_grants_) {
        for (double g : last_grants_)
            obs_grants_->observe(g);
    }
    if (obs_trace_) {
        obs_trace_->emit(tick,
                         "divided %.6gW (%s): %zu group, %zu enclosure, "
                         "%zu standalone grants; scope power %.6gW",
                         in.budget, policyName(params_.policy),
                         groups_.size(), enclosures_.size(),
                         standalone_.size(), scopePower());
    }
    for (size_t slot = 0; slot < child_links_.size(); ++slot) {
        child_links_[slot]->setTraceStamp(trace_ctx_);
        child_links_[slot]->send(last_grants_[slot], tick);
    }
}

void
GroupManager::stepUncoordinated(size_t tick)
{
    // A solo group capper knows only servers; it pushes per-server
    // budgets straight to every iLO, overwriting any EM allocation.
    DivisionInput in;
    in.budget = currentCap(tick);
    in.demands = params_.policy == DivisionPolicy::History
                     ? server_history_
                     : server_demand_;
    if (params_.priorities.size() == all_servers_.size())
        in.priorities = params_.priorities;

    for (auto *sm : all_servers_) {
        GrantBounds gb = grantBounds(sm->server(), tick);
        in.maxima.push_back(gb.max);
        in.floors.push_back(gb.floor);
    }
    last_grants_ = divideBudget(params_.policy, in, &rng_);
    if (obs_divisions_)
        obs_divisions_->add();
    if (obs_cap_)
        obs_cap_->set(in.budget);
    if (obs_scope_power_)
        obs_scope_power_->set(scopePower());
    if (obs_grants_) {
        for (double g : last_grants_)
            obs_grants_->observe(g);
    }
    if (obs_trace_) {
        obs_trace_->emit(tick,
                         "divided %.6gW (%s) directly across %zu "
                         "servers, overwriting EM grants",
                         in.budget, policyName(params_.policy),
                         all_servers_.size());
    }
    for (size_t i = 0; i < server_links_.size(); ++i) {
        server_links_[i]->setTraceStamp(trace_ctx_);
        server_links_[i]->send(last_grants_[i], tick);
    }
}

void
GroupManager::saveState(ckpt::SectionWriter &w) const
{
    ViolationTracker::saveState(w);
    w.putDouble(dynamic_cap_);
    uint64_t rng_state[4];
    rng_.getState(rng_state);
    for (uint64_t s : rng_state)
        w.putU64(s);
    w.putDoubleVec(child_demand_);
    w.putDoubleVec(child_history_);
    w.putDoubleVec(server_demand_);
    w.putDoubleVec(server_history_);
    w.putDoubleVec(last_grants_);
    w.putU64(child_links_.size());
    for (const auto &link : child_links_)
        link->saveState(w);
    w.putU64(server_links_.size());
    for (const auto &link : server_links_)
        link->saveState(w);
    degrade_.saveState(w);
    w.putU64(budget_tick_);
    w.putU32(trace_ctx_);
    w.putBool(lease_expired_);
    w.putBool(was_down_);
}

void
GroupManager::loadState(ckpt::SectionReader &r)
{
    ViolationTracker::loadState(r);
    dynamic_cap_ = r.getDouble();
    uint64_t rng_state[4];
    for (uint64_t &s : rng_state)
        s = r.getU64();
    rng_.setState(rng_state);
    child_demand_ = r.getDoubleVec();
    child_history_ = r.getDoubleVec();
    server_demand_ = r.getDoubleVec();
    server_history_ = r.getDoubleVec();
    last_grants_ = r.getDoubleVec();
    auto child_links = static_cast<size_t>(r.getU64());
    if (child_links != child_links_.size())
        util::fatal("GM %s restore: snapshot has %zu child links, "
                    "rebuilt GM has %zu — topology mismatch",
                    name_.c_str(), child_links, child_links_.size());
    for (auto &link : child_links_)
        link->loadState(r);
    auto server_links = static_cast<size_t>(r.getU64());
    if (server_links != server_links_.size())
        util::fatal("GM %s restore: snapshot has %zu server links, "
                    "rebuilt GM has %zu — topology mismatch",
                    name_.c_str(), server_links, server_links_.size());
    for (auto &link : server_links_)
        link->loadState(r);
    degrade_.loadState(r);
    budget_tick_ = static_cast<size_t>(r.getU64());
    trace_ctx_ = r.getU32();
    lease_expired_ = r.getBool();
    was_down_ = r.getBool();
}

} // namespace controllers
} // namespace nps
