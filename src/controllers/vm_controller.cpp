#include "controllers/vm_controller.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/decision_trace.h"
#include "obs/metrics.h"
#include "util/logging.h"
#include "util/stats.h"

namespace nps {
namespace controllers {

VmController::VmController(sim::Cluster &cluster, Feedback feedback,
                           const Params &params)
    : cluster_(cluster),
      feedback_(std::move(feedback)),
      params_(params),
      name_("VMC"),
      b_loc_(params.use_violation_feedback ? params.buffer_init : 0.0),
      b_enc_(params.use_violation_feedback ? params.buffer_init : 0.0),
      b_grp_(params.use_violation_feedback ? params.buffer_init : 0.0),
      load_accum_(cluster.numVms(), 0.0),
      load_sq_accum_(cluster.numVms(), 0.0)
{
    if (params_.capacity_target <= 0.0 || params_.capacity_target > 1.0)
        util::fatal("VMC: capacity target %f out of (0,1]",
                    params_.capacity_target);
    if (params_.buffer_max < 0.0 || params_.buffer_max >= 1.0)
        util::fatal("VMC: buffer max %f out of [0,1)", params_.buffer_max);
    if (params_.use_forecast) {
        forecasters_.assign(cluster.numVms(),
                            DemandForecaster(params_.forecast));
    }
    // Wrap every feed in a typed upstream channel. The group tier mixes
    // the root GM and any nested sub-GMs; with no sub-GMs its mean is the
    // root's rate, exactly the flat Figure-2 behavior.
    for (size_t i = 0; i < feedback_.local.size(); ++i) {
        loc_channels_.push_back(std::make_unique<bus::ViolationChannel>(
            "loc" + std::to_string(i) + "->VMC", feedback_.local[i]));
    }
    for (size_t i = 0; i < feedback_.enclosure.size(); ++i) {
        enc_channels_.push_back(std::make_unique<bus::ViolationChannel>(
            "enc" + std::to_string(i) + "->VMC", feedback_.enclosure[i]));
    }
    std::vector<ViolationSource *> grp;
    if (feedback_.group)
        grp.push_back(feedback_.group);
    for (auto *s : feedback_.subgroup)
        grp.push_back(s);
    for (size_t i = 0; i < grp.size(); ++i) {
        grp_channels_.push_back(std::make_unique<bus::ViolationChannel>(
            "grp" + std::to_string(i) + "->VMC", grp[i]));
    }
}

void
VmController::attachControlLog(bus::ControlPlaneLog *log)
{
    for (auto &ch : loc_channels_)
        ch->attachLog(log);
    for (auto &ch : enc_channels_)
        ch->attachLog(log);
    for (auto &ch : grp_channels_)
        ch->attachLog(log);
}

void
VmController::attachCascade(bus::CascadeTracer *tracer)
{
    for (auto &ch : loc_channels_)
        ch->attachCascade(tracer);
    for (auto &ch : enc_channels_)
        ch->attachCascade(tracer);
    for (auto &ch : grp_channels_)
        ch->attachCascade(tracer);
}

void
VmController::attachTransport(bus::Transport *transport,
                              const bus::OwnerFn &owner)
{
    auto rank = [&](bus::OwnerLevel level, long id) {
        return owner ? owner(level, id) : 0;
    };
    // Feed order mirrors the coordinator's wiring: local[i] is SM i,
    // enclosure[i] is EM i, and the group tier is the root GM (id 0)
    // followed by the nested sub-GMs in pre-order (ids 1..N); with no
    // root feed the sub-GM ids still start at 1.
    for (size_t i = 0; i < loc_channels_.size(); ++i) {
        loc_channels_[i]->setTransport(
            transport, rank(bus::OwnerLevel::Sm, static_cast<long>(i)));
    }
    for (size_t i = 0; i < enc_channels_.size(); ++i) {
        enc_channels_[i]->setTransport(
            transport, rank(bus::OwnerLevel::Em, static_cast<long>(i)));
    }
    const long grp_base = feedback_.group ? 0 : 1;
    for (size_t i = 0; i < grp_channels_.size(); ++i) {
        grp_channels_[i]->setTransport(
            transport,
            rank(bus::OwnerLevel::Gm, grp_base + static_cast<long>(i)));
    }
}

void
VmController::attachObs(obs::MetricsRegistry *metrics,
                        obs::TraceSink *trace)
{
    if (metrics) {
        obs_epochs_ = metrics->counter(
            "nps_vmc_epochs_total", name_,
            "Completed consolidation epochs");
        obs_adoptions_ = metrics->counter(
            "nps_vmc_adoptions_total", name_,
            "Epochs whose new placement plan was adopted");
        obs_migrations_ = metrics->counter(
            "nps_vmc_migrations_total", name_, "VM migrations applied");
        obs_infeasible_ = metrics->counter(
            "nps_vmc_infeasible_total", name_,
            "Epochs whose packing was infeasible");
        obs_poweroffs_ = metrics->counter(
            "nps_vmc_poweroffs_total", name_,
            "Idle machines switched off by the VMC");
        obs_b_loc_ = metrics->gauge(
            "nps_vmc_buffer", "loc",
            "Violation-feedback buffers b_loc/b_enc/b_grp");
        obs_b_enc_ = metrics->gauge(
            "nps_vmc_buffer", "enc",
            "Violation-feedback buffers b_loc/b_enc/b_grp");
        obs_b_grp_ = metrics->gauge(
            "nps_vmc_buffer", "grp",
            "Violation-feedback buffers b_loc/b_enc/b_grp");
        obs_est_power_ = metrics->gauge(
            "nps_vmc_est_power_watts", name_,
            "Estimated power of the placement standing after the last "
            "epoch");
    }
    if (trace)
        obs_trace_ = trace->channel(name_);
}

void
VmController::restartCold()
{
    // A restarted VMC has lost its epoch accumulators, forecaster state
    // and tuned buffers; it resumes from the construction-time defaults
    // and needs a full epoch of observations before re-optimizing.
    std::fill(load_accum_.begin(), load_accum_.end(), 0.0);
    std::fill(load_sq_accum_.begin(), load_sq_accum_.end(), 0.0);
    obs_ticks_ = 0;
    double init = params_.use_violation_feedback ? params_.buffer_init
                                                 : 0.0;
    b_loc_ = init;
    b_enc_ = init;
    b_grp_ = init;
    if (params_.use_forecast) {
        forecasters_.assign(cluster_.numVms(),
                            DemandForecaster(params_.forecast));
    }
}

void
VmController::observe(size_t tick)
{
    if (faults_) {
        if (faults_->down(fault::Level::VMC, 0, tick)) {
            ++degrade_.outage_ticks;
            was_down_ = true;
            return;
        }
        if (was_down_) {
            was_down_ = false;
            ++degrade_.restarts;
            if (obs_trace_)
                obs_trace_->emit(tick,
                                 "cold restart after outage: buffers "
                                 "and epoch state reset");
            restartCold();
        }
    }
    for (size_t j = 0; j < cluster_.numVms(); ++j) {
        const sim::VirtualMachine &vm = cluster_.vm(
            static_cast<sim::VmId>(j));
        // Coordinated: real (full-speed) utilization. Uncoordinated: the
        // apparent share a guest agent reports, which saturates with the
        // host and misreads throttled machines.
        double u = params_.use_real_util ? vm.lastServed()
                                         : vm.lastApparentShare();
        load_accum_[j] += u;
        load_sq_accum_[j] += u * u;
    }
    ++obs_ticks_;
}

std::vector<double>
VmController::epochLoads()
{
    std::vector<double> loads(load_accum_.size(), 0.0);
    if (obs_ticks_ == 0)
        return loads;
    double n = static_cast<double>(obs_ticks_);
    for (size_t j = 0; j < loads.size(); ++j) {
        double mean = load_accum_[j] / n;
        double var = std::max(0.0, load_sq_accum_[j] / n - mean * mean);
        double base = mean;
        if (params_.use_forecast) {
            // Predict the next epoch's mean; stay at least at the
            // observed level so a falling forecast cannot under-pack
            // faster than demand actually falls.
            forecasters_[j].observe(mean);
            base = std::max(mean, forecasters_[j].forecast(1));
        }
        // Pack at the base plus a spread allowance so demand peaks
        // between epochs do not immediately stress the capping levels.
        double est = base + params_.spread_sigma * std::sqrt(var);
        // The real-utilization path measures useful work, so the packer
        // must re-add the virtualization overhead; the apparent path
        // already includes it (another way mis-measurement compounds).
        loads[j] = params_.use_real_util ? est * (1.0 + params_.alpha_v)
                                         : est;
    }
    return loads;
}

void
VmController::updateBuffers(size_t tick)
{
    if (!params_.use_violation_feedback) {
        b_loc_ = 0.0;
        b_enc_ = 0.0;
        b_grp_ = 0.0;
        return;
    }
    auto mean_rate =
        [tick](std::vector<std::unique_ptr<bus::ViolationChannel>> &chs) {
            if (chs.empty())
                return 0.0;
            double sum = 0.0;
            for (auto &ch : chs)
                sum += ch->poll(tick).epoch_rate;
            return sum / static_cast<double>(chs.size());
        };
    double loc_rate = mean_rate(loc_channels_);
    double enc_rate = mean_rate(enc_channels_);
    double grp_rate = mean_rate(grp_channels_);

    // Per-unit-time feedback: shorter epochs integrate the same
    // violation rate with a proportionally larger per-epoch gain.
    double gain = params_.buffer_gain *
                  static_cast<double>(params_.gain_ref_period) /
                  static_cast<double>(params_.period);
    auto tune = [this, gain](double buffer, double rate) {
        return util::clamp(params_.buffer_decay * buffer + gain * rate,
                           params_.buffer_init, params_.buffer_max);
    };
    b_loc_ = tune(b_loc_, loc_rate);
    b_enc_ = tune(b_enc_, enc_rate);
    b_grp_ = tune(b_grp_, grp_rate);

    for (auto &ch : loc_channels_)
        ch->drain();
    for (auto &ch : enc_channels_)
        ch->drain();
    for (auto &ch : grp_channels_)
        ch->drain();
}

std::vector<PackBin>
VmController::buildBins(size_t tick) const
{
    constexpr double kInf = std::numeric_limits<double>::infinity();
    std::vector<PackBin> bins;
    bins.reserve(cluster_.numServers());
    for (const auto &srv : cluster_.servers()) {
        PackBin bin;
        bin.id = srv.id();
        bin.power = &srv.model();
        sim::EnclosureId enc = cluster_.enclosureOf(srv.id());
        bin.enclosure = enc == sim::Cluster::kNoEnclosure
                            ? std::numeric_limits<unsigned>::max()
                            : enc;
        bin.on = srv.platformPower(tick) != sim::PlatformPower::Off;
        bin.capacity = params_.capacity_target;
        bin.util_limit = params_.util_limit;
        bin.power_cap = params_.use_budget_constraints
                            ? (1.0 - b_loc_) * cluster_.capLoc(srv.id())
                            : kInf;
        // An unused machine draws its off power when we may switch it
        // off; otherwise it idles at the deepest P-state (the EC will
        // sink it there).
        bin.unused_watts =
            params_.allow_power_off
                ? srv.spec().offWatts()
                : srv.model().idlePower(
                      srv.model().pstates().slowestIndex());
        bins.push_back(bin);
    }
    return bins;
}

void
VmController::step(size_t tick)
{
    if (faults_ && faults_->down(fault::Level::VMC, 0, tick)) {
        // No consolidation this epoch: placements freeze where they are,
        // which is safe — the capping hierarchy still enforces budgets.
        ++degrade_.outage_steps;
        return;
    }
    updateBuffers(tick);

    std::vector<double> loads = epochLoads();
    std::vector<PackItem> items;
    items.reserve(cluster_.numVms());
    for (size_t j = 0; j < cluster_.numVms(); ++j) {
        PackItem item;
        item.vm = static_cast<sim::VmId>(j);
        item.load = loads[j];
        item.current = cluster_.serverOf(item.vm);
        items.push_back(item);
    }

    std::vector<PackBin> bins = buildBins(tick);
    PackConstraints constraints;
    if (params_.use_budget_constraints) {
        constraints.enclosure_caps.resize(cluster_.numEnclosures());
        for (size_t e = 0; e < cluster_.numEnclosures(); ++e) {
            constraints.enclosure_caps[e] =
                (1.0 - b_enc_) *
                cluster_.capEnc(static_cast<sim::EnclosureId>(e));
        }
        constraints.group_cap = (1.0 - b_grp_) * cluster_.capGrp();
    }

    PackResult packed = packGreedy(items, bins, constraints);
    ++stats_.epochs;
    if (obs_epochs_)
        obs_epochs_->add();
    if (!packed.feasible) {
        ++stats_.infeasible;
        if (obs_infeasible_)
            obs_infeasible_->add();
    }

    // Price both plans with the same estimator; the new plan also pays
    // the amortized migration overhead of Eq. (1).
    std::vector<sim::ServerId> current(items.size());
    for (size_t i = 0; i < items.size(); ++i)
        current[i] = items[i].current;
    AssignmentEval cur_eval =
        evaluateAssignment(items, bins, current, constraints);
    double cost_cur = cur_eval.est_power;
    double cost_new = packed.est_power;
    double period_ticks = static_cast<double>(params_.period);
    for (size_t i = 0; i < items.size(); ++i) {
        if (packed.assignment[i] != items[i].current) {
            const auto &dst = cluster_.server(packed.assignment[i]);
            cost_new += params_.alpha_m *
                        (static_cast<double>(params_.migration_ticks) /
                         period_ticks) *
                        items[i].load * dst.model().maxPower();
        }
    }

    // Adopt the plan when it is decisively cheaper, or when the current
    // placement no longer fits the (buffered) constraints and the plan
    // does: backing off an over-aggressive consolidation is exactly the
    // correction the violation feedback is meant to drive, even when it
    // costs power.
    bool adopt = cost_new < cost_cur * (1.0 - params_.adoption_margin) ||
                 (packed.feasible && !cur_eval.feasible);
    if (obs_trace_) {
        size_t moved = 0;
        for (size_t i = 0; i < items.size(); ++i) {
            if (packed.assignment[i] != items[i].current)
                ++moved;
        }
        size_t active_caps =
            params_.use_budget_constraints
                ? constraints.enclosure_caps.size() + 1
                : 0;
        obs_trace_->emit(tick,
                         "epoch %lu: packed %zu VMs, %zu budget "
                         "constraints active, est %.6gW vs current "
                         "%.6gW -> %s (%zu moves)%s; buffers "
                         "loc=%.4g enc=%.4g grp=%.4g",
                         stats_.epochs, items.size(), active_caps,
                         cost_new, cost_cur,
                         adopt ? "adopted" : "kept current", moved,
                         packed.feasible ? "" : " [plan infeasible]",
                         b_loc_, b_enc_, b_grp_);
    }
    if (adopt) {
        ++stats_.adoptions;
        if (obs_adoptions_)
            obs_adoptions_->add();
        stats_.last_est_power = packed.est_power;
        applyAssignment(items, packed.assignment, tick);
    } else {
        stats_.last_est_power = cost_cur;
        // Even when the placement stands, idle machines can be switched
        // off (e.g. after demand drops).
        if (params_.allow_power_off) {
            for (auto &srv : cluster_.servers()) {
                if (srv.vms().empty() && srv.isOn(tick)) {
                    srv.powerOff();
                    if (obs_poweroffs_)
                        obs_poweroffs_->add();
                }
            }
        }
    }
    if (obs_b_loc_) {
        obs_b_loc_->set(b_loc_);
        obs_b_enc_->set(b_enc_);
        obs_b_grp_->set(b_grp_);
        obs_est_power_->set(stats_.last_est_power);
    }

    // Start the next epoch's averaging window.
    std::fill(load_accum_.begin(), load_accum_.end(), 0.0);
    std::fill(load_sq_accum_.begin(), load_sq_accum_.end(), 0.0);
    obs_ticks_ = 0;
}

void
VmController::applyAssignment(const std::vector<PackItem> &items,
                              const std::vector<sim::ServerId> &assignment,
                              size_t tick)
{
    // Power on every target first so boots overlap the migrations.
    for (size_t i = 0; i < items.size(); ++i) {
        sim::Server &dst = cluster_.server(assignment[i]);
        if (dst.platformPower(tick) == sim::PlatformPower::Off)
            dst.powerOn(tick);
    }
    for (size_t i = 0; i < items.size(); ++i) {
        if (assignment[i] != items[i].current) {
            cluster_.migrateVm(items[i].vm, assignment[i], tick,
                               params_.migration_ticks);
            ++stats_.migrations;
            if (obs_migrations_)
                obs_migrations_->add();
        }
    }
    if (params_.allow_power_off) {
        for (auto &srv : cluster_.servers()) {
            if (srv.vms().empty() && srv.isOn(tick)) {
                srv.powerOff();
                if (obs_poweroffs_)
                    obs_poweroffs_->add();
            }
        }
    }
}

void
VmController::saveState(ckpt::SectionWriter &w) const
{
    w.putU64(stats_.epochs);
    w.putU64(stats_.migrations);
    w.putU64(stats_.adoptions);
    w.putU64(stats_.infeasible);
    w.putDouble(stats_.last_est_power);
    w.putDouble(b_loc_);
    w.putDouble(b_enc_);
    w.putDouble(b_grp_);
    w.putDoubleVec(load_accum_);
    w.putDoubleVec(load_sq_accum_);
    w.putU64(forecasters_.size());
    for (const auto &f : forecasters_) {
        w.putDouble(f.level());
        w.putDouble(f.trend());
        w.putU64(f.observations());
    }
    w.putU64(obs_ticks_);
    degrade_.saveState(w);
    w.putBool(was_down_);
    w.putU64(loc_channels_.size());
    for (const auto &ch : loc_channels_)
        ch->saveState(w);
    w.putU64(enc_channels_.size());
    for (const auto &ch : enc_channels_)
        ch->saveState(w);
    w.putU64(grp_channels_.size());
    for (const auto &ch : grp_channels_)
        ch->saveState(w);
}

void
VmController::loadState(ckpt::SectionReader &r)
{
    stats_.epochs = static_cast<unsigned long>(r.getU64());
    stats_.migrations = static_cast<unsigned long>(r.getU64());
    stats_.adoptions = static_cast<unsigned long>(r.getU64());
    stats_.infeasible = static_cast<unsigned long>(r.getU64());
    stats_.last_est_power = r.getDouble();
    b_loc_ = r.getDouble();
    b_enc_ = r.getDouble();
    b_grp_ = r.getDouble();
    load_accum_ = r.getDoubleVec();
    load_sq_accum_ = r.getDoubleVec();
    auto n_forecasters = static_cast<size_t>(r.getU64());
    if (n_forecasters != forecasters_.size())
        util::fatal("VMC restore: snapshot has %zu forecasters, rebuilt "
                    "VMC has %zu — config mismatch",
                    n_forecasters, forecasters_.size());
    for (auto &f : forecasters_) {
        double level = r.getDouble();
        double trend = r.getDouble();
        auto count = static_cast<size_t>(r.getU64());
        f.restoreState(level, trend, count);
    }
    obs_ticks_ = static_cast<unsigned long>(r.getU64());
    degrade_.loadState(r);
    was_down_ = r.getBool();
    auto restoreChannels =
        [&r](std::vector<std::unique_ptr<bus::ViolationChannel>> &chs,
             const char *tier) {
            auto n = static_cast<size_t>(r.getU64());
            if (n != chs.size())
                util::fatal("VMC restore: snapshot has %zu %s violation "
                            "channels, rebuilt VMC has %zu",
                            n, tier, chs.size());
            for (auto &ch : chs)
                ch->loadState(r);
        };
    restoreChannels(loc_channels_, "local");
    restoreChannels(enc_channels_, "enclosure");
    restoreChannels(grp_channels_, "group");
}

} // namespace controllers
} // namespace nps
