#include "controllers/binpack.h"

#include <algorithm>
#include <map>

#include "util/logging.h"

namespace nps {
namespace controllers {

double
estimateBinPower(const PackBin &bin, double load)
{
    if (!bin.power)
        util::panic("estimateBinPower: bin %u has no model", bin.id);
    if (load <= 0.0)
        return bin.unused_watts;
    size_t state = bin.power->bestStateForDemand(load, bin.util_limit);
    return bin.power->powerForDemand(state, load);
}

AssignmentEval
evaluateAssignment(const std::vector<PackItem> &items,
                   const std::vector<PackBin> &bins,
                   const std::vector<sim::ServerId> &assignment,
                   const PackConstraints &constraints)
{
    if (assignment.size() != items.size())
        util::panic("evaluateAssignment: assignment size mismatch");

    std::map<sim::ServerId, size_t> bin_index;
    for (size_t b = 0; b < bins.size(); ++b)
        bin_index[bins[b].id] = b;

    std::vector<double> load(bins.size(), 0.0);
    for (size_t i = 0; i < items.size(); ++i) {
        auto it = bin_index.find(assignment[i]);
        if (it != bin_index.end())
            load[it->second] += items[i].load;
    }

    AssignmentEval eval;
    size_t num_enc = 0;
    for (const auto &b : bins) {
        if (b.enclosure != std::numeric_limits<unsigned>::max())
            num_enc = std::max(num_enc,
                               static_cast<size_t>(b.enclosure) + 1);
    }
    std::vector<double> enc_power(num_enc, 0.0);
    for (size_t b = 0; b < bins.size(); ++b) {
        double p = estimateBinPower(bins[b], load[b]);
        eval.est_power += p;
        if (load[b] > bins[b].capacity + 1e-12 ||
            p > bins[b].power_cap + 1e-12) {
            eval.feasible = false;
        }
        if (bins[b].enclosure != std::numeric_limits<unsigned>::max())
            enc_power[bins[b].enclosure] += p;
    }
    for (size_t e = 0;
         e < enc_power.size() && e < constraints.enclosure_caps.size();
         ++e) {
        if (enc_power[e] > constraints.enclosure_caps[e] + 1e-12)
            eval.feasible = false;
    }
    if (eval.est_power > constraints.group_cap + 1e-12)
        eval.feasible = false;
    return eval;
}

double
estimateAssignmentPower(const std::vector<PackItem> &items,
                        const std::vector<PackBin> &bins,
                        const std::vector<sim::ServerId> &assignment)
{
    return evaluateAssignment(items, bins, assignment, PackConstraints{})
        .est_power;
}

namespace {

/** Mutable packing state of one bin. */
struct BinState
{
    double load = 0.0;
    double power = 0.0;  //!< current estimate at `load` (or unused_watts)
    bool open = false;
};

/** Incremental feasibility/bookkeeping for the hierarchical caps. */
class CapLedger
{
  public:
    CapLedger(const std::vector<PackBin> &bins,
              const PackConstraints &constraints)
        : bins_(bins), constraints_(constraints)
    {
        size_t max_enc = 0;
        for (const auto &b : bins) {
            if (b.enclosure != kNoEnc)
                max_enc = std::max(max_enc,
                                   static_cast<size_t>(b.enclosure) + 1);
        }
        enc_power_.assign(
            std::max(max_enc, constraints.enclosure_caps.size()), 0.0);
        for (const auto &b : bins) {
            group_power_ += b.unused_watts;
            if (b.enclosure != kNoEnc)
                enc_power_[b.enclosure] += b.unused_watts;
        }
    }

    /** Would raising bin @p b's power by @p delta violate any cap? */
    bool
    fits(size_t b, double delta) const
    {
        const PackBin &bin = bins_[b];
        if (group_power_ + delta > constraints_.group_cap)
            return false;
        if (bin.enclosure != kNoEnc &&
            bin.enclosure < constraints_.enclosure_caps.size() &&
            enc_power_[bin.enclosure] + delta >
                constraints_.enclosure_caps[bin.enclosure]) {
            return false;
        }
        return true;
    }

    /** Commit a power delta on bin @p b. */
    void
    apply(size_t b, double delta)
    {
        group_power_ += delta;
        const PackBin &bin = bins_[b];
        if (bin.enclosure != kNoEnc && bin.enclosure < enc_power_.size())
            enc_power_[bin.enclosure] += delta;
    }

    double groupPower() const { return group_power_; }

    static constexpr unsigned kNoEnc =
        std::numeric_limits<unsigned>::max();

  private:
    const std::vector<PackBin> &bins_;
    const PackConstraints &constraints_;
    std::vector<double> enc_power_;
    double group_power_ = 0.0;
};

} // namespace

PackResult
packGreedy(std::vector<PackItem> items, const std::vector<PackBin> &bins,
           const PackConstraints &constraints)
{
    PackResult result;
    result.assignment.assign(items.size(), sim::kNoServer);

    std::map<sim::ServerId, size_t> bin_index;
    for (size_t b = 0; b < bins.size(); ++b) {
        if (!bin_index.emplace(bins[b].id, b).second)
            util::fatal("packGreedy: duplicate bin id %u", bins[b].id);
    }

    // Keep the original item order for the output; sort an index view by
    // descending load (first-fit-decreasing processing order).
    std::vector<size_t> order(items.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return items[a].load > items[b].load;
    });

    std::vector<BinState> state(bins.size());
    for (size_t b = 0; b < bins.size(); ++b)
        state[b].power = bins[b].unused_watts;
    CapLedger ledger(bins, constraints);

    // Bins eligible to be opened, cheapest boot first: on servers in id
    // order, then off servers.
    std::vector<size_t> open_order;
    for (size_t b = 0; b < bins.size(); ++b) {
        if (bins[b].on)
            open_order.push_back(b);
    }
    for (size_t b = 0; b < bins.size(); ++b) {
        if (!bins[b].on)
            open_order.push_back(b);
    }

    auto try_place = [&](size_t item_idx, size_t b) -> bool {
        const PackItem &item = items[item_idx];
        const PackBin &bin = bins[b];
        double new_load = state[b].load + item.load;
        if (new_load > bin.capacity + 1e-12)
            return false;
        double new_power = estimateBinPower(bin, new_load);
        if (new_power > bin.power_cap + 1e-12)
            return false;
        double delta = new_power - state[b].power;
        if (!ledger.fits(b, delta))
            return false;
        ledger.apply(b, delta);
        state[b].load = new_load;
        state[b].power = new_power;
        state[b].open = true;
        result.assignment[item_idx] = bin.id;
        return true;
    };

    for (size_t item_idx : order) {
        const PackItem &item = items[item_idx];

        // 1. Prefer the current host when it is already open (keeps the
        //    migration count down without blocking consolidation).
        auto cur_it = bin_index.find(item.current);
        size_t cur_bin = cur_it != bin_index.end() ? cur_it->second
                                                   : bins.size();
        if (cur_bin < bins.size() && state[cur_bin].open &&
            try_place(item_idx, cur_bin)) {
            continue;
        }

        // 2. Best fit among open bins: tightest remaining capacity that
        //    still fits.
        size_t best = bins.size();
        double best_slack = 0.0;
        for (size_t b = 0; b < bins.size(); ++b) {
            if (!state[b].open)
                continue;
            double slack = bins[b].capacity - state[b].load - item.load;
            if (slack < -1e-12)
                continue;
            if (best == bins.size() || slack < best_slack) {
                // Cheap pre-check; the authoritative check runs in
                // try_place.
                best = b;
                best_slack = slack;
            }
        }
        if (best < bins.size() && try_place(item_idx, best))
            continue;
        // The tightest bin may fail the power caps; scan the rest.
        bool placed = false;
        for (size_t b = 0; b < bins.size() && !placed; ++b) {
            if (state[b].open && b != best)
                placed = try_place(item_idx, b);
        }
        if (placed)
            continue;

        // 3. Open a new bin: the current host first, then on servers,
        //    then off servers.
        if (cur_bin < bins.size() && !state[cur_bin].open &&
            try_place(item_idx, cur_bin)) {
            continue;
        }
        for (size_t b : open_order) {
            if (!state[b].open && b != cur_bin &&
                try_place(item_idx, b)) {
                placed = true;
                break;
            }
        }
        if (placed)
            continue;

        // 4. Nothing satisfies the constraints: leave the VM where it is
        //    and mark the solution infeasible (the VMC will then keep the
        //    current placement or act on the buffers next epoch).
        result.feasible = false;
        result.assignment[item_idx] = item.current;
        if (cur_bin < bins.size()) {
            double new_load = state[cur_bin].load + item.load;
            double new_power = estimateBinPower(bins[cur_bin], new_load);
            ledger.apply(cur_bin, new_power - state[cur_bin].power);
            state[cur_bin].load = new_load;
            state[cur_bin].power = new_power;
            state[cur_bin].open = true;
        }
    }

    result.est_power = ledger.groupPower();
    for (const auto &s : state)
        result.bins_used += s.open ? 1 : 0;
    return result;
}

} // namespace controllers
} // namespace nps
