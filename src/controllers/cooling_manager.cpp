#include "controllers/cooling_manager.h"

#include <algorithm>

#include "util/logging.h"

namespace nps {
namespace controllers {

CoolingManager::CoolingManager(sim::Cluster &cluster,
                               std::vector<sim::CoolingZone> zones,
                               const Params &params)
    : cluster_(cluster),
      zones_(std::move(zones)),
      params_(params),
      name_("CM")
{
    if (zones_.empty())
        util::fatal("CM: no cooling zones");
    if (params_.gain <= 0.0 || params_.gain > 1.0)
        util::fatal("CM: gain %f out of (0,1]", params_.gain);
    for (const auto &zone : zones_) {
        for (sim::ServerId sid : zone.members()) {
            if (sid >= cluster_.numServers())
                util::fatal("CM: zone %s references server %u outside "
                            "the cluster", zone.name().c_str(), sid);
        }
        if (params_.target_c >= zone.params().redline_c)
            util::fatal("CM: target above zone %s redline",
                        zone.name().c_str());
    }
}

double
CoolingManager::zoneItPower(size_t z) const
{
    double watts = 0.0;
    for (sim::ServerId sid : zones_[z].members())
        watts += cluster_.server(sid).lastPower();
    return watts;
}

void
CoolingManager::observe(size_t tick)
{
    (void)tick;
    // Thermal integration runs every tick regardless of the control
    // interval; the CRAC electric draw accumulates into the facility
    // energy figure.
    for (size_t z = 0; z < zones_.size(); ++z) {
        zones_[z].step(zoneItPower(z));
        cooling_energy_ += zones_[z].cracElectric();
    }
}

void
CoolingManager::step(size_t tick)
{
    (void)tick;
    for (size_t z = 0; z < zones_.size(); ++z) {
        sim::CoolingZone &zone = zones_[z];
        // Feed-forward on the measured IT heat plus integral cleanup of
        // the temperature error, with the gain scaled to the zone's
        // physics so the loop pole is size-independent.
        double ff = zone.requiredExtraction(zoneItPower(z),
                                            params_.target_c);
        double k = params_.gain * zone.params().thermal_mass /
                   static_cast<double>(params_.period);
        double error = zone.temperature() - params_.target_c;
        double u = zone.extraction() + k * error;
        // Never fall below the feed-forward when running hot.
        if (error > 0.0)
            u = std::max(u, ff);
        zone.setExtraction(std::max(0.0, u));
    }
}

double
CoolingManager::lastCoolingPower() const
{
    double watts = 0.0;
    for (const auto &zone : zones_)
        watts += zone.cracElectric();
    return watts;
}

double
CoolingManager::hottestZone() const
{
    double hottest = 0.0;
    for (const auto &zone : zones_)
        hottest = std::max(hottest, zone.temperature());
    return hottest;
}

bool
CoolingManager::anyRedline() const
{
    for (const auto &zone : zones_) {
        if (zone.redlined())
            return true;
    }
    return false;
}

} // namespace controllers
} // namespace nps
