/**
 * @file
 * Electrical power capper (CAP): the optional fast overwriter of Figure 2
 * and Section 6, extension (2).
 *
 * Thermal budgets tolerate bounded transient violations; an *electrical*
 * budget (a fuse) does not. The CAP therefore runs in parallel with the
 * EC on the fastest loop and clamps the P-state directly — bypassing the
 * nested r_ref channel — whenever measured power exceeds the electrical
 * limit, choosing the fastest state whose predicted power at the current
 * load stays under the limit. It releases its clamp (returns authority to
 * the EC) as soon as the EC's own choice is safe again.
 */

#ifndef NPS_CONTROLLERS_ELECTRICAL_CAPPER_H
#define NPS_CONTROLLERS_ELECTRICAL_CAPPER_H

#include <string>

#include "bus/control_link.h"
#include "controllers/server_manager.h"
#include "sim/engine.h"
#include "sim/server.h"

namespace nps {
namespace controllers {

/**
 * The per-server electrical capper.
 */
class ElectricalCapper : public sim::Actor, public ViolationTracker
{
  public:
    /** Tunable parameters. */
    struct Params
    {
        unsigned period = 1;  //!< fastest loop in the architecture
        /**
         * Release hysteresis: the clamp is lifted only when the EC's
         * desired state is predicted to stay this fraction below the
         * limit.
         */
        double release_margin = 0.05;
    };

    /**
     * @param server The managed server.
     * @param limit_watts The hard electrical limit.
     * @param params Controller parameters.
     */
    ElectricalCapper(sim::Server &server, double limit_watts,
                     const Params &params);

    /// @name sim::Actor
    /// @{
    const std::string &name() const override { return name_; }
    unsigned period() const override { return params_.period; }
    void observe(size_t tick) override;
    void step(size_t tick) override;
    /** Shardable: touches only its own server. */
    long shardKey() const override
    {
        return static_cast<long>(server_.id());
    }
    /// @}

    /** The electrical limit (watts). */
    double limit() const { return limit_; }

    /** True while the capper is overriding the EC's P-state choice. */
    bool clamping() const { return clamping_; }

    /// @name Fault injection
    /// @{

    /** Attach the fault oracle (null = fault-free, the default). */
    void setFaultInjector(const fault::FaultInjector *faults)
    {
        faults_ = faults;
    }

    /** Degradation counters accumulated by this capper. */
    const fault::DegradeStats &degradeStats() const { return degrade_; }

    /// @}

    /** Mirror clamp engage/release telemetry into @p log. */
    void attachControlLog(bus::ControlPlaneLog *log)
    {
        telemetry_.attachLog(log);
    }

    /**
     * Route the clamp telemetry link through @p transport (null
     * detaches); it is owned by (Cap, server id). Wiring time only.
     */
    void attachTransport(bus::Transport *transport,
                         const bus::OwnerFn &owner)
    {
        const int rank =
            owner ? owner(bus::OwnerLevel::Cap,
                          static_cast<long>(server_.id()))
                  : 0;
        telemetry_.setTransport(transport, rank);
    }

    /**
     * Register this capper's metrics series and decision-trace channel.
     * Either argument may be null; wiring time only (not thread-safe).
     */
    void attachObs(obs::MetricsRegistry *metrics, obs::TraceSink *trace);

    /** Serialize mutable controller state (checkpointing). */
    void
    saveState(ckpt::SectionWriter &w) const
    {
        ViolationTracker::saveState(w);
        telemetry_.saveState(w);
        w.putBool(clamping_);
        degrade_.saveState(w);
        w.putBool(was_down_);
    }

    /** Restore mutable controller state (checkpoint restore). */
    void
    loadState(ckpt::SectionReader &r)
    {
        ViolationTracker::loadState(r);
        telemetry_.loadState(r);
        clamping_ = r.getBool();
        degrade_.loadState(r);
        was_down_ = r.getBool();
    }

  private:
    /** Publish clamp transitions on the telemetry channel. */
    void publishClamp(bool clamping, size_t tick);

    sim::Server &server_;
    double limit_;
    Params params_;
    std::string name_;
    bus::TelemetryLink telemetry_;
    bool clamping_ = false;
    const fault::FaultInjector *faults_ = nullptr;
    fault::DegradeStats degrade_;
    bool was_down_ = false; //!< edge detector for restarts

    obs::Counter *obs_engagements_ = nullptr;
    obs::TraceChannel *obs_trace_ = nullptr;
};

} // namespace controllers
} // namespace nps

#endif // NPS_CONTROLLERS_ELECTRICAL_CAPPER_H
