/**
 * @file
 * Memory Manager (MM): the multi-actuator extension of Section 6 (3) —
 * "multiple actuators at a given level (e.g., CPU, memory, and disk
 * power controllers interacting at the platform level)".
 *
 * A second per-server actuator next to the EC's P-state knob: engages
 * the platform's memory low-power mode (a fixed power trim at a small
 * capacity cost) whenever utilization has stayed comfortably below a
 * threshold, and releases it with hysteresis when load returns. The
 * interaction with the EC needs no explicit protocol: the MM's capacity
 * cost shows up in the utilization the EC measures, so the nested loops
 * compose the same way the SM/EC pair does — the multi-input,
 * single-metric special case of a MIMO design.
 */

#ifndef NPS_CONTROLLERS_MEMORY_MANAGER_H
#define NPS_CONTROLLERS_MEMORY_MANAGER_H

#include <string>

#include "bus/control_link.h"
#include "sim/engine.h"
#include "sim/server.h"

namespace nps {
namespace obs {
class Counter;
class MetricsRegistry;
class TraceChannel;
class TraceSink;
} // namespace obs

namespace controllers {

/**
 * The per-server memory low-power controller.
 */
class MemoryManager : public sim::Actor
{
  public:
    /** Tunable parameters. */
    struct Params
    {
        unsigned period = 10;       //!< control interval
        /** Engage when apparent utilization stays below this. */
        double engage_below = 0.55;
        /** Release when apparent utilization rises above this. */
        double release_above = 0.80;
        /** Consecutive qualifying steps required before engaging. */
        unsigned engage_patience = 3;
    };

    /** @param server the managed server; must outlive the controller. */
    MemoryManager(sim::Server &server, const Params &params);

    /// @name sim::Actor
    /// @{
    const std::string &name() const override { return name_; }
    unsigned period() const override { return params_.period; }
    void step(size_t tick) override;
    /** Shardable: touches only its own server. */
    long shardKey() const override
    {
        return static_cast<long>(server_.id());
    }
    /// @}

    /** Active parameters. */
    const Params &params() const { return params_; }

    /** Number of engage transitions performed. */
    unsigned long engagements() const { return engagements_; }

    /** Mirror engage/release telemetry into @p log. */
    void attachControlLog(bus::ControlPlaneLog *log)
    {
        telemetry_.attachLog(log);
    }

    /**
     * Route the engage/release telemetry link through @p transport
     * (null detaches); it is owned by (Mem, server id). Wiring time
     * only.
     */
    void attachTransport(bus::Transport *transport,
                         const bus::OwnerFn &owner)
    {
        const int rank =
            owner ? owner(bus::OwnerLevel::Mem,
                          static_cast<long>(server_.id()))
                  : 0;
        telemetry_.setTransport(transport, rank);
    }

    /**
     * Register this MM's metrics series and decision-trace channel.
     * Either argument may be null; wiring time only (not thread-safe).
     */
    void attachObs(obs::MetricsRegistry *metrics, obs::TraceSink *trace);

    /** Serialize mutable controller state (checkpointing). */
    void
    saveState(ckpt::SectionWriter &w) const
    {
        telemetry_.saveState(w);
        w.putU32(quiet_steps_);
        w.putU64(engagements_);
    }

    /** Restore mutable controller state (checkpoint restore). */
    void
    loadState(ckpt::SectionReader &r)
    {
        telemetry_.loadState(r);
        quiet_steps_ = r.getU32();
        engagements_ = static_cast<unsigned long>(r.getU64());
    }

  private:
    /** Publish a mode transition on the telemetry channel. */
    void setMode(bool low, size_t tick);

    sim::Server &server_;
    Params params_;
    std::string name_;
    bus::TelemetryLink telemetry_;
    unsigned quiet_steps_ = 0;
    unsigned long engagements_ = 0;

    obs::Counter *obs_engagements_ = nullptr;
    obs::TraceChannel *obs_trace_ = nullptr;
};

} // namespace controllers
} // namespace nps

#endif // NPS_CONTROLLERS_MEMORY_MANAGER_H
