/**
 * @file
 * Efficiency Controller (EC): per-server average-power tracking.
 *
 * The innermost loop of the architecture (Section 3.1). Treats the server
 * as a container to be used at a target fraction r_ref of its capacity:
 * utilization below target means the container can shrink, so the EC
 * lowers the clock frequency (deeper P-state); utilization above target
 * grows it again. The integral control law (Figure 6, Eq. EC) is
 *
 *     f(k) = f(k-1) - lambda * (f_C(k-1) / r_ref) * (r_ref - r(k-1))
 *
 * with the self-tuning gain lambda * f_C / r_ref and global stability for
 * 0 < lambda < 1 / r_ref (Appendix A, Proposition A).
 *
 * Coordination: the SM actuates this loop solely through setReference().
 */

#ifndef NPS_CONTROLLERS_EFFICIENCY_H
#define NPS_CONTROLLERS_EFFICIENCY_H

#include <string>

#include "control/integral.h"
#include "control/loop.h"
#include "fault/injector.h"
#include "sim/engine.h"
#include "sim/server.h"

namespace nps {
namespace obs {
class Counter;
class MetricsRegistry;
class TraceChannel;
class TraceSink;
} // namespace obs

namespace controllers {

/**
 * Objective variants of the EC (Section 6, extension 6).
 */
enum class EcObjective
{
    /** Track the utilization reference (the paper's base design). */
    UtilizationTracking,
    /**
     * Minimize an energy-delay product estimate instead: pick the P-state
     * minimizing power / relative-speed for the recent demand, subject to
     * not saturating beyond the reference.
     */
    EnergyDelay,
};

/**
 * The per-server efficiency controller.
 */
class EfficiencyController : public sim::Actor, public ctl::ControlLoop
{
  public:
    /** Tunable parameters (defaults follow Figure 5). */
    struct Params
    {
        double lambda = 0.8;     //!< scaling parameter of the gain
        double r_ref = 0.75;     //!< initial utilization target
        unsigned period = 1;     //!< control interval T_ec
        EcObjective objective = EcObjective::UtilizationTracking;
        /**
         * When true (default) the continuous frequency is quantized to the
         * slowest P-state that still covers it; when false, to the nearest
         * P-state.
         */
        bool quantize_up = true;
    };

    /**
     * @param server The managed server; must outlive the controller.
     * @param params Controller parameters. fatal() when lambda violates
     *               the global stability bound for the initial r_ref.
     */
    EfficiencyController(sim::Server &server, const Params &params);

    /// @name sim::Actor
    /// @{
    const std::string &name() const override { return name_; }
    unsigned period() const override { return params_.period; }
    void step(size_t tick) override;
    /** Shardable: touches only its own server. */
    long shardKey() const override
    {
        return static_cast<long>(server_.id());
    }
    /// @}

    /** The continuous (pre-quantization) frequency state, MHz. */
    double continuousFreq() const { return freq_.value(); }

    /** The managed server. */
    const sim::Server &server() const { return server_; }

    /** Active parameters. */
    const Params &params() const { return params_; }

    /// @name Fault injection
    /// @{

    /** Attach the fault oracle (null = fault-free, the default). */
    void setFaultInjector(const fault::FaultInjector *faults)
    {
        faults_ = faults;
    }

    /** Degradation counters accumulated by this EC. */
    const fault::DegradeStats &degradeStats() const { return degrade_; }

    /// @}

    /**
     * Register this EC's metrics series and decision-trace channel.
     * Either argument may be null; wiring time only (not thread-safe).
     */
    void attachObs(obs::MetricsRegistry *metrics, obs::TraceSink *trace);

    /** Serialize mutable controller state (checkpointing). */
    void saveState(ckpt::SectionWriter &w) const;

    /** Restore mutable controller state (checkpoint restore). */
    void loadState(ckpt::SectionReader &r);

  protected:
    /// @name ctl::ControlLoop hooks
    /// @{
    double measure() override;
    double control(double error, double measurement) override;
    void actuate(double value) override;
    /// @}

  private:
    /** One step of the energy-delay objective variant. */
    void stepEnergyDelay(size_t tick);

    /**
     * The utilization sensor: @p raw perturbed by any active telemetry
     * fault (additive noise, or frozen at the last healthy reading).
     */
    double sensedUtil(size_t tick, double raw);

    /** Cold restart after an outage, as firmware does: P0, fresh target. */
    void restartCold();

    sim::Server &server_;
    Params params_;
    std::string name_;
    ctl::IntegralController freq_;
    const fault::FaultInjector *faults_ = nullptr;
    fault::DegradeStats degrade_;
    size_t cur_tick_ = 0;     //!< tick of the in-flight step (for hooks)
    double held_util_ = 0.0;  //!< last healthy sensor reading
    bool was_down_ = false;   //!< edge detector for restarts

    obs::Counter *obs_pstate_changes_ = nullptr;
    obs::Counter *obs_restarts_ = nullptr;
    obs::Counter *obs_stuck_ = nullptr;
    obs::TraceChannel *obs_trace_ = nullptr;
};

} // namespace controllers
} // namespace nps

#endif // NPS_CONTROLLERS_EFFICIENCY_H
