/**
 * @file
 * Enclosure Manager (EM): power capping across the blades of one
 * enclosure.
 *
 * Each interval the EM compares the enclosure's power draw with its
 * effective budget and re-provisions per-blade budgets for the next epoch
 * (Eq. EM: proportional share by default; other policies pluggable). The
 * blades' SMs take the min of this recommendation and their own local
 * budget — that min() *is* the coordination interface.
 */

#ifndef NPS_CONTROLLERS_ENCLOSURE_MANAGER_H
#define NPS_CONTROLLERS_ENCLOSURE_MANAGER_H

#include <memory>
#include <string>
#include <vector>

#include "bus/control_link.h"
#include "controllers/policies.h"
#include "controllers/server_manager.h"
#include "fault/injector.h"
#include "sim/cluster.h"
#include "sim/engine.h"
#include "util/random.h"

namespace nps {
namespace obs {
class Counter;
class Gauge;
class Histogram;
class MetricsRegistry;
class TraceChannel;
class TraceSink;
} // namespace obs

namespace controllers {

/**
 * The per-enclosure power capper.
 */
class EnclosureManager : public sim::Actor, public ViolationTracker
{
  public:
    /** Tunable parameters (defaults follow Figure 5). */
    struct Params
    {
        unsigned period = 25;  //!< control interval T_em
        DivisionPolicy policy = DivisionPolicy::Proportional;
        /** Per-blade priorities (Priority policy only; defaults to 0). */
        std::vector<int> priorities;
        uint64_t seed = 1;     //!< RNG seed (Random policy)
        /** Smoothing horizon (ticks) of the short demand estimate. */
        double demand_horizon = 10.0;
        /** Smoothing horizon of the History policy's long estimate. */
        double history_horizon = 200.0;
        /**
         * Budget-lease length in ticks on the GM→EM channel: past it a
         * silent GM makes the EM degrade to lease_fallback * CAP_ENC.
         * 0 disables leasing (the pre-fault behavior).
         */
        unsigned lease_ticks = 0;
        /** Fraction of CAP_ENC enforced while the lease is expired. */
        double lease_fallback = 1.0;
    };

    /**
     * @param cluster    The cluster (for power sensors and budget data).
     * @param enclosure  Which enclosure this EM manages.
     * @param blades     The SMs of the member blades, in member order.
     * @param static_cap The enclosure's own budget CAP_ENC.
     * @param params     Controller parameters.
     */
    EnclosureManager(sim::Cluster &cluster, sim::EnclosureId enclosure,
                     std::vector<ServerManager *> blades,
                     double static_cap, const Params &params);

    /// @name sim::Actor
    /// @{
    const std::string &name() const override { return name_; }
    unsigned period() const override { return params_.period; }
    void observe(size_t tick) override;
    void step(size_t tick) override;
    /// @}

    /** Budget recommendation from the GM; effective = min(static, it). */
    void setBudget(double watts);

    /**
     * Timestamped variant: additionally refreshes the GM budget lease
     * and adopts the grant's cascade trace id as this EM's context.
     */
    void setBudget(double watts, size_t tick, uint32_t trace = 0);

    /** The budget currently being enforced (ignoring lease expiry). */
    double effectiveCap() const;

    /**
     * The budget divided at @p tick: effectiveCap(), unless the GM lease
     * has lapsed, in which case min(CAP_ENC, lease_fallback * CAP_ENC).
     */
    double currentCap(size_t tick) const;

    /** The enclosure's own static budget CAP_ENC. */
    double staticCap() const { return static_cap_; }

    /** The managed enclosure id. */
    sim::EnclosureId enclosureId() const { return enclosure_; }

    /** The most recent per-blade grants (empty before the first step). */
    const std::vector<double> &lastGrants() const { return last_grants_; }

    /// @name Fault injection
    /// @{

    /**
     * Attach the fault oracle (null = fault-free, the default). The
     * oracle is propagated to the EM→SM budget links, where drop/stale
     * faults are actually applied.
     */
    void setFaultInjector(const fault::FaultInjector *faults);

    /** Degradation counters accumulated by this EM. */
    const fault::DegradeStats &degradeStats() const { return degrade_; }

    /// @}

    /**
     * Attach the stream-liveness oracle of an online run (src/stream/)
     * to the EM→SM budget links: grants to a blade whose telemetry
     * stream is silent are dropped like a lost link. Null detaches.
     */
    void setStreamHealth(const fault::StreamHealth *health);

    /** Mirror the EM→SM budget links into @p log; null detaches. */
    void attachControlLog(bus::ControlPlaneLog *log);

    /** Record the EM→SM budget hops into @p tracer. */
    void attachCascade(bus::CascadeTracer *tracer);

    /** Cascade trace id of the last GM grant received (0 = none). */
    uint32_t cascadeStamp() const override { return trace_ctx_; }

    /**
     * Route the EM→SM budget links through @p transport (null
     * detaches); they are owned by (Em, enclosureId()). Wiring time
     * only, before the engine runs.
     */
    void attachTransport(bus::Transport *transport,
                         const bus::OwnerFn &owner);

    /**
     * Register this EM's metrics series and decision-trace channel.
     * Either argument may be null; wiring time only (not thread-safe).
     */
    void attachObs(obs::MetricsRegistry *metrics, obs::TraceSink *trace);

    /** Serialize mutable controller state (checkpointing). */
    void saveState(ckpt::SectionWriter &w) const;

    /** Restore mutable controller state (checkpoint restore). */
    void loadState(ckpt::SectionReader &r);

  private:
    /** @return true when the GM budget lease has lapsed as of @p tick. */
    bool leaseLapsed(size_t tick) const;

    /** Cold restart after an outage: forget estimates and grant state. */
    void restartCold(size_t tick);

    sim::Cluster &cluster_;
    sim::EnclosureId enclosure_;
    std::vector<ServerManager *> blades_;
    /**
     * Server ids of blades_, in member order: the per-blade estimate
     * loop reads the cluster's SoA power array through these ids
     * instead of chasing SM -> Server -> store pointers (identical
     * values; a linear scan at fleet scale).
     */
    std::vector<sim::ServerId> blade_ids_;
    double static_cap_;
    double dynamic_cap_;
    Params params_;
    std::string name_;
    util::Rng rng_;
    std::vector<double> demand_ewma_;
    std::vector<double> history_ewma_;
    std::vector<double> last_grants_;
    /** One budget channel per blade, in member order. */
    std::vector<std::unique_ptr<bus::BudgetLink>> grant_links_;
    const fault::FaultInjector *faults_ = nullptr;
    fault::DegradeStats degrade_;
    size_t budget_tick_ = 0;     //!< receipt tick of the live GM grant
    uint32_t trace_ctx_ = 0;     //!< cascade trace id of that grant
    bool lease_expired_ = false; //!< edge detector for lease_expiries
    bool was_down_ = false;      //!< edge detector for restarts

    obs::Counter *obs_divisions_ = nullptr;
    obs::Counter *obs_lease_expiries_ = nullptr;
    obs::Counter *obs_restarts_ = nullptr;
    obs::Gauge *obs_cap_ = nullptr;
    obs::Histogram *obs_grants_ = nullptr;
    obs::TraceChannel *obs_trace_ = nullptr;
};

} // namespace controllers
} // namespace nps

#endif // NPS_CONTROLLERS_ENCLOSURE_MANAGER_H
