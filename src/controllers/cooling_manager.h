/**
 * @file
 * Cooling Manager (CM): temperature control of the cooling zones — the
 * cooling-domain peer of the power-capping hierarchy (Section 7 future
 * work, realized).
 *
 * Per zone, an integral loop plus a feed-forward term drives the CRAC
 * extraction so the zone air tracks a temperature target: the
 * feed-forward matches the measured IT heat, and the integral term
 * cleans up the residual error. Because the controller consumes only
 * the zone's measured IT power and temperature, it composes with the
 * power stack the same way the capping levels compose with each other:
 * when coordination lowers IT power, cooling energy follows
 * automatically.
 */

#ifndef NPS_CONTROLLERS_COOLING_MANAGER_H
#define NPS_CONTROLLERS_COOLING_MANAGER_H

#include <memory>
#include <string>
#include <vector>

#include "sim/cluster.h"
#include "sim/cooling.h"
#include "sim/engine.h"

namespace nps {
namespace controllers {

/**
 * The facility-side cooling controller. Also owns the zones' thermal
 * integration (their step() runs in observe(), every tick).
 */
class CoolingManager : public sim::Actor
{
  public:
    /** Tunable parameters. */
    struct Params
    {
        unsigned period = 10;    //!< CRAC adjustment interval
        double target_c = 27.0;  //!< zone temperature target
        /**
         * Dimensionless integral gain in (0, 1]: the fraction of the
         * temperature error corrected per control interval. The
         * per-zone watts-per-degree gain is derived as
         * gain * thermal_mass / period, so the loop pole is placed
         * independently of the zone's physical size.
         */
        double gain = 0.5;
    };

    /**
     * @param cluster The cluster whose servers heat the zones.
     * @param zones   The cooling zones (ownership transferred).
     * @param params  Controller parameters.
     */
    CoolingManager(sim::Cluster &cluster,
                   std::vector<sim::CoolingZone> zones,
                   const Params &params);

    /// @name sim::Actor
    /// @{
    const std::string &name() const override { return name_; }
    unsigned period() const override { return params_.period; }
    void observe(size_t tick) override;
    void step(size_t tick) override;
    /// @}

    /** The zones (for inspection). */
    const std::vector<sim::CoolingZone> &zones() const { return zones_; }

    /** Total CRAC electrical power in the last tick (watts). */
    double lastCoolingPower() const;

    /** Accumulated CRAC electrical energy (watt-ticks). */
    double coolingEnergy() const { return cooling_energy_; }

    /** Hottest zone temperature right now. */
    double hottestZone() const;

    /** True when any zone ever crossed its redline. */
    bool anyRedline() const;

  private:
    /** IT power currently dumped into zone @p z. */
    double zoneItPower(size_t z) const;

    sim::Cluster &cluster_;
    std::vector<sim::CoolingZone> zones_;
    Params params_;
    std::string name_;
    double cooling_energy_ = 0.0;
};

} // namespace controllers
} // namespace nps

#endif // NPS_CONTROLLERS_COOLING_MANAGER_H
