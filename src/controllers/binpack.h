/**
 * @file
 * Greedy bin-packing placement optimizer for the VM controller.
 *
 * Approximates the paper's 0-1 integer program (Eq. VMCs): minimize total
 * estimated power plus migration cost, subject to per-server capacity
 * (Eq. 2) and local / enclosure / group power-budget constraints with
 * violation-feedback buffers (Eqs. 3-5). Items are placed best-fit
 * decreasing, preferring an item's current host among feasible open bins
 * to limit migrations.
 */

#ifndef NPS_CONTROLLERS_BINPACK_H
#define NPS_CONTROLLERS_BINPACK_H

#include <limits>
#include <vector>

#include "model/power_model.h"
#include "sim/vm.h"

namespace nps {
namespace controllers {

/** One VM to place. */
struct PackItem
{
    sim::VmId vm = 0;
    /** Load estimate in full-speed utilization units, overheads included. */
    double load = 0.0;
    /** The server currently hosting the VM. */
    sim::ServerId current = sim::kNoServer;
};

/** One candidate server (bin). */
struct PackBin
{
    sim::ServerId id = 0;
    /** Power model used for estimates (not owned, must outlive packing). */
    const model::PowerModel *power = nullptr;
    /** Enclosure index, or sim::Cluster::kNoEnclosure-equivalent. */
    unsigned enclosure = std::numeric_limits<unsigned>::max();
    /** True when the platform is currently on (no boot needed). */
    bool on = true;
    /** Maximum packed load (full-speed units), e.g. 0.75. */
    double capacity = 0.75;
    /** Buffered local power constraint; infinity() when unconstrained. */
    double power_cap = std::numeric_limits<double>::infinity();
    /** Estimated draw when this bin ends up unused (off or idle watts). */
    double unused_watts = 0.0;
    /** Apparent-utilization assumption for power estimates (EC target). */
    double util_limit = 0.75;
};

/** Group/enclosure-level constraints. */
struct PackConstraints
{
    /** Buffered per-enclosure caps, indexed by enclosure id; empty
     * disables enclosure constraints. */
    std::vector<double> enclosure_caps;
    /** Buffered group cap; infinity() disables it. */
    double group_cap = std::numeric_limits<double>::infinity();
};

/** Result of one packing run. */
struct PackResult
{
    /** Chosen server per item (parallel to the input item vector). */
    std::vector<sim::ServerId> assignment;
    /** Estimated total power of the placement, unused bins included. */
    double est_power = 0.0;
    /** Number of bins that received at least one item. */
    size_t bins_used = 0;
    /** False when some item could not be placed within the constraints
     * (it is then left on its current server). */
    bool feasible = true;
};

/**
 * Estimated power draw of a bin carrying @p load: the cheapest P-state
 * that keeps apparent utilization within the bin's util_limit (assuming
 * the EC will pick it), evaluated through the linear power model.
 */
double estimateBinPower(const PackBin &bin, double load);

/** Power estimate and constraint compliance of a whole assignment. */
struct AssignmentEval
{
    /** Estimated total power, unused bins included. */
    double est_power = 0.0;
    /** True when every bin satisfies capacity and every power cap. */
    bool feasible = true;
};

/**
 * Evaluate an explicit assignment (one server id per item) over the given
 * bins with the same estimator the packer uses — used to price the
 * *current* placement and test whether it still satisfies the (buffered)
 * constraints. Items assigned to unknown bins are ignored.
 */
AssignmentEval evaluateAssignment(const std::vector<PackItem> &items,
                                  const std::vector<PackBin> &bins,
                                  const std::vector<sim::ServerId>
                                      &assignment,
                                  const PackConstraints &constraints);

/** Convenience wrapper returning only the power estimate. */
double estimateAssignmentPower(const std::vector<PackItem> &items,
                               const std::vector<PackBin> &bins,
                               const std::vector<sim::ServerId> &assignment);

/**
 * Best-fit-decreasing packing under the given constraints.
 *
 * @param items       VMs to place (copied; sorted internally).
 * @param bins        Candidate servers.
 * @param constraints Enclosure/group caps.
 */
PackResult packGreedy(std::vector<PackItem> items,
                      const std::vector<PackBin> &bins,
                      const PackConstraints &constraints);

} // namespace controllers
} // namespace nps

#endif // NPS_CONTROLLERS_BINPACK_H
