/**
 * @file
 * Decision tracing: structured per-tick "why did the controller do
 * that" events, one ring-buffered channel per controller.
 *
 * Channels follow the ControlPlaneLog determinism recipe: each
 * controller registers its channel once at wiring time (single-
 * threaded) and receives a private TraceChannel pointer it alone
 * appends to, so shardable actors can emit from worker threads without
 * locks. Every event carries (tick, seq, text); merged() sorts by
 * (tick, channel name, seq), which makes the merged output bit-
 * identical at any engine thread count.
 *
 * Each channel is a bounded ring: when full, the oldest event is
 * dropped and a per-channel dropped counter advances. Because a channel
 * is only ever written by its owner in tick order, eviction is itself
 * deterministic.
 */

#ifndef NPS_OBS_DECISION_TRACE_H
#define NPS_OBS_DECISION_TRACE_H

#include <cstdarg>
#include <cstdint>
#include <deque>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "ckpt/snapshot.h"

namespace nps {
namespace obs {

/** One traced decision. */
struct TraceEvent
{
    std::uint64_t tick = 0;
    std::uint64_t seq = 0; //!< per-channel emission index
    std::string text;
};

/**
 * One controller's private event ring. Obtained from
 * TraceSink::channel(); never constructed directly.
 */
class TraceChannel
{
  public:
    /** Append a printf-style event at @p tick, evicting the oldest
     * event if the ring is full. */
    void emit(std::uint64_t tick, const char *fmt, ...)
        __attribute__((format(printf, 3, 4)));

    const std::string &name() const { return name_; }
    const std::deque<TraceEvent> &events() const { return events_; }
    /** Events evicted from the ring so far. */
    std::uint64_t dropped() const { return dropped_; }
    /** Events ever emitted (retained + dropped). */
    std::uint64_t emitted() const { return next_seq_; }

  private:
    friend class TraceSink;

    TraceChannel(std::string name, size_t capacity);

    std::string name_;
    size_t capacity_;
    std::uint64_t next_seq_ = 0;
    std::uint64_t dropped_ = 0;
    std::deque<TraceEvent> events_;
};

/**
 * Owns every trace channel and produces the deterministic merged view.
 */
class TraceSink
{
  public:
    /** @param capacity per-channel ring capacity (events); > 0. */
    explicit TraceSink(size_t capacity = kDefaultCapacity);

    static constexpr size_t kDefaultCapacity = 65536;

    /**
     * Only channels whose name contains @p substring are recorded;
     * others get a null channel. Must be set before any channel() call.
     * Empty (the default) records everything.
     */
    void setFilter(const std::string &substring);

    /**
     * Register channel @p name and return its private ring, or nullptr
     * when the name is rejected by the filter (callers skip emission on
     * a null channel). Wiring-time only, not thread-safe; registering
     * the same name twice is fatal.
     */
    TraceChannel *channel(const std::string &name);

    /** Registered (unfiltered) channels, in registration order. */
    const std::vector<std::unique_ptr<TraceChannel>> &channels() const
    {
        return channels_;
    }

    size_t numChannels() const { return channels_.size(); }
    /** Retained events across all channels. */
    size_t totalEvents() const;
    /** Evicted events across all channels. */
    std::uint64_t totalDropped() const;

    /** One entry of the merged view. */
    struct Entry
    {
        const TraceChannel *channel = nullptr;
        const TraceEvent *event = nullptr;
    };

    /**
     * All retained events in one deterministic order: (tick, channel
     * name, seq). Independent of registration order and thread count.
     */
    std::vector<Entry> merged() const;

    /** Write the merged view as CSV: tick,channel,seq,event. */
    void writeCsv(std::ostream &out) const;

    /** Serialize every channel's ring, counters included. */
    void saveState(ckpt::SectionWriter &w) const;

    /**
     * Restore rings into already-registered channels matched by name.
     * Fatal when the snapshot's channel set differs from the rebuilt
     * registration (config mismatch).
     */
    void loadState(ckpt::SectionReader &r);

  private:
    size_t capacity_;
    std::string filter_;
    std::vector<std::unique_ptr<TraceChannel>> channels_;
};

} // namespace obs
} // namespace nps

#endif // NPS_OBS_DECISION_TRACE_H
