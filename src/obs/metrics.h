/**
 * @file
 * MetricsRegistry: named counters, gauges, and histograms with
 * deterministic, thread-count-invariant export.
 *
 * The registry follows the same determinism recipe as
 * bus::ControlPlaneLog: every instrument is registered once at wiring
 * time (single-threaded) and hands its owner a private cell pointer.
 * At runtime each owner — including shardable actors running on worker
 * threads — writes only to its own cells, so recording is lock-free and
 * contention-free, and no cross-thread ordering can leak into the
 * values. Export sorts series by (family, label), making the text
 * byte-identical for any engine thread count.
 *
 * Families group series of one kind under one name, Prometheus-style:
 * a counter family "nps_sm_grant_clamps_total" may hold one series per
 * server manager, labelled by controller id ("SM/3"). Export formats
 * are the Prometheus text exposition and JSON.
 */

#ifndef NPS_OBS_METRICS_H
#define NPS_OBS_METRICS_H

#include <cstdint>
#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "ckpt/snapshot.h"

namespace nps {
namespace obs {

/** Monotonically increasing count of events. */
class Counter
{
  public:
    void add(double v = 1.0) { value_ += v; }
    double value() const { return value_; }

    /** Overwrite the count verbatim (checkpoint restore only). */
    void restore(double v) { value_ = v; }

  private:
    double value_ = 0.0;
};

/** Point-in-time value; overwritten, not accumulated. */
class Gauge
{
  public:
    void set(double v) { value_ = v; }
    double value() const { return value_; }

  private:
    double value_ = 0.0;
};

/**
 * Fixed-bucket histogram. Bucket upper bounds are set at registration;
 * an implicit +Inf bucket catches the rest. Export is cumulative, as in
 * the Prometheus exposition format.
 */
class Histogram
{
  public:
    explicit Histogram(std::vector<double> bounds);

    void observe(double v);

    const std::vector<double> &bounds() const { return bounds_; }
    /** Per-bucket (non-cumulative) counts; last entry is +Inf. */
    const std::vector<std::uint64_t> &counts() const { return counts_; }
    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }

    /** Overwrite buckets and totals verbatim (checkpoint restore only). */
    void restore(std::vector<std::uint64_t> counts, std::uint64_t count,
                 double sum);

  private:
    std::vector<double> bounds_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
};

/**
 * The registry of all instruments. Register at wiring time, record at
 * runtime through the returned cell pointers, export after the run.
 */
class MetricsRegistry
{
  public:
    enum class Kind
    {
        Counter,
        Gauge,
        Histogram,
    };

    /**
     * Register a counter series @p label under family @p family and
     * return its private cell. Must be called single-threaded, before
     * the engine runs. Registering the same (family, label) pair twice,
     * or reusing a family name with a different kind or help string, is
     * fatal.
     */
    Counter *counter(const std::string &family, const std::string &label,
                     const std::string &help);

    /** Register a gauge series; same contract as counter(). */
    Gauge *gauge(const std::string &family, const std::string &label,
                 const std::string &help);

    /**
     * Register a histogram series; same contract as counter(). All
     * series of one family must pass identical @p bounds.
     */
    Histogram *histogram(const std::string &family,
                         const std::string &label, const std::string &help,
                         const std::vector<double> &bounds);

    /** Number of registered families. */
    size_t numFamilies() const { return families_.size(); }

    /** Total number of registered series across all families. */
    size_t numSeries() const;

    /**
     * Sum of a counter/gauge family's series values, in registration
     * order. Fatal if the family does not exist or is a histogram.
     */
    double total(const std::string &family) const;

    /**
     * Value of series @p label in @p family, or @p fallback when the
     * family or series does not exist. Histogram series report their
     * observation count.
     */
    double value(const std::string &family, const std::string &label,
                 double fallback = 0.0) const;

    /**
     * Runtime (wall-clock) families are prefixed "nps_rt_": their values
     * are real-time measurements, so they are excluded from everything
     * that must be deterministic — checkpoints, cross-rank digests, and
     * determinism diffs — while still appearing in live scrapes and the
     * end-of-run export.
     */
    static bool isRuntimeFamily(const std::string &family);

    /** Bucket bounds (milliseconds) shared by the runtime latency
     * histograms; spans sub-tick µs costs up to multi-second stalls. */
    static const std::vector<double> &runtimeMsBounds();

    /**
     * Prometheus text exposition, sorted by (family, label). With
     * @p skip_runtime the "nps_rt_" families are omitted, producing the
     * deterministic subset used by cross-rank digests.
     */
    void writeProm(std::ostream &out, bool skip_runtime = false) const;

    /** JSON export with the same deterministic ordering. */
    void writeJson(std::ostream &out) const;

    /** Read-only view of one registered series, for external exporters. */
    struct SeriesRef
    {
        const std::string &family;
        Kind kind;
        const std::string &help;
        const std::string &label;
        const Counter *counter;       //!< non-null for counters
        const Gauge *gauge;           //!< non-null for gauges
        const Histogram *histogram;   //!< non-null for histograms
    };

    /**
     * Visit every series in the deterministic (family, label) sorted
     * export order (the same order writeProm emits).
     */
    void forEachSeries(
        const std::function<void(const SeriesRef &)> &fn) const;

    /**
     * Serialize every deterministic series' value(s), keyed by
     * (family, label). Runtime ("nps_rt_") families are skipped on both
     * sides: different processes of one distributed run register
     * different runtime sets (supervisor vs node), and their wall-clock
     * values must never leak into a restored simulation.
     */
    void saveState(ckpt::SectionWriter &w) const;

    /**
     * Restore values into already-registered series matched by
     * (family, label). Fatal when the snapshot's instrument set differs
     * from the rebuilt registration (config mismatch).
     */
    void loadState(ckpt::SectionReader &r);

  private:
    struct Series
    {
        std::string label;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };

    struct Family
    {
        std::string name;
        Kind kind = Kind::Counter;
        std::string help;
        std::vector<double> bounds; //!< histograms only
        std::vector<Series> series;
    };

    Family *familyFor(const std::string &name, Kind kind,
                      const std::string &help);
    static void checkNewSeries(const Family &fam, const std::string &label);
    /** Families sorted by name with series sorted by label. */
    std::vector<const Family *> sortedFamilies() const;

    std::vector<std::unique_ptr<Family>> families_;
};

/** Canonical lower-case name of a metric kind ("counter", ...). */
const char *metricKindName(MetricsRegistry::Kind kind);

/**
 * Format a metric value the way both exporters print it: integral
 * values without a decimal point, everything else via "%.17g" (exact
 * double round-trip). Deterministic for deterministic inputs.
 */
std::string formatMetricValue(double v);

} // namespace obs
} // namespace nps

#endif // NPS_OBS_METRICS_H
