#include "obs/profiler.h"

#include <algorithm>

#include "util/json.h"
#include "util/table.h"

namespace nps {
namespace obs {

namespace {

double
ms(std::uint64_t ns)
{
    return static_cast<double>(ns) / 1e6;
}

} // namespace

void
EngineProfiler::setSchedule(std::vector<ActorInfo> actors, unsigned threads)
{
    threads_ = threads;
    bool same = actors.size() == actors_.size();
    for (size_t i = 0; same && i < actors.size(); ++i) {
        same = actors[i].name == actors_[i].info.name &&
               actors[i].shard_key == actors_[i].info.shard_key;
    }
    if (same)
        return;
    actors_.clear();
    actors_.resize(actors.size());
    for (size_t i = 0; i < actors.size(); ++i)
        actors_[i].info = std::move(actors[i]);
    evaluate_ns_ = 0;
    record_ns_ = 0;
    ticks_ = 0;
    wall_ns_ = 0;
}

void
EngineProfiler::addPhase(EnginePhase phase, std::uint64_t ns)
{
    switch (phase) {
      case EnginePhase::Evaluate: evaluate_ns_ += ns; break;
      case EnginePhase::Record:   record_ns_ += ns; break;
    }
}

std::uint64_t
EngineProfiler::phaseNs(EnginePhase phase) const
{
    switch (phase) {
      case EnginePhase::Evaluate: return evaluate_ns_;
      case EnginePhase::Record:   return record_ns_;
    }
    return 0;
}

void
EngineProfiler::writeTable(std::ostream &out) const
{
    std::vector<const ActorStats *> order;
    order.reserve(actors_.size());
    for (const auto &a : actors_)
        order.push_back(&a);
    std::sort(order.begin(), order.end(),
              [](const ActorStats *a, const ActorStats *b) {
                  std::uint64_t ta = a->observe_ns + a->step_ns;
                  std::uint64_t tb = b->observe_ns + b->step_ns;
                  if (ta != tb)
                      return ta > tb;
                  return a->info.name < b->info.name;
              });

    util::Table t("Engine profile: " + std::to_string(ticks_) +
                  " ticks, " + std::to_string(threads_) + " thread(s), " +
                  util::Table::num(ms(wall_ns_), 1) + " ms wall");
    t.header({"actor", "shard", "slot", "observe#", "observe ms",
              "step#", "step ms", "total ms", "% wall"});
    for (const ActorStats *a : order) {
        std::uint64_t total = a->observe_ns + a->step_ns;
        double frac = wall_ns_ > 0
                          ? static_cast<double>(total) /
                                static_cast<double>(wall_ns_)
                          : 0.0;
        t.row({a->info.name,
               a->info.shard_key < 0
                   ? std::string("global")
                   : std::to_string(a->info.shard_key),
               std::to_string(a->slot),
               std::to_string(a->observe_calls),
               util::Table::num(ms(a->observe_ns), 3),
               std::to_string(a->step_calls),
               util::Table::num(ms(a->step_ns), 3),
               util::Table::num(ms(total), 3), util::Table::pct(frac)});
    }
    t.separator();
    double eval_frac = wall_ns_ > 0 ? static_cast<double>(evaluate_ns_) /
                                          static_cast<double>(wall_ns_)
                                    : 0.0;
    double rec_frac = wall_ns_ > 0 ? static_cast<double>(record_ns_) /
                                         static_cast<double>(wall_ns_)
                                   : 0.0;
    t.row({"(cluster evaluate)", "-", "-", "-", "-", "-", "-",
           util::Table::num(ms(evaluate_ns_), 3),
           util::Table::pct(eval_frac)});
    t.row({"(metrics record)", "-", "-", "-", "-", "-", "-",
           util::Table::num(ms(record_ns_), 3), util::Table::pct(rec_frac)});
    t.print(out);
    if (ticks_ > 0 && wall_ns_ > 0) {
        double tps = static_cast<double>(ticks_) /
                     (static_cast<double>(wall_ns_) / 1e9);
        out << "ticks/sec: " << util::Table::num(tps, 1) << "\n";
    }
}

void
EngineProfiler::writeJson(std::ostream &out) const
{
    double tps = wall_ns_ > 0 ? static_cast<double>(ticks_) /
                                    (static_cast<double>(wall_ns_) / 1e9)
                              : 0.0;
    out << "{\n";
    out << "  \"ticks\": " << ticks_ << ",\n";
    out << "  \"threads\": " << threads_ << ",\n";
    out << "  \"wall_ns\": " << wall_ns_ << ",\n";
    out << "  \"ticks_per_sec\": " << util::jsonNumber(tps) << ",\n";
    out << "  \"phases\": {\"evaluate_ns\": " << evaluate_ns_
        << ", \"record_ns\": " << record_ns_ << "},\n";
    out << "  \"actors\": [\n";
    for (size_t i = 0; i < actors_.size(); ++i) {
        const ActorStats &a = actors_[i];
        out << "    {\"name\": " << util::jsonQuote(a.info.name)
            << ", \"shard\": " << a.info.shard_key
            << ", \"slot\": " << a.slot
            << ", \"observe_calls\": " << a.observe_calls
            << ", \"observe_ns\": " << a.observe_ns
            << ", \"step_calls\": " << a.step_calls
            << ", \"step_ns\": " << a.step_ns << '}'
            << (i + 1 < actors_.size() ? "," : "") << '\n';
    }
    out << "  ]\n}\n";
}

} // namespace obs
} // namespace nps
