#include "obs/decision_trace.h"

#include <algorithm>

#include "util/csv.h"
#include "util/logging.h"

namespace nps {
namespace obs {

TraceChannel::TraceChannel(std::string name, size_t capacity)
    : name_(std::move(name)), capacity_(capacity)
{
}

void
TraceChannel::emit(std::uint64_t tick, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string text = util::vformat(fmt, args);
    va_end(args);

    if (events_.size() == capacity_) {
        events_.pop_front();
        ++dropped_;
    }
    TraceEvent ev;
    ev.tick = tick;
    ev.seq = next_seq_++;
    ev.text = std::move(text);
    events_.push_back(std::move(ev));
}

TraceSink::TraceSink(size_t capacity) : capacity_(capacity)
{
    if (capacity_ == 0)
        util::fatal("TraceSink: channel capacity must be > 0");
}

void
TraceSink::setFilter(const std::string &substring)
{
    if (!channels_.empty())
        util::fatal("TraceSink: filter must be set before any channel "
                    "is registered");
    filter_ = substring;
}

TraceChannel *
TraceSink::channel(const std::string &name)
{
    for (const auto &c : channels_) {
        if (c->name_ == name)
            util::fatal("trace: channel '%s' registered twice",
                        name.c_str());
    }
    if (!filter_.empty() && name.find(filter_) == std::string::npos)
        return nullptr;
    channels_.push_back(std::unique_ptr<TraceChannel>(
        new TraceChannel(name, capacity_)));
    return channels_.back().get();
}

size_t
TraceSink::totalEvents() const
{
    size_t n = 0;
    for (const auto &c : channels_)
        n += c->events_.size();
    return n;
}

std::uint64_t
TraceSink::totalDropped() const
{
    std::uint64_t n = 0;
    for (const auto &c : channels_)
        n += c->dropped_;
    return n;
}

std::vector<TraceSink::Entry>
TraceSink::merged() const
{
    std::vector<Entry> out;
    out.reserve(totalEvents());
    for (const auto &c : channels_) {
        for (const auto &e : c->events_)
            out.push_back({c.get(), &e});
    }
    std::sort(out.begin(), out.end(), [](const Entry &a, const Entry &b) {
        if (a.event->tick != b.event->tick)
            return a.event->tick < b.event->tick;
        if (a.channel->name() != b.channel->name())
            return a.channel->name() < b.channel->name();
        return a.event->seq < b.event->seq;
    });
    return out;
}

void
TraceSink::writeCsv(std::ostream &out) const
{
    util::CsvWriter w(out);
    w.row("tick", "channel", "seq", "event");
    for (const Entry &e : merged()) {
        w.row(static_cast<unsigned long>(e.event->tick),
              e.channel->name(),
              static_cast<unsigned long>(e.event->seq), e.event->text);
    }
}

void
TraceSink::saveState(ckpt::SectionWriter &w) const
{
    w.putU64(channels_.size());
    for (const auto &ch : channels_) {
        w.putString(ch->name_);
        w.putU64(ch->next_seq_);
        w.putU64(ch->dropped_);
        w.putU64(ch->events_.size());
        for (const auto &e : ch->events_) {
            w.putU64(e.tick);
            w.putU64(e.seq);
            w.putString(e.text);
        }
    }
}

void
TraceSink::loadState(ckpt::SectionReader &r)
{
    auto n = static_cast<size_t>(r.getU64());
    if (n != channels_.size())
        util::fatal("trace restore: snapshot has %zu channels, rebuilt "
                    "sink has %zu — config mismatch",
                    n, channels_.size());
    for (size_t i = 0; i < n; ++i) {
        std::string name = r.getString();
        TraceChannel *target = nullptr;
        for (const auto &ch : channels_) {
            if (ch->name_ == name) {
                target = ch.get();
                break;
            }
        }
        if (!target)
            util::fatal("trace restore: snapshot channel '%s' not "
                        "registered in this run — config mismatch",
                        name.c_str());
        target->next_seq_ = r.getU64();
        target->dropped_ = r.getU64();
        auto events = static_cast<size_t>(r.getU64());
        target->events_.clear();
        for (size_t j = 0; j < events; ++j) {
            TraceEvent e;
            e.tick = r.getU64();
            e.seq = r.getU64();
            e.text = r.getString();
            target->events_.push_back(std::move(e));
        }
    }
}

} // namespace obs
} // namespace nps
