#include "obs/live/agg.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "ckpt/snapshot.h"
#include "util/json.h"
#include "util/logging.h"

namespace nps {
namespace obs {
namespace live {

namespace {

/** Prometheus label-value escaping (same rules as obs/metrics.cpp). */
std::string
promEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '\\': out += "\\\\"; break;
          case '"':  out += "\\\""; break;
          case '\n': out += "\\n"; break;
          default:   out.push_back(c);
        }
    }
    return out;
}

/** `family{id="label",rank="N",extra}` — rank after id, `le` last, the
 * label order Prometheus scrapers canonically expect. */
std::string
fleetSeriesName(const std::string &family, const std::string &label,
                uint32_t rank, const std::string &extra = std::string())
{
    std::string out = family;
    out.push_back('{');
    if (!label.empty()) {
        out += "id=\"";
        out += promEscape(label);
        out += "\",";
    }
    out += "rank=\"" + std::to_string(rank) + "\"";
    if (!extra.empty()) {
        out.push_back(',');
        out += extra;
    }
    out.push_back('}');
    return out;
}

const char *
kindName(MetricsRegistry::Kind kind)
{
    return metricKindName(kind);
}

MetricsRegistry::Kind
kindFromU32(uint32_t v)
{
    switch (v) {
    case 0: return MetricsRegistry::Kind::Counter;
    case 1: return MetricsRegistry::Kind::Gauge;
    case 2: return MetricsRegistry::Kind::Histogram;
    }
    util::fatal("metrics snapshot: unknown series kind %u", v);
}

/** One series of one rank, for the merged export. */
struct MergedEntry
{
    uint32_t rank;
    const RankSnapshot::Series *series;
};

struct MergedFamily
{
    MetricsRegistry::Kind kind = MetricsRegistry::Kind::Counter;
    std::string help;
    std::vector<MergedEntry> entries;
};

} // namespace

uint32_t
registryDigest(const MetricsRegistry &reg)
{
    std::ostringstream out;
    reg.writeProm(out, /*skip_runtime=*/true);
    const std::string text = out.str();
    return ckpt::crc32(text.data(), text.size());
}

std::string
encodeSnapshot(const MetricsRegistry &reg)
{
    ckpt::SectionWriter w;
    w.putU32(registryDigest(reg));
    w.putU64(reg.numSeries());
    reg.forEachSeries([&w](const MetricsRegistry::SeriesRef &s) {
        w.putString(s.family);
        w.putU32(static_cast<uint32_t>(s.kind));
        w.putString(s.help);
        w.putString(s.label);
        switch (s.kind) {
        case MetricsRegistry::Kind::Counter:
            w.putDouble(s.counter->value());
            break;
        case MetricsRegistry::Kind::Gauge:
            w.putDouble(s.gauge->value());
            break;
        case MetricsRegistry::Kind::Histogram:
            w.putDoubleVec(s.histogram->bounds());
            w.putU64Vec(s.histogram->counts());
            w.putU64(s.histogram->count());
            w.putDouble(s.histogram->sum());
            break;
        }
    });
    return w.bytes();
}

RankSnapshot
decodeSnapshot(uint32_t rank, uint64_t tick, const uint8_t *data,
               size_t len)
{
    RankSnapshot snap;
    snap.rank = rank;
    snap.tick = tick;
    ckpt::SectionReader r(
        "metrics-snapshot",
        std::string_view(reinterpret_cast<const char *>(data), len));
    snap.digest = r.getU32();
    uint64_t count = r.getU64();
    snap.series.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
        RankSnapshot::Series s;
        s.family = r.getString();
        s.kind = kindFromU32(r.getU32());
        s.help = r.getString();
        s.label = r.getString();
        switch (s.kind) {
        case MetricsRegistry::Kind::Counter:
        case MetricsRegistry::Kind::Gauge:
            s.value = r.getDouble();
            break;
        case MetricsRegistry::Kind::Histogram:
            s.bounds = r.getDoubleVec();
            s.counts = r.getU64Vec();
            s.count = r.getU64();
            s.sum = r.getDouble();
            break;
        }
        snap.series.push_back(std::move(s));
    }
    r.expectEnd();
    return snap;
}

std::string
diffSnapshots(const RankSnapshot &a, const RankSnapshot &b)
{
    auto isRuntime = [](const std::string &family) {
        return family.rfind("nps_rt_", 0) == 0;
    };
    auto describe = [](const RankSnapshot::Series &s) {
        if (s.kind == MetricsRegistry::Kind::Histogram)
            return "count=" + std::to_string(s.count) +
                   " sum=" + formatMetricValue(s.sum);
        return formatMetricValue(s.value);
    };
    // Both sides iterate the registry in its sorted (family, label)
    // order, so a positional walk that skips runtime families lines the
    // deterministic series up pairwise.
    size_t i = 0, j = 0;
    while (i < a.series.size() || j < b.series.size()) {
        while (i < a.series.size() && isRuntime(a.series[i].family))
            ++i;
        while (j < b.series.size() && isRuntime(b.series[j].family))
            ++j;
        if (i >= a.series.size() || j >= b.series.size()) {
            if (i >= a.series.size() && j >= b.series.size())
                break;
            const RankSnapshot &extra = i < a.series.size() ? a : b;
            size_t at = i < a.series.size() ? i : j;
            return "series " + extra.series[at].family + "{" +
                   extra.series[at].label + "} exists only on rank " +
                   std::to_string(extra.rank);
        }
        const RankSnapshot::Series &sa = a.series[i];
        const RankSnapshot::Series &sb = b.series[j];
        if (sa.family != sb.family || sa.label != sb.label)
            return "series mismatch: rank " + std::to_string(a.rank) +
                   " has " + sa.family + "{" + sa.label + "}, rank " +
                   std::to_string(b.rank) + " has " + sb.family + "{" +
                   sb.label + "}";
        bool same = sa.kind == sb.kind;
        if (same) {
            if (sa.kind == MetricsRegistry::Kind::Histogram)
                same = sa.bounds == sb.bounds && sa.counts == sb.counts &&
                       sa.count == sb.count && sa.sum == sb.sum;
            else
                same = sa.value == sb.value;
        }
        if (!same)
            return sa.family + "{" + sa.label + "}: rank " +
                   std::to_string(a.rank) + " " + describe(sa) +
                   " != rank " + std::to_string(b.rank) + " " +
                   describe(sb);
        ++i, ++j;
    }
    return "";
}

void
FleetView::update(RankSnapshot snap)
{
    ranks_[snap.rank] = std::move(snap);
}

int64_t
FleetView::tickOf(uint32_t rank) const
{
    auto it = ranks_.find(rank);
    return it == ranks_.end() ? -1
                              : static_cast<int64_t>(it->second.tick);
}

void
FleetView::writeProm(std::ostream &out) const
{
    // Merge by family: one HELP/TYPE block per family, every rank's
    // series inside it, sorted (family, rank, label) — ranks_ is an
    // ordered map and each snapshot's series arrive already sorted by
    // (family, label), so a stable re-bucketing keeps the order.
    std::map<std::string, MergedFamily> families;
    for (const auto &entry : ranks_) {
        for (const auto &s : entry.second.series) {
            MergedFamily &fam = families[s.family];
            if (fam.entries.empty()) {
                fam.kind = s.kind;
                fam.help = s.help;
            }
            fam.entries.push_back({entry.first, &s});
        }
    }

    out << "# HELP nps_fleet_snapshot_tick Barrier tick of each rank's "
           "current registry snapshot\n"
           "# TYPE nps_fleet_snapshot_tick gauge\n";
    for (const auto &entry : ranks_)
        out << fleetSeriesName("nps_fleet_snapshot_tick", "",
                               entry.first)
            << ' ' << entry.second.tick << '\n';

    for (const auto &fe : families) {
        const MergedFamily &fam = fe.second;
        out << "# HELP " << fe.first << ' ' << fam.help << '\n';
        out << "# TYPE " << fe.first << ' ' << kindName(fam.kind)
            << '\n';
        std::vector<MergedEntry> entries = fam.entries;
        std::stable_sort(entries.begin(), entries.end(),
                         [](const MergedEntry &a, const MergedEntry &b) {
                             if (a.rank != b.rank)
                                 return a.rank < b.rank;
                             return a.series->label < b.series->label;
                         });
        for (const MergedEntry &e : entries) {
            const RankSnapshot::Series &s = *e.series;
            switch (fam.kind) {
            case MetricsRegistry::Kind::Counter:
            case MetricsRegistry::Kind::Gauge:
                out << fleetSeriesName(fe.first, s.label, e.rank) << ' '
                    << formatMetricValue(s.value) << '\n';
                break;
            case MetricsRegistry::Kind::Histogram: {
                uint64_t cum = 0;
                for (size_t i = 0; i < s.counts.size(); ++i) {
                    cum += s.counts[i];
                    std::string le =
                        i < s.bounds.size()
                            ? formatMetricValue(s.bounds[i])
                            : std::string("+Inf");
                    out << fleetSeriesName(fe.first + "_bucket",
                                           s.label, e.rank,
                                           "le=\"" + le + "\"")
                        << ' ' << cum << '\n';
                }
                out << fleetSeriesName(fe.first + "_sum", s.label,
                                       e.rank)
                    << ' ' << formatMetricValue(s.sum) << '\n';
                out << fleetSeriesName(fe.first + "_count", s.label,
                                       e.rank)
                    << ' ' << s.count << '\n';
                break;
            }
            }
        }
    }
}

void
FleetView::writeJson(std::ostream &out) const
{
    out << "{\n  \"ranks\": [\n";
    bool first_rank = true;
    for (const auto &entry : ranks_) {
        const RankSnapshot &snap = entry.second;
        if (!first_rank)
            out << ",\n";
        first_rank = false;
        out << "    {\"rank\": " << snap.rank
            << ", \"tick\": " << snap.tick
            << ", \"digest\": " << snap.digest << ", \"series\": [";
        bool first_series = true;
        for (const auto &s : snap.series) {
            if (!first_series)
                out << ", ";
            first_series = false;
            out << "{\"family\": " << util::jsonQuote(s.family)
                << ", \"kind\": \"" << kindName(s.kind)
                << "\", \"label\": " << util::jsonQuote(s.label);
            switch (s.kind) {
            case MetricsRegistry::Kind::Counter:
            case MetricsRegistry::Kind::Gauge:
                out << ", \"value\": " << util::jsonNumber(s.value);
                break;
            case MetricsRegistry::Kind::Histogram: {
                out << ", \"sum\": " << util::jsonNumber(s.sum)
                    << ", \"count\": " << s.count << ", \"buckets\": [";
                uint64_t cum = 0;
                for (size_t i = 0; i < s.counts.size(); ++i) {
                    cum += s.counts[i];
                    if (i)
                        out << ", ";
                    out << "{\"le\": ";
                    if (i < s.bounds.size())
                        out << util::jsonNumber(s.bounds[i]);
                    else
                        out << "\"+Inf\"";
                    out << ", \"count\": " << cum << '}';
                }
                out << ']';
                break;
            }
            }
            out << '}';
        }
        out << "]}";
    }
    out << "\n  ]\n}\n";
}

} // namespace live
} // namespace obs
} // namespace nps
