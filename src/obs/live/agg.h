/**
 * @file
 * Cross-rank metric aggregation for distributed runs
 * (docs/OBSERVABILITY.md, docs/DISTRIBUTED.md).
 *
 * At the per-tick barrier every rank serializes its MetricsRegistry
 * into a compact snapshot (ckpt::SectionWriter encoding) and ships it
 * to the supervisor in an NPSF 'M' frame. The supervisor decodes each
 * snapshot into a RankSnapshot and merges the fleet into one rank-
 * labelled Prometheus/JSON view.
 *
 * The snapshot carries a digest — CRC32 over the registry's
 * *deterministic* Prometheus text (runtime "nps_rt_" families
 * excluded). Because a distributed run is lockstep replication, every
 * rank's deterministic series must be byte-identical at every barrier;
 * the supervisor cross-checks each arriving digest against its own
 * replica and treats a mismatch as a desync, exactly like the
 * control-frame cross-check in stream/socket_transport.h. The runtime
 * families are the part that legitimately differs per rank (barrier
 * wait, tick wall time) — they ride along unchecked and come out
 * rank-labelled, which is the point of the fleet view.
 */

#ifndef NPS_OBS_LIVE_AGG_H
#define NPS_OBS_LIVE_AGG_H

#include <cstddef>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace nps {
namespace obs {
namespace live {

/** One rank's decoded registry snapshot. */
struct RankSnapshot
{
    /** One series; value fields depend on kind. */
    struct Series
    {
        std::string family;
        MetricsRegistry::Kind kind = MetricsRegistry::Kind::Counter;
        std::string help;
        std::string label;
        double value = 0.0; //!< counter / gauge
        std::vector<double> bounds;          //!< histogram
        std::vector<uint64_t> counts;        //!< histogram (per bucket)
        uint64_t count = 0;                  //!< histogram
        double sum = 0.0;                    //!< histogram
    };

    uint32_t rank = 0;
    uint64_t tick = 0;   //!< barrier tick the snapshot was taken at
    uint32_t digest = 0; //!< CRC32 of the deterministic prom text
    std::vector<Series> series;
};

/** CRC32 over the deterministic (runtime-excluded) prom exposition —
 * the cross-rank agreement check. */
uint32_t registryDigest(const MetricsRegistry &reg);

/** Serialize every series (runtime families included) plus the
 * deterministic digest; the payload of an 'M' frame. */
std::string encodeSnapshot(const MetricsRegistry &reg);

/** Decode an 'M' payload produced by encodeSnapshot. Fatal on a
 * malformed payload (the frame CRC already passed, so malformed here
 * means a protocol bug, not line noise). */
RankSnapshot decodeSnapshot(uint32_t rank, uint64_t tick,
                            const uint8_t *data, size_t len);

/** Describe the first deterministic series that differs between two
 * snapshots ("family{label}: a=X b=Y"), for the desync fatal. Returns
 * "" when none differs (the digests disagreed on something the
 * series-level compare cannot see, e.g. help text). */
std::string diffSnapshots(const RankSnapshot &a, const RankSnapshot &b);

/**
 * The supervisor's merged picture of every rank's registry. update()
 * replaces a rank's entry wholesale; export emits every series of
 * every rank with a `rank="N"` label appended after the series' own
 * `id` label, sorted by (family, rank, label) so the text is
 * deterministic. A `nps_fleet_snapshot_tick` gauge per rank reports
 * how fresh each rank's entry is (a killed rank's entry stays at its
 * last barrier).
 */
class FleetView
{
  public:
    void update(RankSnapshot snap);

    size_t numRanks() const { return ranks_.size(); }

    /** Tick of @p rank's current entry, or -1 when absent. */
    int64_t tickOf(uint32_t rank) const;

    void writeProm(std::ostream &out) const;
    void writeJson(std::ostream &out) const;

  private:
    std::map<uint32_t, RankSnapshot> ranks_;
};

} // namespace live
} // namespace obs
} // namespace nps

#endif // NPS_OBS_LIVE_AGG_H
