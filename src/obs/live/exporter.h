/**
 * @file
 * LiveExporter: a minimal HTTP/1.0 endpoint serving published
 * LiveSnapshots (docs/OBSERVABILITY.md, live mode).
 *
 * The exporter owns one listening socket (tcp or unix, via
 * stream::listenOn) and one serve thread. The serve thread accepts one
 * connection at a time, answers a single GET, and closes — the scrape
 * protocol of a Prometheus exporter, deliberately without keep-alive,
 * chunking or HTTP/1.1 parsing. Routes:
 *
 *   /metrics       Prometheus text exposition (the published snapshot)
 *   /metrics.json  the same series as JSON
 *   /healthz       {"status":"ok","tick":N,"final":B,"rank":R}
 *   /profilez      engine profile JSON
 *   /quitz         ends a post-run linger() early (for scripts)
 *
 * Until the first publish() every data route answers 503, so a scraper
 * arriving before the first tick sees "not ready" instead of garbage.
 * Unknown paths answer 404.
 *
 * Threading contract: publish() is called by the engine thread and
 * swaps a shared_ptr under a mutex; the serve thread takes the same
 * mutex only to copy the pointer. Neither side ever blocks on the
 * other for more than that pointer swap, so a stalled scraper cannot
 * stall the simulation.
 */

#ifndef NPS_OBS_LIVE_EXPORTER_H
#define NPS_OBS_LIVE_EXPORTER_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "obs/live/snapshot.h"

namespace nps {
namespace obs {
namespace live {

/**
 * One live HTTP endpoint. Construction binds and starts serving;
 * destruction stops the thread and removes a unix socket path.
 */
class LiveExporter
{
  public:
    /**
     * Bind @p spec and start the serve thread. @p spec is "PORT"
     * (shorthand for "tcp:PORT"), "tcp:PORT", "tcp:HOST:PORT" or
     * "unix:PATH" — the stream::listenOn grammar. Fatal when the
     * endpoint cannot be bound (a config error, not a runtime hazard).
     * @p rank tags /healthz so fleet probes can tell processes apart.
     */
    explicit LiveExporter(const std::string &spec, int rank = 0);

    ~LiveExporter();

    LiveExporter(const LiveExporter &) = delete;
    LiveExporter &operator=(const LiveExporter &) = delete;

    /** Swap in a new snapshot (engine thread). */
    void publish(std::shared_ptr<const LiveSnapshot> snap);

    /** The currently published snapshot (may be null before the first
     * publish). */
    std::shared_ptr<const LiveSnapshot> current() const;

    /**
     * Keep serving for up to @p ms milliseconds after the run so
     * scripts can take a final scrape; returns early once /quitz is
     * hit. No-op for ms == 0.
     */
    void linger(unsigned ms);

    /** Scrapes answered so far (any route, any status). */
    uint64_t scrapes() const { return scrapes_.load(); }

    /** The normalized endpoint spec ("tcp:..." or "unix:..."). */
    const std::string &spec() const { return spec_; }

  private:
    void serveLoop();
    void handleClient(int fd);

    std::string spec_;      //!< normalized listen spec
    std::string unix_path_; //!< non-empty for unix sockets (unlinked)
    int rank_;
    int listener_ = -1;
    std::thread thread_;
    std::atomic<bool> stop_{false};
    std::atomic<bool> quit_{false}; //!< /quitz seen — end linger early
    std::atomic<uint64_t> scrapes_{0};
    mutable std::mutex mutex_;
    std::shared_ptr<const LiveSnapshot> snap_;
};

} // namespace live
} // namespace obs
} // namespace nps

#endif // NPS_OBS_LIVE_EXPORTER_H
