#include "obs/live/publisher.h"

#include <memory>
#include <sstream>
#include <utility>

namespace nps {
namespace obs {
namespace live {

LivePublisher::LivePublisher(MetricsRegistry *registry,
                             const EngineProfiler *profiler,
                             std::function<void()> refresh,
                             LiveExporter *exporter,
                             unsigned publish_every, int rank)
    : registry_(registry), profiler_(profiler),
      refresh_(std::move(refresh)), exporter_(exporter),
      publish_every_(publish_every ? publish_every : 1), rank_(rank),
      tick_wall_ms_(registry->histogram(
          "nps_rt_tick_wall_ms", "rank" + std::to_string(rank),
          "Wall-clock latency per engine tick (ms)",
          MetricsRegistry::runtimeMsBounds()))
{
}

void
LivePublisher::endTick(size_t tick)
{
    auto now = std::chrono::steady_clock::now();
    if (timed_) {
        double ms = std::chrono::duration<double, std::milli>(
                        now - last_tick_end_)
                        .count();
        tick_wall_ms_->observe(ms);
    }
    timed_ = true;
    last_tick_end_ = now;

    if (!exporter_ || tick % publish_every_ != 0)
        return;
    // A render walks the whole registry into tens of KB of text —
    // around a millisecond, which dwarfs a paper-scale tick. Re-render
    // only when a request has arrived since the last publish: an idle
    // endpoint costs one render for the whole run, and each scrape arms
    // the next publish, so a poller is never more than one scrape plus
    // publish_every ticks stale. The final snapshot (publishFinal)
    // never skips, so the last scrape still equals the export.
    const uint64_t seen = exporter_->scrapes();
    if (rendered_once_ && seen == scrapes_at_render_)
        return;
    scrapes_at_render_ = seen;
    rendered_once_ = true;
    if (refresh_)
        refresh_();
    exporter_->publish(
        std::make_shared<LiveSnapshot>(render(tick, false)));
}

void
LivePublisher::publishFinal(uint64_t tick)
{
    if (!exporter_)
        return;
    exporter_->publish(
        std::make_shared<LiveSnapshot>(render(tick, true)));
}

LiveSnapshot
LivePublisher::render(uint64_t tick, bool final) const
{
    LiveSnapshot snap;
    snap.tick = tick;
    snap.final = final;

    std::ostringstream prom;
    std::ostringstream json;
    if (fleet_ && fleet_->numRanks() > 0) {
        fleet_->writeProm(prom);
        fleet_->writeJson(json);
    } else {
        registry_->writeProm(prom);
        registry_->writeJson(json);
    }
    snap.prom = prom.str();
    snap.json = json.str();

    std::ostringstream health;
    health << "{\"status\": \"ok\", \"tick\": " << tick
           << ", \"final\": " << (final ? "true" : "false")
           << ", \"rank\": " << rank_;
    if (health_extra_) {
        std::string extra = health_extra_();
        if (!extra.empty())
            health << ", " << extra;
    }
    health << "}\n";
    snap.health = health.str();

    if (profiler_) {
        std::ostringstream profile;
        profiler_->writeJson(profile);
        snap.profile = profile.str();
    } else {
        snap.profile = "{}\n";
    }
    return snap;
}

} // namespace live
} // namespace obs
} // namespace nps
