/**
 * @file
 * LiveSnapshot: one immutable, fully-serialized view of the run's
 * observable state (docs/OBSERVABILITY.md, live mode).
 *
 * The live observability plane never lets a scrape touch controller
 * state: the engine thread builds a snapshot — every export format
 * pre-rendered to its final bytes — and publishes it by swapping a
 * shared_ptr. The HTTP thread only ever reads a published snapshot's
 * strings, so a scrape costs the exporter one pointer copy and some
 * socket writes, and the simulation stays byte-identical whether or
 * not anyone is scraping.
 */

#ifndef NPS_OBS_LIVE_SNAPSHOT_H
#define NPS_OBS_LIVE_SNAPSHOT_H

#include <cstdint>
#include <string>

namespace nps {
namespace obs {
namespace live {

/** One published view; immutable once handed to the exporter. */
struct LiveSnapshot
{
    uint64_t tick = 0; //!< last completed tick covered by the snapshot
    bool final = false; //!< true for the end-of-run snapshot
    std::string prom;    //!< /metrics — Prometheus text exposition
    std::string json;    //!< /metrics.json
    std::string health;  //!< /healthz — small JSON status document
    std::string profile; //!< /profilez — engine profile JSON (or "{}")
};

} // namespace live
} // namespace obs
} // namespace nps

#endif // NPS_OBS_LIVE_SNAPSHOT_H
