/**
 * @file
 * LivePublisher: the engine-thread half of the live observability
 * plane (docs/OBSERVABILITY.md, live mode).
 *
 * A sim::TickObserver that runs at the end of every engine tick. It
 * always records the tick's wall latency into the runtime
 * (`nps_rt_`) histogram set, and — every publish_every ticks — renders
 * the registry (or, on a distributed supervisor, the merged FleetView)
 * into an immutable LiveSnapshot and hands it to the LiveExporter.
 * Renders are demand-gated: a publish tick with no scrape since the
 * last render skips the (comparatively expensive) text rendering, so
 * an unscraped endpoint costs one render for the whole run.
 *
 * Determinism: everything the publisher *writes* lands in runtime
 * families, which are excluded from checkpoints, digests and
 * determinism diffs; the refresh callback (Coordinator's run-gauge
 * update) is deterministic given the tick it fires at, and it fires on
 * a pure function of the tick counter. Rendering reads registry cells
 * the engine thread owns, after the tick's actors finished — so the
 * simulation's outputs are byte-identical with the live plane on or
 * off, at any thread count.
 */

#ifndef NPS_OBS_LIVE_PUBLISHER_H
#define NPS_OBS_LIVE_PUBLISHER_H

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/live/agg.h"
#include "obs/live/exporter.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "sim/engine.h"

namespace nps {
namespace obs {
namespace live {

/**
 * Publishes per-tick snapshots. Install with
 * engine().setTickObserver(&publisher); it is observation-only and
 * never appears in the actor roster or the checkpoint.
 */
class LivePublisher : public sim::TickObserver
{
  public:
    /**
     * @p registry must outlive the publisher and have been wired; the
     * tick-wall histogram is registered here (single-threaded wiring
     * time). @p profiler may be null (no /profilez body). @p refresh
     * is invoked before each render so derived gauges are current —
     * pass the Coordinator's updateRunGauges. @p exporter may be null:
     * the wall-latency histogram still records (always-on runtime
     * instrumentation), publishing is skipped.
     */
    LivePublisher(MetricsRegistry *registry,
                  const EngineProfiler *profiler,
                  std::function<void()> refresh, LiveExporter *exporter,
                  unsigned publish_every = 1, int rank = 0);

    /** Supervisor only: render /metrics and /metrics.json from the
     * merged fleet view instead of the local registry. */
    void setFleet(const FleetView *fleet) { fleet_ = fleet; }

    /**
     * Extra /healthz content: the returned string (one or more JSON
     * members, e.g. `"peers": [...]`) is spliced into the healthz
     * object. Runtime-only state (peer health under netem); rendered on
     * the engine thread. An empty return adds nothing.
     */
    void setHealthExtra(std::function<std::string()> extra)
    {
        health_extra_ = std::move(extra);
    }

    /// @name sim::TickObserver
    /// @{
    void endTick(size_t tick) override;
    /// @}

    /**
     * Publish the end-of-run snapshot (call after the final run-gauge
     * refresh and before any end-of-run export is written, so the last
     * scrape and the export file agree byte for byte).
     */
    void publishFinal(uint64_t tick);

    /** Render the current state without publishing (for exports). */
    LiveSnapshot render(uint64_t tick, bool final) const;

  private:
    MetricsRegistry *registry_;
    const EngineProfiler *profiler_;
    std::function<void()> refresh_;
    LiveExporter *exporter_;
    const FleetView *fleet_ = nullptr;
    std::function<std::string()> health_extra_;
    unsigned publish_every_;
    int rank_;
    Histogram *tick_wall_ms_;
    uint64_t scrapes_at_render_ = 0; //!< demand gate: exporter_->scrapes()
    bool rendered_once_ = false;     //!< at the last published render
    bool timed_ = false;
    std::chrono::steady_clock::time_point last_tick_end_;
};

} // namespace live
} // namespace obs
} // namespace nps

#endif // NPS_OBS_LIVE_PUBLISHER_H
