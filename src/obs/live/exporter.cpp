#include "obs/live/exporter.h"

#include <cctype>
#include <cstring>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#include <utility>

#include "stream/net.h"
#include "util/logging.h"

namespace nps {
namespace obs {
namespace live {

namespace {

/** "8080" is shorthand for "tcp:8080"; anything else is passed to the
 * stream::listenOn grammar as-is. */
std::string
normalizeSpec(const std::string &spec)
{
    if (spec.empty())
        util::fatal("live exporter: empty endpoint spec");
    bool digits = true;
    for (char c : spec)
        if (!std::isdigit(static_cast<unsigned char>(c)))
            digits = false;
    return digits ? "tcp:" + spec : spec;
}

struct Response
{
    const char *status;       //!< e.g. "200 OK"
    const char *content_type; //!< e.g. "application/json"
    std::string body;
};

void
writeResponse(int fd, const Response &r)
{
    std::string head = "HTTP/1.0 ";
    head += r.status;
    head += "\r\nContent-Type: ";
    head += r.content_type;
    head += "\r\nContent-Length: " + std::to_string(r.body.size());
    head += "\r\nConnection: close\r\n\r\n";
    // A scraper that disconnects mid-write is its problem, not ours:
    // writeAll returning short is ignored, the fd closes either way.
    stream::writeAll(fd, head.data(), head.size());
    if (!r.body.empty())
        stream::writeAll(fd, r.body.data(), r.body.size());
}

/**
 * Read one request head (up to the blank line). Bounded at 8 KiB and
 * ~2 s so a stuck client occupies the serve thread only briefly.
 * @return false when no complete head arrived.
 */
bool
readRequestHead(int fd, std::string &head)
{
    head.clear();
    char buf[1024];
    for (int spins = 0; spins < 10 && head.size() < 8192; ++spins) {
        struct pollfd p = {fd, POLLIN, 0};
        int rc = ::poll(&p, 1, 200);
        if (rc < 0)
            return false;
        if (rc == 0)
            continue;
        ssize_t n = ::recv(fd, buf, sizeof buf, 0);
        if (n <= 0)
            return false;
        head.append(buf, static_cast<size_t>(n));
        if (head.find("\r\n\r\n") != std::string::npos ||
            head.find("\n\n") != std::string::npos)
            return true;
    }
    return false;
}

/** The path of "GET /path HTTP/1.x", or "" for anything else. */
std::string
requestPath(const std::string &head)
{
    if (head.rfind("GET ", 0) != 0)
        return "";
    size_t end = head.find(' ', 4);
    if (end == std::string::npos)
        end = head.find_first_of("\r\n", 4);
    if (end == std::string::npos)
        return "";
    return head.substr(4, end - 4);
}

} // namespace

LiveExporter::LiveExporter(const std::string &spec, int rank)
    : spec_(normalizeSpec(spec)), rank_(rank)
{
    if (spec_.rfind("unix:", 0) == 0)
        unix_path_ = spec_.substr(5);
    listener_ = stream::listenOn(spec_);
    thread_ = std::thread([this] { serveLoop(); });
}

LiveExporter::~LiveExporter()
{
    stop_.store(true);
    if (thread_.joinable())
        thread_.join();
    if (listener_ >= 0)
        ::close(listener_);
    if (!unix_path_.empty())
        ::unlink(unix_path_.c_str());
}

void
LiveExporter::publish(std::shared_ptr<const LiveSnapshot> snap)
{
    std::lock_guard<std::mutex> lock(mutex_);
    snap_ = std::move(snap);
}

std::shared_ptr<const LiveSnapshot>
LiveExporter::current() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return snap_;
}

void
LiveExporter::linger(unsigned ms)
{
    for (unsigned waited = 0; waited < ms && !quit_.load(); waited += 50)
        ::usleep(50 * 1000);
}

void
LiveExporter::serveLoop()
{
    while (!stop_.load()) {
        struct pollfd p = {listener_, POLLIN, 0};
        int rc = ::poll(&p, 1, 200);
        if (rc <= 0)
            continue; // timeout or EINTR: recheck the stop flag
        int fd = stream::acceptOne(listener_);
        if (fd < 0)
            continue;
        handleClient(fd);
        ::close(fd);
    }
}

void
LiveExporter::handleClient(int fd)
{
    std::string head;
    if (!readRequestHead(fd, head))
        return;
    const std::string path = requestPath(head);
    ++scrapes_;

    if (path == "/quitz") {
        quit_.store(true);
        writeResponse(fd, {"200 OK", "text/plain; charset=utf-8",
                           "bye\n"});
        return;
    }

    std::shared_ptr<const LiveSnapshot> snap = current();
    if (path.empty()) {
        writeResponse(fd, {"400 Bad Request",
                           "text/plain; charset=utf-8",
                           "only GET is served here\n"});
        return;
    }
    if (path != "/metrics" && path != "/metrics.json" &&
        path != "/healthz" && path != "/profilez") {
        writeResponse(fd, {"404 Not Found", "text/plain; charset=utf-8",
                           "unknown path\n"});
        return;
    }
    if (!snap) {
        writeResponse(fd, {"503 Service Unavailable",
                           "text/plain; charset=utf-8",
                           "no snapshot published yet\n"});
        return;
    }
    if (path == "/metrics") {
        writeResponse(
            fd, {"200 OK", "text/plain; version=0.0.4; charset=utf-8",
                 snap->prom});
    } else if (path == "/metrics.json") {
        writeResponse(fd, {"200 OK", "application/json", snap->json});
    } else if (path == "/healthz") {
        writeResponse(fd, {"200 OK", "application/json", snap->health});
    } else {
        writeResponse(fd, {"200 OK", "application/json", snap->profile});
    }
}

} // namespace live
} // namespace obs
} // namespace nps
