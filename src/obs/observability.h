/**
 * @file
 * The observability bundle: configuration switches plus ownership of
 * the three instruments (metrics registry, decision-trace sink, engine
 * profiler). A disabled instrument is simply absent — every consumer
 * branches on a null pointer, which keeps the disabled path free of
 * observability work and the simulation bit-identical to a build
 * without it.
 */

#ifndef NPS_OBS_OBSERVABILITY_H
#define NPS_OBS_OBSERVABILITY_H

#include <memory>
#include <string>

#include "obs/decision_trace.h"
#include "obs/metrics.h"
#include "obs/profiler.h"

namespace nps {
namespace obs {

/** Which instruments to build; part of core::CoordinationConfig. */
struct ObsConfig
{
    bool metrics = false; //!< build a MetricsRegistry
    bool trace = false;   //!< build a TraceSink
    bool profile = false; //!< build an EngineProfiler
    bool cascade = false; //!< record the budget-cascade hop trace

    /** Substring filter on trace channel names; empty keeps all. */
    std::string trace_filter;
    /** Per-channel trace ring capacity (events). */
    unsigned trace_capacity = TraceSink::kDefaultCapacity;

    /**
     * Live-scrape endpoint spec: "PORT" (TCP on localhost) or
     * "unix:PATH". Empty disables the live observability plane
     * (src/obs/live/). Serving implies a MetricsRegistry.
     */
    std::string http;
    /** How long the exporter lingers after the run ends (ms). */
    unsigned http_linger_ms = 0;
    /** Publish a fresh live snapshot every N ticks. */
    unsigned publish_every = 1;

    /** @return true when any instrument is enabled. */
    bool any() const
    {
        return metrics || trace || profile || cascade || !http.empty();
    }
};

/**
 * Owns whichever instruments the config enables. Accessors return
 * nullptr for disabled instruments.
 */
class Observability
{
  public:
    explicit Observability(const ObsConfig &cfg);

    const ObsConfig &config() const { return cfg_; }

    MetricsRegistry *metrics() { return metrics_.get(); }
    const MetricsRegistry *metrics() const { return metrics_.get(); }
    TraceSink *trace() { return trace_.get(); }
    const TraceSink *trace() const { return trace_.get(); }
    EngineProfiler *profiler() { return profiler_.get(); }
    const EngineProfiler *profiler() const { return profiler_.get(); }

  private:
    ObsConfig cfg_;
    std::unique_ptr<MetricsRegistry> metrics_;
    std::unique_ptr<TraceSink> trace_;
    std::unique_ptr<EngineProfiler> profiler_;
};

} // namespace obs
} // namespace nps

#endif // NPS_OBS_OBSERVABILITY_H
