#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

#include "util/json.h"
#include "util/logging.h"

namespace nps {
namespace obs {

namespace {

/** Escape a label value per the Prometheus text exposition rules. */
std::string
promEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '\\': out += "\\\\"; break;
          case '"':  out += "\\\""; break;
          case '\n': out += "\\n"; break;
          default:   out.push_back(c);
        }
    }
    return out;
}

/** `family{id="label"}` or bare `family` for unlabelled series. */
std::string
promSeriesName(const std::string &family, const std::string &label,
               const std::string &extra = std::string())
{
    std::string out = family;
    if (label.empty() && extra.empty())
        return out;
    out.push_back('{');
    if (!label.empty()) {
        out += "id=\"";
        out += promEscape(label);
        out.push_back('"');
        if (!extra.empty())
            out.push_back(',');
    }
    out += extra;
    out.push_back('}');
    return out;
}

} // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0)
{
    for (size_t i = 1; i < bounds_.size(); ++i) {
        if (bounds_[i] <= bounds_[i - 1])
            util::fatal("Histogram: bucket bounds must be strictly "
                        "increasing (%g after %g)",
                        bounds_[i], bounds_[i - 1]);
    }
}

void
Histogram::observe(double v)
{
    size_t i = 0;
    while (i < bounds_.size() && v > bounds_[i])
        ++i;
    ++counts_[i];
    ++count_;
    sum_ += v;
}

void
Histogram::restore(std::vector<std::uint64_t> counts, std::uint64_t count,
                   double sum)
{
    if (counts.size() != counts_.size())
        util::fatal("Histogram restore: %zu buckets in snapshot, %zu "
                    "registered",
                    counts.size(), counts_.size());
    counts_ = std::move(counts);
    count_ = count;
    sum_ = sum;
}

MetricsRegistry::Family *
MetricsRegistry::familyFor(const std::string &name, Kind kind,
                           const std::string &help)
{
    for (auto &f : families_) {
        if (f->name != name)
            continue;
        if (f->kind != kind)
            util::fatal("metrics: family '%s' re-registered as %s "
                        "(was %s)",
                        name.c_str(), metricKindName(kind),
                        metricKindName(f->kind));
        if (f->help != help)
            util::fatal("metrics: family '%s' re-registered with a "
                        "different help string",
                        name.c_str());
        return f.get();
    }
    families_.push_back(std::make_unique<Family>());
    families_.back()->name = name;
    families_.back()->kind = kind;
    families_.back()->help = help;
    return families_.back().get();
}

void
MetricsRegistry::checkNewSeries(const Family &fam, const std::string &label)
{
    for (const auto &s : fam.series) {
        if (s.label == label)
            util::fatal("metrics: series '%s{id=\"%s\"}' registered "
                        "twice",
                        fam.name.c_str(), label.c_str());
    }
}

Counter *
MetricsRegistry::counter(const std::string &family, const std::string &label,
                         const std::string &help)
{
    Family *fam = familyFor(family, Kind::Counter, help);
    checkNewSeries(*fam, label);
    fam->series.push_back(Series());
    fam->series.back().label = label;
    fam->series.back().counter = std::make_unique<Counter>();
    return fam->series.back().counter.get();
}

Gauge *
MetricsRegistry::gauge(const std::string &family, const std::string &label,
                       const std::string &help)
{
    Family *fam = familyFor(family, Kind::Gauge, help);
    checkNewSeries(*fam, label);
    fam->series.push_back(Series());
    fam->series.back().label = label;
    fam->series.back().gauge = std::make_unique<Gauge>();
    return fam->series.back().gauge.get();
}

Histogram *
MetricsRegistry::histogram(const std::string &family,
                           const std::string &label, const std::string &help,
                           const std::vector<double> &bounds)
{
    Family *fam = familyFor(family, Kind::Histogram, help);
    if (fam->series.empty()) {
        fam->bounds = bounds;
    } else if (fam->bounds != bounds) {
        util::fatal("metrics: histogram family '%s' registered with "
                    "mismatched bucket bounds",
                    family.c_str());
    }
    checkNewSeries(*fam, label);
    fam->series.push_back(Series());
    fam->series.back().label = label;
    fam->series.back().histogram = std::make_unique<Histogram>(bounds);
    return fam->series.back().histogram.get();
}

size_t
MetricsRegistry::numSeries() const
{
    size_t n = 0;
    for (const auto &f : families_)
        n += f->series.size();
    return n;
}

double
MetricsRegistry::total(const std::string &family) const
{
    for (const auto &f : families_) {
        if (f->name != family)
            continue;
        if (f->kind == Kind::Histogram)
            util::fatal("metrics: total() on histogram family '%s'",
                        family.c_str());
        double sum = 0.0;
        for (const auto &s : f->series)
            sum += f->kind == Kind::Counter ? s.counter->value()
                                            : s.gauge->value();
        return sum;
    }
    util::fatal("metrics: total() on unknown family '%s'", family.c_str());
}

double
MetricsRegistry::value(const std::string &family, const std::string &label,
                       double fallback) const
{
    for (const auto &f : families_) {
        if (f->name != family)
            continue;
        for (const auto &s : f->series) {
            if (s.label != label)
                continue;
            switch (f->kind) {
              case Kind::Counter:   return s.counter->value();
              case Kind::Gauge:     return s.gauge->value();
              case Kind::Histogram:
                return static_cast<double>(s.histogram->count());
            }
        }
    }
    return fallback;
}

bool
MetricsRegistry::isRuntimeFamily(const std::string &family)
{
    static const char prefix[] = "nps_rt_";
    return family.compare(0, sizeof prefix - 1, prefix) == 0;
}

const std::vector<double> &
MetricsRegistry::runtimeMsBounds()
{
    static const std::vector<double> bounds{
        0.001, 0.005, 0.01, 0.05, 0.1,  0.5,
        1.0,   5.0,   10.0, 50.0, 100.0, 500.0, 1000.0};
    return bounds;
}

std::vector<const MetricsRegistry::Family *>
MetricsRegistry::sortedFamilies() const
{
    std::vector<const Family *> out;
    out.reserve(families_.size());
    for (const auto &f : families_)
        out.push_back(f.get());
    std::sort(out.begin(), out.end(),
              [](const Family *a, const Family *b) {
                  return a->name < b->name;
              });
    return out;
}

void
MetricsRegistry::writeProm(std::ostream &out, bool skip_runtime) const
{
    for (const Family *fam : sortedFamilies()) {
        if (skip_runtime && isRuntimeFamily(fam->name))
            continue;
        std::vector<const Series *> series;
        series.reserve(fam->series.size());
        for (const auto &s : fam->series)
            series.push_back(&s);
        std::sort(series.begin(), series.end(),
                  [](const Series *a, const Series *b) {
                      return a->label < b->label;
                  });

        out << "# HELP " << fam->name << ' ' << fam->help << '\n';
        out << "# TYPE " << fam->name << ' ' << metricKindName(fam->kind)
            << '\n';
        for (const Series *s : series) {
            switch (fam->kind) {
              case Kind::Counter:
                out << promSeriesName(fam->name, s->label) << ' '
                    << formatMetricValue(s->counter->value()) << '\n';
                break;
              case Kind::Gauge:
                out << promSeriesName(fam->name, s->label) << ' '
                    << formatMetricValue(s->gauge->value()) << '\n';
                break;
              case Kind::Histogram: {
                const Histogram &h = *s->histogram;
                std::uint64_t cum = 0;
                for (size_t i = 0; i < h.counts().size(); ++i) {
                    cum += h.counts()[i];
                    std::string le =
                        i < h.bounds().size()
                            ? formatMetricValue(h.bounds()[i])
                            : std::string("+Inf");
                    out << promSeriesName(fam->name + "_bucket", s->label,
                                          "le=\"" + le + "\"")
                        << ' ' << cum << '\n';
                }
                out << promSeriesName(fam->name + "_sum", s->label) << ' '
                    << formatMetricValue(h.sum()) << '\n';
                out << promSeriesName(fam->name + "_count", s->label)
                    << ' ' << h.count() << '\n';
                break;
              }
            }
        }
    }
}

void
MetricsRegistry::writeJson(std::ostream &out) const
{
    out << "{\n  \"families\": [\n";
    bool first_fam = true;
    for (const Family *fam : sortedFamilies()) {
        std::vector<const Series *> series;
        series.reserve(fam->series.size());
        for (const auto &s : fam->series)
            series.push_back(&s);
        std::sort(series.begin(), series.end(),
                  [](const Series *a, const Series *b) {
                      return a->label < b->label;
                  });

        if (!first_fam)
            out << ",\n";
        first_fam = false;
        out << "    {\"name\": " << util::jsonQuote(fam->name)
            << ", \"kind\": \"" << metricKindName(fam->kind)
            << "\", \"help\": " << util::jsonQuote(fam->help)
            << ", \"series\": [";
        bool first_series = true;
        for (const Series *s : series) {
            if (!first_series)
                out << ", ";
            first_series = false;
            out << "{\"label\": " << util::jsonQuote(s->label);
            switch (fam->kind) {
              case Kind::Counter:
                out << ", \"value\": "
                    << util::jsonNumber(s->counter->value());
                break;
              case Kind::Gauge:
                out << ", \"value\": "
                    << util::jsonNumber(s->gauge->value());
                break;
              case Kind::Histogram: {
                const Histogram &h = *s->histogram;
                out << ", \"sum\": " << util::jsonNumber(h.sum())
                    << ", \"count\": " << h.count() << ", \"buckets\": [";
                std::uint64_t cum = 0;
                for (size_t i = 0; i < h.counts().size(); ++i) {
                    cum += h.counts()[i];
                    if (i)
                        out << ", ";
                    out << "{\"le\": ";
                    if (i < h.bounds().size())
                        out << util::jsonNumber(h.bounds()[i]);
                    else
                        out << "\"+Inf\"";
                    out << ", \"count\": " << cum << '}';
                }
                out << ']';
                break;
              }
            }
            out << '}';
        }
        out << "]}";
    }
    out << "\n  ]\n}\n";
}

void
MetricsRegistry::forEachSeries(
    const std::function<void(const SeriesRef &)> &fn) const
{
    for (const Family *fam : sortedFamilies()) {
        std::vector<const Series *> series;
        series.reserve(fam->series.size());
        for (const auto &s : fam->series)
            series.push_back(&s);
        std::sort(series.begin(), series.end(),
                  [](const Series *a, const Series *b) {
                      return a->label < b->label;
                  });
        for (const Series *s : series) {
            SeriesRef ref{fam->name,    fam->kind,
                          fam->help,    s->label,
                          s->counter.get(), s->gauge.get(),
                          s->histogram.get()};
            fn(ref);
        }
    }
}

void
MetricsRegistry::saveState(ckpt::SectionWriter &w) const
{
    size_t persisted = 0;
    for (const auto &f : families_)
        if (!isRuntimeFamily(f->name))
            ++persisted;
    w.putU64(persisted);
    for (const auto &f : families_) {
        if (isRuntimeFamily(f->name))
            continue;
        w.putString(f->name);
        w.putU32(static_cast<uint32_t>(f->kind));
        w.putU64(f->series.size());
        for (const auto &s : f->series) {
            w.putString(s.label);
            switch (f->kind) {
              case Kind::Counter:
                w.putDouble(s.counter->value());
                break;
              case Kind::Gauge:
                w.putDouble(s.gauge->value());
                break;
              case Kind::Histogram:
                w.putU64Vec(s.histogram->counts());
                w.putU64(s.histogram->count());
                w.putDouble(s.histogram->sum());
                break;
            }
        }
    }
}

void
MetricsRegistry::loadState(ckpt::SectionReader &r)
{
    size_t persisted = 0;
    for (const auto &f : families_)
        if (!isRuntimeFamily(f->name))
            ++persisted;
    auto n = static_cast<size_t>(r.getU64());
    if (n != persisted)
        util::fatal("metrics restore: snapshot has %zu families, rebuilt "
                    "registry has %zu — config mismatch",
                    n, persisted);
    for (size_t i = 0; i < n; ++i) {
        std::string name = r.getString();
        if (isRuntimeFamily(name))
            util::fatal("metrics restore: snapshot contains runtime "
                        "family '%s' — written by an incompatible "
                        "version",
                        name.c_str());
        auto kind = static_cast<Kind>(r.getU32());
        Family *fam = nullptr;
        for (auto &f : families_) {
            if (f->name == name) {
                fam = f.get();
                break;
            }
        }
        if (!fam)
            util::fatal("metrics restore: snapshot family '%s' not "
                        "registered in this run — config mismatch",
                        name.c_str());
        if (fam->kind != kind)
            util::fatal("metrics restore: family '%s' kind mismatch",
                        name.c_str());
        auto series = static_cast<size_t>(r.getU64());
        if (series != fam->series.size())
            util::fatal("metrics restore: family '%s' has %zu series in "
                        "snapshot, %zu registered",
                        name.c_str(), series, fam->series.size());
        for (size_t j = 0; j < series; ++j) {
            std::string label = r.getString();
            Series *target = nullptr;
            for (auto &s : fam->series) {
                if (s.label == label) {
                    target = &s;
                    break;
                }
            }
            if (!target)
                util::fatal("metrics restore: series '%s' of family '%s' "
                            "not registered in this run",
                            label.c_str(), name.c_str());
            switch (kind) {
              case Kind::Counter:
                target->counter->restore(r.getDouble());
                break;
              case Kind::Gauge:
                target->gauge->set(r.getDouble());
                break;
              case Kind::Histogram: {
                std::vector<std::uint64_t> counts = r.getU64Vec();
                std::uint64_t count = r.getU64();
                double sum = r.getDouble();
                target->histogram->restore(std::move(counts), count, sum);
                break;
              }
            }
        }
    }
}

const char *
metricKindName(MetricsRegistry::Kind kind)
{
    switch (kind) {
      case MetricsRegistry::Kind::Counter:   return "counter";
      case MetricsRegistry::Kind::Gauge:     return "gauge";
      case MetricsRegistry::Kind::Histogram: return "histogram";
    }
    return "?";
}

std::string
formatMetricValue(double v)
{
    return util::jsonNumber(v);
}

} // namespace obs
} // namespace nps
