#include "obs/observability.h"

#include "util/logging.h"

namespace nps {
namespace obs {

Observability::Observability(const ObsConfig &cfg) : cfg_(cfg)
{
    // A live endpoint scrapes the registry, so serving implies it.
    if (cfg_.metrics || !cfg_.http.empty())
        metrics_ = std::make_unique<MetricsRegistry>();
    if (cfg_.trace) {
        if (cfg_.trace_capacity == 0)
            util::fatal("observability: trace_capacity must be > 0");
        trace_ = std::make_unique<TraceSink>(cfg_.trace_capacity);
        trace_->setFilter(cfg_.trace_filter);
    }
    if (cfg_.profile)
        profiler_ = std::make_unique<EngineProfiler>();
}

} // namespace obs
} // namespace nps
