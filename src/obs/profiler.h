/**
 * @file
 * EngineProfiler: per-actor, per-phase wall-clock timing for the tick
 * engine, with shard/thread attribution.
 *
 * The engine (when a profiler is attached) times every observe() and
 * step() call and the two engine-level phases (cluster evaluation,
 * metrics recording). Per-actor accumulators are pre-sized at plan
 * time; within a tick each actor is touched by exactly one worker (the
 * engine's shard contract), and the barriers between segments order
 * the accesses across ticks, so accumulation needs no locks.
 *
 * Profiling measures wall-clock only — it never feeds back into the
 * simulation arithmetic, so results stay bit-identical with or without
 * it. The *timings* naturally vary run to run; only the structural
 * fields (actors, shards, call counts) are deterministic.
 */

#ifndef NPS_OBS_PROFILER_H
#define NPS_OBS_PROFILER_H

#include <chrono>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace nps {
namespace obs {

/** Engine-level phases timed as a whole, not per actor. */
enum class EnginePhase
{
    Evaluate, //!< Cluster::evaluateTick
    Record,   //!< MetricsCollector::record
};

class EngineProfiler
{
  public:
    /** What the engine tells us about one scheduled actor. */
    struct ActorInfo
    {
        std::string name;
        long shard_key = -1; //!< Actor::kGlobalShard for global actors
    };

    /** Per-actor accumulated timings. */
    struct ActorStats
    {
        ActorInfo info;
        std::uint64_t observe_calls = 0;
        std::uint64_t observe_ns = 0;
        std::uint64_t step_calls = 0;
        std::uint64_t step_ns = 0;
        unsigned slot = 0; //!< worker slot that last ran the actor
    };

    using Clock = std::chrono::steady_clock;

    /** @return nanoseconds elapsed since @p start. */
    static std::uint64_t sinceNs(Clock::time_point start)
    {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now() - start)
                .count());
    }

    /**
     * (Re)announce the schedule. Called by the engine whenever it
     * rebuilds its plan; accumulated timings survive as long as the
     * actor list is unchanged, otherwise they reset.
     */
    void setSchedule(std::vector<ActorInfo> actors, unsigned threads);

    /** Record one observe() call of actor @p idx on worker @p slot. */
    void addObserve(size_t idx, std::uint64_t ns, unsigned slot)
    {
        ActorStats &s = actors_[idx];
        ++s.observe_calls;
        s.observe_ns += ns;
        s.slot = slot;
    }

    /** Record one step() call of actor @p idx on worker @p slot. */
    void addStep(size_t idx, std::uint64_t ns, unsigned slot)
    {
        ActorStats &s = actors_[idx];
        ++s.step_calls;
        s.step_ns += ns;
        s.slot = slot;
    }

    /** Accumulate one engine-level phase slice. */
    void addPhase(EnginePhase phase, std::uint64_t ns);

    /** Accumulate whole-run wall time and the ticks it covered. */
    void addRun(size_t ticks, std::uint64_t wall_ns)
    {
        ticks_ += ticks;
        wall_ns_ += wall_ns;
    }

    size_t ticks() const { return ticks_; }
    std::uint64_t wallNs() const { return wall_ns_; }
    unsigned threads() const { return threads_; }
    const std::vector<ActorStats> &actorStats() const { return actors_; }
    std::uint64_t phaseNs(EnginePhase phase) const;

    /**
     * Human-readable summary: per-actor rows sorted by total time
     * (descending, name tiebreak), engine phases, run totals.
     */
    void writeTable(std::ostream &out) const;

    /** The same data as JSON (actors in schedule order). */
    void writeJson(std::ostream &out) const;

  private:
    std::vector<ActorStats> actors_;
    std::uint64_t evaluate_ns_ = 0;
    std::uint64_t record_ns_ = 0;
    size_t ticks_ = 0;
    std::uint64_t wall_ns_ = 0;
    unsigned threads_ = 1;
};

} // namespace obs
} // namespace nps

#endif // NPS_OBS_PROFILER_H
