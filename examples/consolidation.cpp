/**
 * @file
 * Consolidation following the diurnal cycle.
 *
 * Sixty Blade A servers run office-hours workloads. The VM controller
 * packs VMs onto few machines overnight and spreads them out again as
 * the morning load builds, powering machines off and on. The example
 * prints, per VMC epoch, how many servers are powered on, how many
 * migrations the epoch performed, and the instantaneous group power —
 * the mechanics behind the paper's finding that consolidation provides
 * the majority of the savings at enterprise utilization levels.
 */

#include <cstdio>

#include "core/coordinator.h"
#include "core/scenarios.h"
#include "trace/workload.h"

int
main()
{
    using namespace nps;

    trace::GeneratorConfig gen;
    gen.trace_length = 2880;  // ten synthetic days
    trace::WorkloadLibrary library(gen);
    auto traces = library.mix(trace::Mix::Mid60);

    core::CoordinationConfig config = core::coordinatedConfig();
    core::Coordinator coordinator(config, sim::Topology::paper60(),
                                  model::bladeA(), traces);

    std::printf("%-8s %-12s %-12s %-12s %-12s\n", "tick", "servers-on",
                "migrations", "group W", "buffers l/e/g");
    unsigned long migrations_before = 0;
    const unsigned epoch = config.vmc.period;
    for (size_t t = 0; t < gen.trace_length; t += epoch) {
        coordinator.run(epoch);
        size_t on = 0;
        for (const auto &srv : coordinator.cluster().servers())
            on += srv.isOn(t + epoch - 1) ? 1 : 0;
        const auto &stats = coordinator.vmc()->stats();
        std::printf("%-8zu %-12zu %-12lu %-12.0f %.2f/%.2f/%.2f\n",
                    t + epoch, on, stats.migrations - migrations_before,
                    coordinator.cluster().lastTick().total_power,
                    coordinator.vmc()->bufferLoc(),
                    coordinator.vmc()->bufferEnc(),
                    coordinator.vmc()->bufferGrp());
        migrations_before = stats.migrations;
    }

    // Compare with the unmanaged baseline.
    core::Coordinator baseline(core::baselineConfig(),
                               sim::Topology::paper60(), model::bladeA(),
                               traces);
    baseline.run(gen.trace_length);
    auto m = coordinator.summary();
    std::printf("\npower savings: %.1f %%  perf loss: %.2f %%  "
                "server-violations: %.2f %%\n",
                sim::powerSavings(baseline.summary(), m) * 100.0,
                m.perf_loss * 100.0, m.sm_violation * 100.0);
    std::printf("total migrations: %lu over %lu epochs "
                "(adopted %lu plans)\n",
                coordinator.vmc()->stats().migrations,
                coordinator.vmc()->stats().epochs,
                coordinator.vmc()->stats().adoptions);
    return 0;
}
