/**
 * @file
 * Multi-level power capping under a load surge.
 *
 * A 40-server Server B cluster (two enclosures + standalones) runs a
 * quiet workload that surges to near-saturation mid-run — the scenario
 * where group, enclosure, and local budgets all start to bind. The
 * example prints a downsampled timeline of group power against the
 * group budget, demonstrating that violations stay transient and
 * bounded while the hierarchy re-provisions budgets, and dumps the
 * enclosure managers' final per-blade grants.
 */

#include <algorithm>
#include <cstdio>

#include "core/coordinator.h"
#include "core/scenarios.h"
#include "trace/scenarios.h"

namespace {

/** Quiet -> surge -> quiet demand shape, one trace per server. */
std::vector<nps::trace::UtilizationTrace>
surgeTraces(size_t n, size_t length)
{
    std::vector<nps::trace::UtilizationTrace> out;
    for (size_t i = 0; i < n; ++i) {
        out.push_back(nps::trace::surgeScenario(
            "surge" + std::to_string(i), 0.25, 0.85, length));
    }
    return out;
}

} // namespace

int
main()
{
    using namespace nps;

    constexpr size_t kTicks = 1800;
    sim::Topology topo{40, 2, 16};

    core::CoordinationConfig config = core::coordinatedConfig();
    // Consolidation off: this example isolates the capping hierarchy.
    config.enable_vmc = false;

    core::Coordinator coordinator(config, topo, model::serverB(),
                                  surgeTraces(40, kTicks),
                                  /*keep_series=*/true);
    double cap_grp = coordinator.cluster().capGrp();
    std::printf("group budget: %.0f W (20%% off the %.0f W max)\n\n",
                cap_grp, coordinator.cluster().groupMaxPower());

    coordinator.run(kTicks);

    // Downsampled timeline: group power vs the budget.
    const auto &series = coordinator.metrics().powerSeries();
    std::printf("%-8s %-12s %-10s %s\n", "tick", "group W", "vs cap",
                "bar");
    for (size_t t = 0; t < series.size(); t += 100) {
        double frac = series[t] / cap_grp;
        int bar = static_cast<int>(std::min(frac, 1.4) * 40.0);
        std::printf("%-8zu %-12.0f %-10.3f %.*s%s\n", t, series[t], frac,
                    bar,
                    "========================================"
                    "================",
                    frac > 1.0 ? " <OVER" : "");
    }

    auto m = coordinator.summary();
    std::printf("\nviolations: group %.2f %% of ticks (longest run %zu "
                "ticks), enclosure %.2f %%, server %.2f %%\n",
                m.gm_violation * 100.0,
                coordinator.metrics().longestGroupViolationRun(),
                m.em_violation * 100.0, m.sm_violation * 100.0);
    std::printf("performance loss over the whole run: %.2f %%\n",
                m.perf_loss * 100.0);

    // Show how the first enclosure's budget was divided at the end.
    const auto &em = *coordinator.ems()[0];
    std::printf("\nenclosure 0 effective cap %.0f W; final per-blade "
                "grants (W):\n ", em.effectiveCap());
    for (double g : em.lastGrants())
        std::printf(" %.0f", g);
    std::printf("\n");
    return 0;
}
