/**
 * @file
 * Fault tolerance: ride out an enclosure-manager outage mid-run.
 *
 * The enclosure manager of enclosure 0 goes dark for 300 ticks. Its
 * blade server managers keep enforcing the last budget they were granted
 * until the lease (three parent epochs) lapses, then degrade to a
 * conservative fraction of their local static cap — so the enclosure
 * stays inside its envelope with nobody upstairs answering. When the EM
 * restarts cold, fresh grants revive the leases and the hierarchy
 * reconverges.
 *
 * See docs/FAULTS.md for the script grammar and the degradation model.
 */

#include <cstdio>

#include "core/coordinator.h"
#include "core/scenarios.h"
#include "trace/workload.h"

int
main()
{
    using namespace nps;

    constexpr size_t kTicks = 1200;

    // Workloads and system: the paper's 60-server topology under a
    // medium-heavy mix.
    trace::GeneratorConfig gen;
    gen.trace_length = kTicks;
    trace::WorkloadLibrary library(gen);
    auto traces = library.mix(trace::Mix::High60);
    sim::Topology topo = sim::Topology::paper60();
    model::MachineSpec machine = model::bladeA();

    // Deployment: the coordinated stack with the fault layer armed.
    // The script takes EM 0 down from tick 300 to tick 600; leases
    // default to 3 * max(T_em, T_gm) ticks, and the blade SMs fall back
    // to 90% of their local cap when theirs lapse.
    core::CoordinationConfig config = core::coordinatedConfig();
    config.faults.enabled = true;
    config.faults.script = "outage em 0 300 600";
    config.sm.lease_fallback = 0.90;

    core::Coordinator coordinator(config, topo, machine, traces,
                                  /*keep_series=*/true);
    coordinator.run(kTicks);

    sim::MetricsSummary m = coordinator.summary();
    std::printf("simulated %zu ticks; EM 0 down for ticks [300, 600)\n",
                m.ticks);
    std::printf("power:  mean %.1f W, peak %.1f W\n", m.mean_power,
                m.peak_power);
    std::printf("caps:   GM %.2f %%  EM %.2f %%  SM %.2f %% of ticks "
                "violated\n", m.gm_violation * 100.0,
                m.em_violation * 100.0, m.sm_violation * 100.0);

    // The degradation counters tell the outage story.
    const fault::DegradeStats &d = m.degrade;
    std::printf("\ndegradation while riding out the outage:\n");
    std::printf("  ticks down          %8lu\n", d.outage_ticks);
    std::printf("  steps skipped       %8lu\n", d.outage_steps);
    std::printf("  cold restarts       %8lu\n", d.restarts);
    std::printf("  leases lapsed       %8lu\n", d.lease_expiries);
    std::printf("  fallback-cap steps  %8lu\n", d.lease_fallback_steps);

    // Per-blade view: every SM under EM 0 degraded, nobody else did.
    const auto &enc = coordinator.cluster().enclosures()[0];
    std::printf("\nenclosure 0 blades:\n");
    for (sim::ServerId sid : enc.members()) {
        const auto &sm = *coordinator.sms()[sid];
        std::printf("  server %2u: lease expiries %lu, fallback steps "
                    "%lu\n", sid, sm.degradeStats().lease_expiries,
                    sm.degradeStats().lease_fallback_steps);
    }
    return 0;
}
