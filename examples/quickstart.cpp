/**
 * @file
 * Quickstart: build a small coordinated data center, run a day of
 * simulated time, and print the paper's headline metrics.
 *
 * This is the minimal end-to-end use of the public API:
 *   1. generate (or load) utilization traces,
 *   2. pick a machine model and a topology,
 *   3. choose a scenario configuration,
 *   4. run the Coordinator and read the metrics.
 */

#include <cstdio>

#include "core/coordinator.h"
#include "core/scenarios.h"
#include "trace/workload.h"

int
main()
{
    using namespace nps;

    // 1. Workloads: a deterministic synthetic campaign standing in for
    //    the paper's nine-enterprise trace collection.
    trace::GeneratorConfig gen;
    gen.trace_length = 1440;  // five synthetic days at 288 ticks/day
    trace::WorkloadLibrary library(gen);
    auto traces = library.mix(trace::Mix::High60);

    // 2. System: sixty Blade A servers as two 20-blade enclosures plus
    //    twenty standalone machines (the paper's 60-server topology).
    sim::Topology topo = sim::Topology::paper60();
    model::MachineSpec machine = model::bladeA();

    // 3. Deployment: the full coordinated architecture of Figure 2 —
    //    per-server efficiency controllers and power cappers, enclosure
    //    and group managers, and the consolidating VM controller.
    core::CoordinationConfig config = core::coordinatedConfig();

    // 4. Simulate and report.
    core::Coordinator coordinator(config, topo, machine, traces);
    coordinator.run(gen.trace_length);

    sim::MetricsSummary m = coordinator.summary();
    std::printf("simulated %zu ticks over %zu servers / %zu VMs\n",
                m.ticks, coordinator.cluster().numServers(),
                coordinator.cluster().numVms());
    std::printf("mean power:        %8.1f W (peak %.1f W)\n",
                m.mean_power, m.peak_power);
    std::printf("performance loss:  %8.2f %%\n", m.perf_loss * 100.0);
    std::printf("budget violations: group %.2f %%, enclosure %.2f %%, "
                "server %.2f %%\n", m.gm_violation * 100.0,
                m.em_violation * 100.0, m.sm_violation * 100.0);
    if (coordinator.vmc()) {
        const auto &v = coordinator.vmc()->stats();
        std::printf("VMC: %lu epochs, %lu migrations, buffers "
                    "(loc/enc/grp) = %.2f/%.2f/%.2f\n", v.epochs,
                    v.migrations, coordinator.vmc()->bufferLoc(),
                    coordinator.vmc()->bufferEnc(),
                    coordinator.vmc()->bufferGrp());
    }

    // Compare against the no-power-management baseline over the same
    // traces to get the headline "power savings" number.
    core::Coordinator baseline(core::baselineConfig(), topo, machine,
                               traces);
    baseline.run(gen.trace_length);
    double savings = sim::powerSavings(baseline.summary(), m);
    std::printf("power savings vs unmanaged baseline: %.1f %%\n",
                savings * 100.0);
    return 0;
}
