/**
 * @file
 * Heterogeneous fleets and the calibration flow (Section 6, extensions
 * 5 and the Section 4.1 methodology).
 *
 * 1. "Calibrate" a new machine model against a simulated
 *    machine-under-test with a noisy power meter, recovering linear
 *    per-P-state models by least squares — exactly the paper's flow for
 *    Blade A and Server B, minus the real hardware.
 * 2. Build a mixed fleet (calibrated blades + stock Server Bs) and run
 *    the full coordinated architecture over it; the controllers consume
 *    only each machine's own model, so heterogeneity needs no special
 *    handling ("this can be easily addressed by including a range of
 *    different models in the controllers").
 */

#include <cstdio>

#include "core/coordinator.h"
#include "core/scenarios.h"
#include "model/calibration.h"
#include "trace/workload.h"

int
main()
{
    using namespace nps;

    // --- 1. Calibration against the (simulated) machine under test.
    model::SimulatedMachine mut(model::bladeA(), /*noise_watts=*/1.0,
                                /*seed=*/2008);
    model::Calibrator calibrator({0.0, 0.25, 0.5, 0.75, 1.0},
                                 /*repeats=*/15);
    model::MachineSpec calibrated =
        calibrator.buildSpec(mut, "BladeA-recal", 2.0, 8);
    std::printf("calibrated '%s' (%zu P-states):\n",
                calibrated.name().c_str(), calibrated.pstates().size());
    for (size_t p = 0; p < calibrated.pstates().size(); ++p) {
        const auto &s = calibrated.pstates().at(p);
        std::printf("  P%zu: %4.0f MHz  pow = %5.2f*r + %5.2f W\n", p,
                    s.freq_mhz, s.dyn_watts, s.idle_watts);
    }

    // --- 2. A mixed fleet: 30 recalibrated blades + 30 Server Bs.
    model::MachineRegistry registry = model::MachineRegistry::standard();
    registry.add(calibrated);
    std::vector<std::shared_ptr<const model::MachineSpec>> specs;
    for (unsigned i = 0; i < 60; ++i) {
        specs.push_back(registry.get(i < 30 ? "BladeA-recal"
                                            : "ServerB"));
    }

    trace::GeneratorConfig gen;
    gen.trace_length = 1440;
    trace::WorkloadLibrary library(gen);
    auto traces = library.mix(trace::Mix::Mid60);

    core::Coordinator coordinator(core::coordinatedConfig(),
                                  sim::Topology::paper60(), specs,
                                  traces);
    coordinator.run(gen.trace_length);

    core::Coordinator baseline(core::baselineConfig(),
                               sim::Topology::paper60(), specs, traces);
    baseline.run(gen.trace_length);

    auto m = coordinator.summary();
    std::printf("\nmixed fleet after %zu ticks:\n", m.ticks);
    std::printf("  power savings: %.1f %%  perf loss: %.2f %%\n",
                sim::powerSavings(baseline.summary(), m) * 100.0,
                m.perf_loss * 100.0);
    std::printf("  violations: group %.2f %%, enclosure %.2f %%, "
                "server %.2f %%\n", m.gm_violation * 100.0,
                m.em_violation * 100.0, m.sm_violation * 100.0);

    size_t blades_on = 0, servers_on = 0;
    for (const auto &srv : coordinator.cluster().servers()) {
        if (!srv.isOn(gen.trace_length - 1))
            continue;
        if (srv.spec().name() == "BladeA-recal")
            ++blades_on;
        else
            ++servers_on;
    }
    std::printf("  powered on at the end: %zu blades, %zu 2U servers "
                "(consolidation favors the low-power blades)\n",
                blades_on, servers_on);
    return 0;
}
