/**
 * @file
 * The whole facility: power management + cooling, end to end.
 *
 * Builds the paper's 60-server topology with one CRAC cooling zone per
 * enclosure (plus a room zone for the standalone machines), attaches
 * the cooling manager next to the full coordinated power stack, and
 * reports the data-center operator's view: IT power, cooling power,
 * PUE, zone temperatures — demonstrating the Section 7 thesis that
 * coordinated power management composes into facility savings with no
 * explicit cross-domain protocol.
 */

#include <cstdio>
#include <memory>

#include "controllers/cooling_manager.h"
#include "core/coordinator.h"
#include "core/scenarios.h"
#include "trace/workload.h"

namespace {

using namespace nps;

std::vector<sim::CoolingZone>
buildZones(const sim::Cluster &cluster)
{
    sim::CoolingZoneParams p;
    p.thermal_mass = 2000.0;
    p.leak_per_tick = 0.001;
    p.crac_capacity = 6.0e4;
    std::vector<sim::CoolingZone> zones;
    for (const auto &enc : cluster.enclosures())
        zones.emplace_back("zone-" + enc.name(), enc.members(), p);
    if (!cluster.standaloneServers().empty())
        zones.emplace_back("zone-room", cluster.standaloneServers(), p);
    return zones;
}

} // namespace

int
main()
{
    trace::GeneratorConfig gen;
    gen.trace_length = 2880;
    trace::WorkloadLibrary library(gen);
    auto traces = library.mix(trace::Mix::Mid60);

    core::Coordinator coordinator(core::coordinatedConfig(),
                                  sim::Topology::paper60(),
                                  model::bladeA(), traces);
    auto cooling = std::make_shared<controllers::CoolingManager>(
        coordinator.cluster(), buildZones(coordinator.cluster()),
        controllers::CoolingManager::Params{});
    coordinator.engine().addActor(cooling);

    std::printf("%-8s %-10s %-10s %-8s", "tick", "IT W", "CRAC W",
                "PUE");
    for (const auto &zone : cooling->zones())
        std::printf(" %-10s", zone.name().c_str());
    std::printf("\n");

    for (size_t t = 0; t < gen.trace_length; t += 360) {
        coordinator.run(360);
        double it = coordinator.cluster().lastTick().total_power;
        double crac = cooling->lastCoolingPower();
        std::printf("%-8zu %-10.0f %-10.0f %-8.3f", t + 360, it, crac,
                    (it + crac) / it);
        for (const auto &zone : cooling->zones())
            std::printf(" %-10.1f", zone.temperature());
        std::printf("\n");
    }

    auto m = coordinator.summary();
    double facility = m.energy + cooling->coolingEnergy();
    std::printf("\nIT energy:      %12.0f watt-ticks\n", m.energy);
    std::printf("cooling energy: %12.0f watt-ticks (PUE %.3f)\n",
                cooling->coolingEnergy(), facility / m.energy);
    std::printf("hottest zone:   %.1f C, redline %s\n",
                cooling->hottestZone(),
                cooling->anyRedline() ? "CROSSED" : "never crossed");
    std::printf("perf loss:      %.2f %%\n", m.perf_loss * 100.0);
    return 0;
}
