/**
 * @file
 * The power struggle, live: EC vs. SM on a single server.
 *
 * Reproduces the paper's lab validation (Section 5.1): an efficiency
 * controller and a power capper from different vendors, each correct in
 * isolation, deployed together on one machine under sustained load. In
 * the uncoordinated wiring both drive the P-state directly — the capper
 * throttles, the EC (seeing utilization above its target) un-throttles
 * a tick later — so the time-average power stays above the thermal
 * budget and the machine heats into failover. The coordinated wiring
 * nests the capper on the EC's reference and stays cool.
 *
 * Prints a side-by-side temperature trajectory.
 */

#include <cstdio>
#include <memory>

#include "controllers/efficiency.h"
#include "controllers/server_manager.h"
#include "model/machine.h"
#include "sim/server.h"
#include "sim/thermal.h"
#include "trace/trace.h"

namespace {

using namespace nps;

/** One server + EC + SM + thermal model, stepped together. */
class Rig
{
  public:
    explicit Rig(bool coordinated)
        : spec_(std::make_shared<const model::MachineSpec>(
              model::bladeA())),
          server_(0, spec_, 0.10, 0.10),
          ec_(server_, {}),
          sm_(server_, coordinated ? &ec_ : nullptr, kBudgetWatts,
              smParams(coordinated)),
          thermal_(thermalParams())
    {
        vms_.emplace_back(
            0, trace::UtilizationTrace(
                   "sustained", trace::WorkloadClass::Database,
                   std::vector<double>(16, 0.9)));
        server_.addVm(0);
    }

    void
    step(size_t tick)
    {
        server_.evaluate(tick, vms_);
        thermal_.step(server_.lastPower());
        sm_.observe(tick + 1);
        if ((tick + 1) % sm_.period() == 0)
            sm_.step(tick + 1);
        ec_.step(tick + 1);
    }

    double temperature() const { return thermal_.temperature(); }
    double power() const { return server_.lastPower(); }
    size_t pstate() const { return server_.pstate(); }
    bool failedOver() const { return thermal_.failedOver(); }
    size_t failoverTick() const { return thermal_.failoverTick(); }

    static constexpr double kBudgetWatts = 65.0;

  private:
    static controllers::ServerManager::Params
    smParams(bool coordinated)
    {
        controllers::ServerManager::Params p;
        p.mode = coordinated
                     ? controllers::ServerManager::Mode::Coordinated
                     : controllers::ServerManager::Mode::DirectPState;
        return p;
    }

    static sim::ThermalParams
    thermalParams()
    {
        // Budget == sustainable power: staying under it is staying cool.
        sim::ThermalParams p;
        p.c_per_watt = (p.failover_c - p.ambient_c) / kBudgetWatts;
        return p;
    }

    std::shared_ptr<const model::MachineSpec> spec_;
    sim::Server server_;
    std::vector<sim::VirtualMachine> vms_;
    controllers::EfficiencyController ec_;
    controllers::ServerManager sm_;
    sim::ThermalModel thermal_;
};

} // namespace

int
main()
{
    constexpr size_t kTicks = 3000;
    Rig coordinated(true);
    Rig uncoordinated(false);

    std::printf("sustained 90%% load; thermal budget %.0f W "
                "(= sustainable power); failover at 85 C\n\n",
                Rig::kBudgetWatts);
    std::printf("%-8s | %-10s %-8s %-6s | %-10s %-8s %-6s\n", "tick",
                "coord W", "temp C", "P", "uncoord W", "temp C", "P");
    for (size_t t = 0; t < kTicks; ++t) {
        coordinated.step(t);
        uncoordinated.step(t);
        if (t % 250 == 0 || (uncoordinated.failedOver() &&
                             t == uncoordinated.failoverTick())) {
            std::printf("%-8zu | %-10.1f %-8.1f P%-5zu | %-10.1f %-8.1f "
                        "P%zu%s\n", t, coordinated.power(),
                        coordinated.temperature(), coordinated.pstate(),
                        uncoordinated.power(),
                        uncoordinated.temperature(),
                        uncoordinated.pstate(),
                        uncoordinated.temperature() > 85.0
                            ? "  ** FAILOVER **" : "");
        }
    }

    std::printf("\ncoordinated:   %s (final %.1f C)\n",
                coordinated.failedOver() ? "THERMAL FAILOVER"
                                         : "stayed cool",
                coordinated.temperature());
    std::printf("uncoordinated: %s", uncoordinated.failedOver()
                                         ? "THERMAL FAILOVER at tick "
                                         : "stayed cool\n");
    if (uncoordinated.failedOver())
        std::printf("%zu\n", uncoordinated.failoverTick());
    return 0;
}
