/**
 * @file
 * Design-choice ablation for the VMC's packing headroom (DESIGN.md §5):
 * the capacity target and the demand-spread allowance together decide
 * how hard consolidation pushes against the capping levels. This bench
 * sweeps both and reports the savings / violations / performance
 * triangle, quantifying the choice behind the shipped defaults
 * (capacity 0.90, spread 0.5 sigma).
 *
 * Expected shape: tighter packing (higher capacity target, lower
 * spread) buys savings at the cost of violations and performance; the
 * violation-feedback buffers soften but do not eliminate the trend.
 */

#include <iostream>

#include "common.h"
#include "core/scenarios.h"
#include "util/table.h"

int
main(int argc, char **argv)
{
    using namespace nps;
    auto opts = bench::parseArgs(argc, argv);
    bench::BenchReport report("tbl_vmc_knobs", opts);
    bench::banner("Design ablation: VMC packing headroom",
                  "DESIGN.md design-choice ablation (BladeA/180)", opts);

    util::Table table("capacity target x demand-spread allowance");
    auto header = std::vector<std::string>{"capacity", "spread sigma"};
    for (const auto &h : bench::metricHeader())
        header.push_back(h);
    header.push_back("migrations");
    table.header(header);

    for (double capacity : {0.55, 0.75, 0.95}) {
        for (double spread : {0.0, 0.5, 1.0}) {
            core::ExperimentSpec spec;
            spec.config = core::coordinatedConfig();
            spec.config.vmc.capacity_target = capacity;
            spec.config.vmc.spread_sigma = spread;
            spec.mix = trace::Mix::All180;
            spec.ticks = opts.ticks;
            auto r = report.run(
                spec, "capacity=" + util::Table::num(capacity, 2) +
                          "/spread=" + util::Table::num(spread, 1));
            std::vector<std::string> row{util::Table::num(capacity, 2),
                                         util::Table::num(spread, 1)};
            for (const auto &cell : bench::metricCells(r))
                row.push_back(cell);
            row.push_back(std::to_string(r.vmc.migrations));
            table.row(row);
        }
        table.separator();
    }
    table.print(std::cout);
    report.write();
    return 0;
}
