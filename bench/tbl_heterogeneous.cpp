/**
 * @file
 * Section 6 extension (5) ablation: heterogeneity in system types.
 *
 * Compares three 60-server fleets over the same workloads: all Blade A,
 * all Server B, and an even mix. The coordinated controllers consume
 * only per-machine models, so the mixed fleet needs no special
 * handling; the interesting result is *placement*: the VMC steers load
 * toward whichever machines serve it for the least power.
 *
 * Expected shape: the mixed fleet's savings land between the
 * homogeneous fleets', and at the end of the run the low-power blades
 * host a disproportionate share of the powered-on capacity.
 */

#include <iostream>

#include "common.h"
#include "core/coordinator.h"
#include "core/scenarios.h"
#include "trace/workload.h"
#include "util/table.h"

namespace {

nps::sim::MetricsSummary
runFleet(const std::vector<std::shared_ptr<
             const nps::model::MachineSpec>> &specs,
         const std::vector<nps::trace::UtilizationTrace> &traces,
         size_t ticks, bool baseline, size_t *blades_on,
         size_t *servers_on)
{
    using namespace nps;
    core::Coordinator c(baseline ? core::baselineConfig()
                                 : core::coordinatedConfig(),
                        sim::Topology::paper60(), specs, traces);
    c.run(ticks);
    if (blades_on && servers_on) {
        *blades_on = 0;
        *servers_on = 0;
        for (const auto &srv : c.cluster().servers()) {
            if (!srv.isOn(ticks - 1))
                continue;
            if (srv.spec().name() == "BladeA")
                ++*blades_on;
            else
                ++*servers_on;
        }
    }
    return c.summary();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace nps;
    auto opts = bench::parseArgs(argc, argv);
    bench::banner("Section 6: heterogeneous fleets",
                  "Section 6 extension (5), Mid60 workloads", opts);

    auto blade = std::make_shared<const model::MachineSpec>(
        model::bladeA());
    auto server = std::make_shared<const model::MachineSpec>(
        model::serverB());
    auto traces = bench::sharedRunner().library().mix(trace::Mix::Mid60);

    util::Table table("Fleet composition study");
    table.header({"fleet", "pwr save %", "perf loss %", "viol SM %",
                  "on: blades", "on: 2U"});

    struct FleetDef
    {
        const char *name;
        unsigned blades_of_60;
    };
    for (auto def : {FleetDef{"60x BladeA", 60},
                     FleetDef{"30/30 mixed", 30},
                     FleetDef{"60x ServerB", 0}}) {
        std::vector<std::shared_ptr<const model::MachineSpec>> specs;
        for (unsigned i = 0; i < 60; ++i) {
            // Interleave so both enclosures hold both kinds.
            bool is_blade = def.blades_of_60 == 60 ||
                            (def.blades_of_60 == 30 && i % 2 == 0);
            specs.push_back(is_blade ? blade : server);
        }
        size_t blades_on = 0, servers_on = 0;
        auto scen = runFleet(specs, traces, opts.ticks, false,
                             &blades_on, &servers_on);
        auto base = runFleet(specs, traces, opts.ticks, true, nullptr,
                             nullptr);
        table.row({def.name,
                   util::Table::pct(sim::powerSavings(base, scen)),
                   util::Table::pct(scen.perf_loss, 2),
                   util::Table::pct(scen.sm_violation, 2),
                   std::to_string(blades_on),
                   std::to_string(servers_on)});
    }
    table.print(std::cout);
    std::cout << "\nexpected: mixed fleet between the homogeneous ones; "
                 "consolidation favors the blades\n";
    return 0;
}
