/**
 * @file
 * Figure 7 reproduction: coordinated vs. uncoordinated deployments for
 * four configurations (Blade A / Server B x 180 / 60HH workloads),
 * reporting budget violations at the group, enclosure, and server levels
 * plus performance loss — all normalized against the
 * no-power-management baseline — and the Section 5.1 headline power
 * savings.
 */

#include <cstdio>
#include <iostream>

#include "common.h"
#include "core/scenarios.h"
#include "util/table.h"

int
main(int argc, char **argv)
{
    using namespace nps;
    auto opts = bench::parseArgs(argc, argv);
    bench::BenchReport report("fig7_coordination", opts);
    bench::banner("Figure 7: benefits from coordination",
                  "Figure 7 + Section 5.1 headline numbers", opts);

    struct Config
    {
        const char *machine;
        trace::Mix mix;
    };
    const Config configs[] = {
        {"BladeA", trace::Mix::All180},
        {"BladeA", trace::Mix::HH60},
        {"ServerB", trace::Mix::All180},
        {"ServerB", trace::Mix::HH60},
    };

    util::Table table("Coordinated vs uncoordinated (violations and "
                      "losses are negative outcomes; savings positive)");
    auto header = std::vector<std::string>{"system/workload", "solution"};
    for (const auto &h : bench::metricHeader())
        header.push_back(h);
    table.header(header);

    for (const auto &cfg : configs) {
        for (auto scenario : {core::Scenario::Coordinated,
                              core::Scenario::Uncoordinated}) {
            core::ExperimentSpec spec;
            spec.label = std::string(cfg.machine) + "/" +
                         trace::mixName(cfg.mix);
            spec.config = core::scenarioConfig(scenario);
            spec.machine = cfg.machine;
            spec.mix = cfg.mix;
            spec.ticks = opts.ticks;
            auto r = report.run(spec, spec.label + "/" +
                                          core::scenarioName(scenario));

            std::vector<std::string> row{spec.label,
                                         core::scenarioName(scenario)};
            for (const auto &cell : bench::metricCells(r))
                row.push_back(cell);
            table.row(row);

            if (cfg.machine == std::string("BladeA") &&
                cfg.mix == trace::Mix::All180 &&
                scenario == core::Scenario::Coordinated) {
                std::printf("Section 5.1 headline (BladeA/180, "
                            "coordinated): %.0f%% power saved, %.1f%% "
                            "perf loss, %.1f%% local violations "
                            "(paper: 64%%, ~3%%, ~5%%)\n\n",
                            r.power_savings * 100.0,
                            r.scenario.perf_loss * 100.0,
                            r.scenario.sm_violation * 100.0);
            }
        }
        table.separator();
    }
    table.print(std::cout);
    report.write();
    return 0;
}
