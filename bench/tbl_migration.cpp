/**
 * @file
 * Section 5.4 reproduction: sensitivity to migration overhead. Runs the
 * coordinated solution with migration overheads of 10% (base), 20%, and
 * 50% of VM load during the pre-copy window.
 *
 * Expected shape (paper): "performance degradations increased, but were
 * still less than 10% in all cases for the coordinated solution."
 */

#include <iostream>

#include "common.h"
#include "core/scenarios.h"
#include "util/table.h"

int
main(int argc, char **argv)
{
    using namespace nps;
    auto opts = bench::parseArgs(argc, argv);
    bench::BenchReport report("tbl_migration", opts);
    bench::banner("Section 5.4: migration overhead sensitivity",
                  "Section 5.4 (alpha_mu sweep)", opts);

    util::Table table("Coordinated solution under rising migration "
                      "overheads");
    auto header = std::vector<std::string>{"system", "alpha_mu"};
    for (const auto &h : bench::metricHeader())
        header.push_back(h);
    header.push_back("migrations");
    table.header(header);

    for (const char *machine : {"BladeA", "ServerB"}) {
        for (double alpha_m : {0.10, 0.20, 0.50}) {
            core::ExperimentSpec spec;
            spec.config = core::coordinatedConfig();
            spec.config.alpha_m = alpha_m;
            spec.machine = machine;
            spec.mix = trace::Mix::All180;
            spec.ticks = opts.ticks;
            auto r = report.run(spec, std::string(machine) +
                                          "/alpha_mu=" +
                                          util::Table::pct(alpha_m, 0));
            std::vector<std::string> row{
                machine, util::Table::pct(alpha_m, 0) + "%"};
            for (const auto &cell : bench::metricCells(r))
                row.push_back(cell);
            row.push_back(std::to_string(r.vmc.migrations));
            table.row(row);
        }
        table.separator();
    }
    table.print(std::cout);
    std::cout << "\npaper claim: perf loss stays below 10% in all "
                 "cases\n";
    report.write();
    return 0;
}
