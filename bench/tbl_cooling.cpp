/**
 * @file
 * Section 7 future-work reproduction: coordination with the cooling
 * domain. Runs the baseline, uncoordinated, and coordinated stacks with
 * the cooling substrate attached (one CRAC zone per enclosure plus a
 * room zone for the standalone servers) and reports facility-level
 * results: IT energy, CRAC energy, PUE, hottest zone.
 *
 * Expected shape: cooling energy tracks IT energy with no explicit
 * interface between the domains — power coordination is automatically
 * cooling coordination — and the CRAC COP curve makes every saved IT
 * watt worth more than a watt at the meter.
 */

#include <iostream>

#include "common.h"
#include "controllers/cooling_manager.h"
#include "core/coordinator.h"
#include "core/scenarios.h"
#include "trace/workload.h"
#include "util/table.h"

namespace {

using namespace nps;

/** One cooling zone per enclosure plus one for the standalone servers. */
std::vector<sim::CoolingZone>
buildZones(const sim::Cluster &cluster)
{
    sim::CoolingZoneParams p;
    // Data-center rooms barely leak heat passively: without the CRACs
    // these zones would run away, so active cooling carries the load.
    p.thermal_mass = 2000.0;
    p.leak_per_tick = 0.001;
    p.crac_capacity = 6.0e4;
    std::vector<sim::CoolingZone> zones;
    for (const auto &enc : cluster.enclosures()) {
        zones.emplace_back("zone-" + enc.name(), enc.members(), p);
    }
    if (!cluster.standaloneServers().empty())
        zones.emplace_back("zone-room", cluster.standaloneServers(), p);
    return zones;
}

struct FacilityResult
{
    double it_energy = 0.0;
    double cooling_energy = 0.0;
    double hottest = 0.0;
    bool redline = false;
};

FacilityResult
run(const core::CoordinationConfig &cfg,
    const std::vector<trace::UtilizationTrace> &traces, size_t ticks)
{
    core::Coordinator c(cfg, sim::Topology::paper60(), model::bladeA(),
                        traces);
    auto cm = std::make_shared<controllers::CoolingManager>(
        c.cluster(), buildZones(c.cluster()),
        controllers::CoolingManager::Params{});
    c.engine().addActor(cm);
    c.run(ticks);
    FacilityResult r;
    r.it_energy = c.summary().energy;
    r.cooling_energy = cm->coolingEnergy();
    r.hottest = cm->hottestZone();
    r.redline = cm->anyRedline();
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace nps;
    auto opts = bench::parseArgs(argc, argv);
    bench::banner("Section 7: cooling-domain coordination",
                  "future-work extension: CRAC zones + cooling manager",
                  opts);

    auto traces = bench::sharedRunner().library().mix(
        trace::Mix::Mid60);

    util::Table table("Facility view, BladeA/60M (energies in "
                      "megawatt-ticks)");
    table.header({"deployment", "IT energy", "CRAC energy", "PUE",
                  "hottest C", "redline"});

    struct Row
    {
        const char *label;
        core::CoordinationConfig cfg;
    };
    for (const auto &row :
         {Row{"Baseline", core::baselineConfig()},
          Row{"Uncoordinated", core::uncoordinatedConfig()},
          Row{"Coordinated", core::coordinatedConfig()}}) {
        auto r = run(row.cfg, traces, opts.ticks);
        double pue = (r.it_energy + r.cooling_energy) / r.it_energy;
        table.row({row.label, util::Table::num(r.it_energy / 1e6, 2),
                   util::Table::num(r.cooling_energy / 1e6, 2),
                   util::Table::num(pue, 3),
                   util::Table::num(r.hottest, 1),
                   r.redline ? "YES" : "no"});
    }
    table.print(std::cout);
    std::cout << "\nexpected: cooling energy tracks IT energy; saved IT "
                 "watts compound at the meter via the CRAC COP\n";
    return 0;
}
