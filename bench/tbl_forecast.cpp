/**
 * @file
 * Design ablation: predictive consolidation. Drives a fleet whose
 * demand ramps steadily upward across the run (a growing service) and
 * compares the VMC's reactive packing (last epoch's mean) against the
 * forecasting variants: on ramps, a reactive packer is persistently one
 * epoch behind, shipping placements that are already too tight when
 * they land.
 *
 * Expected shape: Holt-linear forecasting reduces performance loss and
 * server-level violations on the ramp at a small savings cost; on the
 * stationary mix all methods coincide.
 */

#include <iostream>

#include "common.h"
#include "core/coordinator.h"
#include "core/scenarios.h"
#include "trace/scenarios.h"
#include "trace/workload.h"
#include "util/table.h"

namespace {

using namespace nps;

struct Row
{
    const char *label;
    bool use_forecast;
    controllers::ForecastMethod method;
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace nps;
    auto opts = bench::parseArgs(argc, argv);
    bench::banner("Design ablation: predictive consolidation",
                  "forecasting VMC on a demand ramp (BladeA/60M x3)",
                  opts);

    auto base = bench::sharedRunner().library().mix(trace::Mix::Mid60);
    auto traces = trace::rampAll(base, opts.ticks, 1.0, 3.0);

    util::Table table("Demand triples linearly across the run");
    table.header({"packing input", "pwr save %", "perf loss %",
                  "viol SM %", "migrations"});

    for (const auto &row :
         {Row{"reactive (epoch mean)", false,
              controllers::ForecastMethod::LastValue},
          Row{"forecast: ewma", true, controllers::ForecastMethod::Ewma},
          Row{"forecast: holt", true,
              controllers::ForecastMethod::HoltLinear}}) {
        auto cfg = core::coordinatedConfig();
        cfg.vmc.use_forecast = row.use_forecast;
        cfg.vmc.forecast.method = row.method;
        core::Coordinator c(cfg, sim::Topology::paper60(),
                            model::bladeA(), traces);
        c.run(opts.ticks);
        core::Coordinator basec(core::baselineConfig(),
                                sim::Topology::paper60(),
                                model::bladeA(), traces);
        basec.run(opts.ticks);
        auto m = c.summary();
        table.row({row.label,
                   util::Table::pct(
                       sim::powerSavings(basec.summary(), m)),
                   util::Table::pct(m.perf_loss, 2),
                   util::Table::pct(m.sm_violation, 2),
                   std::to_string(c.vmc()->stats().migrations)});
    }
    table.print(std::cout);
    return 0;
}
