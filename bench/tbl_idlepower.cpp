/**
 * @file
 * Conclusions-section reproduction: idle-power sensitivity. The paper
 * concludes that "for current systems with high baseline idle power
 * consumptions, virtual machine consolidation can be a more effective
 * way to save power" and that results "motivate the need to reduce the
 * baseline idle power for future systems but note interesting
 * advantages from virtual machine consolidation even in those cases."
 *
 * Sweeps Blade A's idle power (x1.0 = stock, x0.6, x0.3) and reports
 * the Figure 8 decomposition at each point.
 *
 * Expected shape: total achievable savings shrink as machines idle
 * more efficiently (there is simply less waste to recover), and the
 * VMC's share of the savings shrinks with it — yet consolidation keeps
 * contributing even at the energy-proportional end.
 */

#include <iostream>

#include "common.h"
#include "core/scenarios.h"
#include "util/table.h"

int
main(int argc, char **argv)
{
    using namespace nps;
    auto opts = bench::parseArgs(argc, argv);
    bench::BenchReport report("tbl_idlepower", opts);
    bench::banner("Conclusions: idle-power sensitivity",
                  "Section 7 (future low-idle systems)", opts);

    util::Table table("Blade A with scaled idle power, 180 mix");
    table.header({"idle scale", "idle/peak", "Coordinated", "NoVMC",
                  "VMCOnly", "VMC share"});

    for (double scale : {1.0, 0.6, 0.3}) {
        model::MachineSpec machine =
            scale == 1.0 ? model::bladeA()
                         : model::bladeA().withIdleScaled(scale);
        double idle_frac = machine.model().idlePower(0) /
                           machine.model().maxPower();

        double savings[3] = {0.0, 0.0, 0.0};
        const core::Scenario scenarios[] = {core::Scenario::Coordinated,
                                            core::Scenario::NoVmc,
                                            core::Scenario::VmcOnly};
        for (int s = 0; s < 3; ++s) {
            core::ExperimentSpec spec;
            spec.config = core::scenarioConfig(scenarios[s]);
            spec.custom_machine = machine;
            spec.mix = trace::Mix::All180;
            spec.ticks = opts.ticks;
            savings[s] =
                report.run(spec,
                           "idle x" + util::Table::num(scale, 1) + "/" +
                               core::scenarioName(scenarios[s]))
                    .power_savings;
        }
        double share = savings[0] > 1e-9
                           ? (savings[0] - savings[1]) / savings[0]
                           : 0.0;
        table.row({util::Table::num(scale, 1),
                   util::Table::pct(idle_frac, 0) + "%",
                   util::Table::pct(savings[0]),
                   util::Table::pct(savings[1]),
                   util::Table::pct(savings[2]),
                   util::Table::pct(share)});
    }
    table.print(std::cout);
    std::cout << "\npaper claim: less idle power -> less total savings, "
                 "but consolidation still contributes\n";
    report.write();
    return 0;
}
