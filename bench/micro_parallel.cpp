/**
 * @file
 * google-benchmark scaling suite for the parallel tick engine: tick
 * throughput of the fully coordinated stack across fleet size × worker
 * threads, plus parallel trace-campaign generation.
 *
 * The determinism contract (docs/PARALLELISM.md) means every cell of
 * the matrix computes identical results — only the wall clock moves.
 * On a machine with 4+ cores, the 720- and 1800-server rows should show
 * >= 2x throughput at 4 threads over 1 thread; on fewer cores the
 * threads > ncores rows only measure pool overhead.
 *
 * Run:  build/bench/micro_parallel
 */

#include <benchmark/benchmark.h>

#include <cstddef>
#include <map>
#include <vector>

#include "core/coordinator.h"
#include "core/scenarios.h"
#include "trace/generator.h"
#include "util/thread_pool.h"

namespace {

using namespace nps;

/** One trace per server, tiling the campaign's (site, server) grid so
 * streams differ across the fleet. Cached per fleet size. */
const std::vector<trace::UtilizationTrace> &
fleetTraces(size_t servers)
{
    static std::map<size_t, std::vector<trace::UtilizationTrace>> cache;
    auto it = cache.find(servers);
    if (it != cache.end())
        return it->second;
    trace::GeneratorConfig cfg;
    cfg.trace_length = 576;
    trace::TraceGenerator gen(cfg);
    std::vector<trace::UtilizationTrace> traces;
    traces.reserve(servers);
    for (size_t i = 0; i < servers; ++i) {
        auto profile = trace::defaultProfile(
            static_cast<trace::WorkloadClass>(i % 6));
        traces.push_back(
            gen.generate(static_cast<unsigned>(i / 20 % 9),
                         static_cast<unsigned>(i % 20), profile));
    }
    return cache.emplace(servers, std::move(traces)).first->second;
}

sim::Topology
fleetTopology(unsigned servers)
{
    return {servers, servers / 20, 20};
}

void
BM_ParallelCoordinatedTick(benchmark::State &state)
{
    const unsigned servers = static_cast<unsigned>(state.range(0));
    const unsigned threads = static_cast<unsigned>(state.range(1));
    core::CoordinationConfig cfg = core::coordinatedConfig();
    cfg.threads = threads;
    core::Coordinator c(cfg, fleetTopology(servers), model::bladeA(),
                        fleetTraces(servers));
    for (auto _ : state)
        c.run(1);
    state.SetItemsProcessed(state.iterations() * servers);
    state.counters["servers"] = servers;
    state.counters["threads"] = threads;
}
BENCHMARK(BM_ParallelCoordinatedTick)
    ->ArgsProduct({{180, 720, 1800}, {1, 2, 4, 8}})
    ->ArgNames({"servers", "threads"});

void
BM_ParallelBaselineTick(benchmark::State &state)
{
    // The unmanaged stack isolates the sharded Cluster::evaluateTick
    // from controller cost.
    const unsigned servers = static_cast<unsigned>(state.range(0));
    const unsigned threads = static_cast<unsigned>(state.range(1));
    core::CoordinationConfig cfg = core::baselineConfig();
    cfg.threads = threads;
    core::Coordinator c(cfg, fleetTopology(servers), model::bladeA(),
                        fleetTraces(servers));
    for (auto _ : state)
        c.run(1);
    state.SetItemsProcessed(state.iterations() * servers);
}
BENCHMARK(BM_ParallelBaselineTick)
    ->ArgsProduct({{720, 1800}, {1, 4}})
    ->ArgNames({"servers", "threads"});

void
BM_ParallelCampaignGeneration(benchmark::State &state)
{
    const unsigned threads = static_cast<unsigned>(state.range(0));
    trace::GeneratorConfig cfg;
    cfg.trace_length = 288;
    util::ThreadPool pool(threads);
    for (auto _ : state) {
        trace::TraceGenerator gen(cfg);
        auto all = gen.generateAll(threads > 1 ? &pool : nullptr);
        benchmark::DoNotOptimize(all);
    }
}
BENCHMARK(BM_ParallelCampaignGeneration)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->ArgNames({"threads"});

} // namespace
