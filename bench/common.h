/**
 * @file
 * Shared support for the reproduction benches: argument handling, the
 * shared workload library / experiment runner, and table helpers for
 * printing paper-style rows.
 */

#ifndef NPS_BENCH_COMMON_H
#define NPS_BENCH_COMMON_H

#include <string>
#include <vector>

#include "core/experiment.h"
#include "util/table.h"

namespace nps {
namespace bench {

/** Command-line options common to every reproduction bench. */
struct Options
{
    /** Simulation horizon per experiment (default: ten synthetic days). */
    size_t ticks = 2880;
    /** Quick mode: shorter horizon for smoke runs (--quick). */
    bool quick = false;
};

/** Parse --ticks N / --quick; fatal() on unknown arguments. */
Options parseArgs(int argc, char **argv);

/**
 * The process-wide experiment runner over the default 180-trace
 * campaign. Shared so every table in one binary reuses the baseline
 * cache.
 */
core::ExperimentRunner &sharedRunner();

/** Standard columns of a Figure 7 / 9 / 10 style row. */
std::vector<std::string> metricCells(const core::ExperimentResult &r);

/** Header matching metricCells(). */
std::vector<std::string> metricHeader();

/** Print a short provenance banner for a bench. */
void banner(const std::string &title, const std::string &paper_ref,
            const Options &opts);

} // namespace bench
} // namespace nps

#endif // NPS_BENCH_COMMON_H
