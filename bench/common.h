/**
 * @file
 * Shared support for the reproduction benches: argument handling, the
 * shared workload library / experiment runner, and table helpers for
 * printing paper-style rows.
 */

#ifndef NPS_BENCH_COMMON_H
#define NPS_BENCH_COMMON_H

#include <chrono>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "util/table.h"

namespace nps {
namespace bench {

/** Command-line options common to every reproduction bench. */
struct Options
{
    /** Simulation horizon per experiment (default: ten synthetic days). */
    size_t ticks = 2880;
    /** Quick mode: shorter horizon for smoke runs (--quick). */
    bool quick = false;
    /** Write a machine-readable BENCH_<name>.json next to the table. */
    bool json = false;
    /** Output path override for --json FILE (empty = BENCH_<name>.json). */
    std::string json_path;
};

/** Parse --ticks N / --quick / --json [FILE]; fatal() on unknowns. */
Options parseArgs(int argc, char **argv);

/**
 * Machine-readable mirror of a reproduction bench: every experiment
 * routed through run() is recorded, and write() emits one JSON document
 * (scenario rows, horizon, wall time, ticks/sec) when --json was given.
 * The tables stay the human-facing output; this is the artifact CI
 * uploads (docs/OBSERVABILITY.md).
 */
class BenchReport
{
  public:
    /** @param name bench name, e.g. "fig7_coordination". */
    BenchReport(std::string name, const Options &opts);

    /**
     * Run @p spec on sharedRunner() and record the result under
     * @p label (defaults to spec.label when empty).
     */
    core::ExperimentResult run(const core::ExperimentSpec &spec,
                               const std::string &label = "");

    /**
     * Write BENCH_<name>.json (or the --json FILE override) when JSON
     * output was requested; silent no-op otherwise.
     */
    void write() const;

  private:
    struct Row
    {
        std::string label;
        core::ExperimentResult result;
    };

    std::string name_;
    Options opts_;
    std::chrono::steady_clock::time_point start_;
    std::vector<Row> rows_;
};

/**
 * The process-wide experiment runner over the default 180-trace
 * campaign. Shared so every table in one binary reuses the baseline
 * cache.
 */
core::ExperimentRunner &sharedRunner();

/** Standard columns of a Figure 7 / 9 / 10 style row. */
std::vector<std::string> metricCells(const core::ExperimentResult &r);

/** Header matching metricCells(). */
std::vector<std::string> metricHeader();

/** Print a short provenance banner for a bench. */
void banner(const std::string &title, const std::string &paper_ref,
            const Options &opts);

} // namespace bench
} // namespace nps

#endif // NPS_BENCH_COMMON_H
