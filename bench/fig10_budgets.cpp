/**
 * @file
 * Figure 10 reproduction: impact of different power budgets. Runs the
 * coordinated and uncoordinated deployments under the paper's three
 * budget configurations (20-15-10, 25-20-15, 30-25-20: group, enclosure,
 * and local caps as % off maximum power).
 *
 * Expected shape (paper): the coordinated controller responds to
 * reduced budgets gracefully — average savings shrink because the VMC
 * consolidates more conservatively — while the uncoordinated solution
 * gets progressively worse (more violations); "the need for coordination
 * is increased with more stringent peak power requirements."
 */

#include <iostream>

#include "common.h"
#include "core/scenarios.h"
#include "util/table.h"

int
main(int argc, char **argv)
{
    using namespace nps;
    auto opts = bench::parseArgs(argc, argv);
    bench::BenchReport report("fig10_budgets", opts);
    bench::banner("Figure 10: impact of power budgets",
                  "Figure 10 (budget sensitivity table)", opts);

    const sim::BudgetConfig budgets[] = {
        sim::BudgetConfig::paper201510(),
        sim::BudgetConfig::paper252015(),
        sim::BudgetConfig::paper302520(),
    };

    util::Table table("Budget sensitivity (group-enclosure-local % off "
                      "max)");
    auto header = std::vector<std::string>{"system", "solution",
                                           "budgets"};
    for (const auto &h : bench::metricHeader())
        header.push_back(h);
    table.header(header);

    for (const char *machine : {"BladeA", "ServerB"}) {
        for (auto scenario : {core::Scenario::Coordinated,
                              core::Scenario::Uncoordinated}) {
            for (const auto &budget : budgets) {
                core::ExperimentSpec spec;
                spec.label = budget.label();
                spec.config = core::withBudgets(
                    core::scenarioConfig(scenario), budget);
                spec.machine = machine;
                spec.mix = trace::Mix::All180;
                spec.ticks = opts.ticks;
                auto r = report.run(
                    spec, std::string(machine) + "/" +
                              core::scenarioName(scenario) + "/" +
                              budget.label());
                std::vector<std::string> row{
                    machine, core::scenarioName(scenario),
                    budget.label()};
                for (const auto &cell : bench::metricCells(r))
                    row.push_back(cell);
                table.row(row);
            }
            table.separator();
        }
    }
    table.print(std::cout);
    report.write();
    return 0;
}
