/**
 * @file
 * macro_fleet: the fleet-scaling matrix (docs/PERFORMANCE.md).
 *
 * Runs the coordinated control plane over synthetic tiered fleets
 * (sim/fleetgen.h) across a fleet-size x thread-count matrix and reports
 * tick-loop throughput: wall time, ticks/sec, ns per server-tick, and
 * peak RSS. `--json` writes BENCH_macro_fleet.json, the artifact that is
 * committed in-repo so the perf trajectory stays visible PR over PR.
 *
 * Construction (topology + traces + controller wiring) is timed
 * separately from the tick loop; the per-cell tick count defaults to
 * whatever makes ticks x servers >= 1M so every cell measures at least a
 * million server-ticks.
 *
 * Usage:
 *   macro_fleet [--sizes 10000,100000] [--threads 1,4]
 *               [--ticks N] [--json [FILE]] [--quick]
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "core/coordinator.h"
#include "core/scenarios.h"
#include "model/machine.h"
#include "sim/fleetgen.h"
#include "util/json.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace {

using namespace nps;

struct Cell
{
    unsigned servers = 0;
    unsigned threads = 0;
    size_t ticks = 0;
    double build_ms = 0.0;
    double wall_ms = 0.0;
    double ticks_per_sec = 0.0;
    double ns_per_server_tick = 0.0;
    double peak_rss_mb = 0.0;
};

double
peakRssMb()
{
#if defined(__unix__) || defined(__APPLE__)
    struct rusage ru;
    if (getrusage(RUSAGE_SELF, &ru) != 0)
        return 0.0;
#if defined(__APPLE__)
    return static_cast<double>(ru.ru_maxrss) / (1024.0 * 1024.0);
#else
    return static_cast<double>(ru.ru_maxrss) / 1024.0;
#endif
#else
    return 0.0;
#endif
}

std::vector<unsigned>
parseList(const std::string &arg, const char *what)
{
    std::vector<unsigned> out;
    size_t pos = 0;
    while (pos < arg.size()) {
        size_t comma = arg.find(',', pos);
        if (comma == std::string::npos)
            comma = arg.size();
        unsigned long v = std::strtoul(arg.substr(pos, comma - pos).c_str(),
                                       nullptr, 10);
        if (v == 0)
            util::fatal("macro_fleet: bad %s list '%s'", what, arg.c_str());
        out.push_back(static_cast<unsigned>(v));
        pos = comma + 1;
    }
    if (out.empty())
        util::fatal("macro_fleet: empty %s list", what);
    return out;
}

/** Ticks per cell: at least 1M server-ticks, at least 10 ticks. */
size_t
ticksFor(unsigned servers, size_t override_ticks)
{
    if (override_ticks > 0)
        return override_ticks;
    const size_t floor_ticks = (1000000 + servers - 1) / servers;
    return std::max<size_t>(10, floor_ticks);
}

Cell
runCell(unsigned servers, unsigned threads, size_t ticks)
{
    using Clock = std::chrono::steady_clock;
    Cell cell;
    cell.servers = servers;
    cell.threads = threads;
    cell.ticks = ticks;

    Clock::time_point t0 = Clock::now();
    sim::FleetSpec spec;
    spec.servers = servers;
    sim::FleetGen gen(spec);

    core::CoordinationConfig config = core::fleetConfig();
    config.threads = threads;

    util::ThreadPool pool(threads);
    std::vector<trace::UtilizationTrace> traces =
        gen.traces(threads > 1 ? &pool : nullptr);
    core::Coordinator coord(config, gen.topology(), model::bladeA(),
                            traces);
    traces.clear();
    traces.shrink_to_fit();
    cell.build_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0)
            .count();

    t0 = Clock::now();
    coord.run(ticks);
    cell.wall_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0)
            .count();

    const double secs = cell.wall_ms / 1000.0;
    cell.ticks_per_sec = secs > 0.0 ? ticks / secs : 0.0;
    const double server_ticks =
        static_cast<double>(servers) * static_cast<double>(ticks);
    cell.ns_per_server_tick =
        server_ticks > 0.0 ? cell.wall_ms * 1e6 / server_ticks : 0.0;
    cell.peak_rss_mb = peakRssMb();
    return cell;
}

void
writeJson(const std::string &path, const std::vector<Cell> &cells)
{
    std::ofstream out(path);
    if (!out)
        util::fatal("macro_fleet: cannot write '%s'", path.c_str());
    out << "{\n";
    out << "  \"bench\": \"macro_fleet\",\n";
    out << "  \"host_cpus\": " << util::ThreadPool::hardwareThreads()
        << ",\n";
    out << "  \"unit_note\": \"peak_rss_mb is process-wide and "
           "monotone across cells; threads > host_cpus cells measure "
           "oversubscription, not scaling\",\n";
    out << "  \"cells\": [\n";
    for (size_t i = 0; i < cells.size(); ++i) {
        const Cell &c = cells[i];
        out << "    {\"servers\": " << c.servers
            << ", \"threads\": " << c.threads
            << ", \"ticks\": " << c.ticks
            << ", \"build_ms\": " << util::jsonNumber(c.build_ms)
            << ", \"wall_ms\": " << util::jsonNumber(c.wall_ms)
            << ", \"ticks_per_sec\": " << util::jsonNumber(c.ticks_per_sec)
            << ", \"ns_per_server_tick\": "
            << util::jsonNumber(c.ns_per_server_tick)
            << ", \"peak_rss_mb\": " << util::jsonNumber(c.peak_rss_mb)
            << "}" << (i + 1 < cells.size() ? "," : "") << "\n";
    }
    out << "  ]\n";
    out << "}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<unsigned> sizes = {10000, 100000};
    std::vector<unsigned> threads = {1, 4};
    size_t override_ticks = 0;
    bool json = false;
    std::string json_path = "BENCH_macro_fleet.json";

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                util::fatal("macro_fleet: %s needs a value", arg.c_str());
            return argv[++i];
        };
        if (arg == "--sizes") {
            sizes = parseList(next(), "sizes");
        } else if (arg == "--threads") {
            threads = parseList(next(), "threads");
        } else if (arg == "--ticks") {
            override_ticks = std::strtoul(next().c_str(), nullptr, 10);
        } else if (arg == "--json") {
            json = true;
            if (i + 1 < argc && argv[i + 1][0] != '-')
                json_path = argv[++i];
        } else if (arg == "--quick") {
            sizes = {10000};
            threads = {1};
        } else {
            util::fatal("macro_fleet: unknown argument '%s'", arg.c_str());
        }
    }

    std::printf("macro_fleet: fleet-scaling matrix "
                "(sim/fleetgen.h, docs/PERFORMANCE.md)\n");
    std::printf("%10s %8s %8s %10s %10s %12s %14s %12s\n", "servers",
                "threads", "ticks", "build_ms", "wall_ms", "ticks/sec",
                "ns/srv-tick", "peakRSS_MB");

    std::vector<Cell> cells;
    for (unsigned servers : sizes) {
        const size_t ticks = ticksFor(servers, override_ticks);
        for (unsigned t : threads) {
            Cell c = runCell(servers, t, ticks);
            std::printf("%10u %8u %8zu %10.1f %10.1f %12.1f %14.1f "
                        "%12.1f\n",
                        c.servers, c.threads, c.ticks, c.build_ms,
                        c.wall_ms, c.ticks_per_sec, c.ns_per_server_tick,
                        c.peak_rss_mb);
            cells.push_back(c);
        }
    }

    if (json)
        writeJson(json_path, cells);
    return 0;
}
