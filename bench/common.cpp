#include "common.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "util/json.h"
#include "util/logging.h"

namespace nps {
namespace bench {

Options
parseArgs(int argc, char **argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--ticks") == 0 && i + 1 < argc) {
            opts.ticks = static_cast<size_t>(std::strtoull(
                argv[i + 1], nullptr, 10));
            ++i;
        } else if (std::strcmp(argv[i], "--quick") == 0) {
            opts.quick = true;
        } else if (std::strcmp(argv[i], "--json") == 0) {
            opts.json = true;
            // Optional value: --json FILE overrides BENCH_<name>.json.
            if (i + 1 < argc &&
                std::strncmp(argv[i + 1], "--", 2) != 0) {
                opts.json_path = argv[i + 1];
                ++i;
            }
        } else if (std::strcmp(argv[i], "--help") == 0) {
            std::printf("usage: %s [--ticks N] [--quick] [--json [FILE]]\n",
                        argv[0]);
            std::exit(0);
        } else {
            util::fatal("unknown argument '%s'", argv[i]);
        }
    }
    if (opts.quick)
        opts.ticks = std::min<size_t>(opts.ticks, 1200);
    if (opts.ticks == 0)
        util::fatal("--ticks must be positive");
    return opts;
}

BenchReport::BenchReport(std::string name, const Options &opts)
    : name_(std::move(name)),
      opts_(opts),
      start_(std::chrono::steady_clock::now())
{
}

core::ExperimentResult
BenchReport::run(const core::ExperimentSpec &spec,
                 const std::string &label)
{
    core::ExperimentResult r = sharedRunner().run(spec);
    rows_.push_back({label.empty() ? spec.label : label, r});
    return r;
}

void
BenchReport::write() const
{
    if (!opts_.json)
        return;
    const std::string path =
        opts_.json_path.empty() ? "BENCH_" + name_ + ".json"
                                : opts_.json_path;
    std::ofstream out(path, std::ios::binary);
    if (!out)
        util::fatal("cannot open %s", path.c_str());

    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    // Scenario runs only; cached baselines make the true simulated tick
    // count run-order dependent, so this is a conservative floor.
    const double sim_ticks =
        static_cast<double>(rows_.size()) *
        static_cast<double>(opts_.ticks);

    using util::jsonNumber;
    using util::jsonQuote;
    out << "{\n";
    out << "  \"bench\": " << jsonQuote(name_) << ",\n";
    out << "  \"ticks\": " << opts_.ticks << ",\n";
    out << "  \"experiments\": " << rows_.size() << ",\n";
    out << "  \"wall_seconds\": " << jsonNumber(wall) << ",\n";
    out << "  \"ticks_per_sec\": "
        << jsonNumber(wall > 0.0 ? sim_ticks / wall : 0.0) << ",\n";
    out << "  \"results\": [";
    for (size_t i = 0; i < rows_.size(); ++i) {
        const Row &row = rows_[i];
        const sim::MetricsSummary &s = row.result.scenario;
        out << (i ? ",\n    " : "\n    ");
        out << "{\"label\": " << jsonQuote(row.label)
            << ", \"power_savings\": "
            << jsonNumber(row.result.power_savings)
            << ", \"mean_power_watts\": " << jsonNumber(s.mean_power)
            << ", \"peak_power_watts\": " << jsonNumber(s.peak_power)
            << ", \"energy_watt_ticks\": " << jsonNumber(s.energy)
            << ", \"perf_loss\": " << jsonNumber(s.perf_loss)
            << ", \"violations\": {\"gm\": "
            << jsonNumber(s.gm_violation)
            << ", \"em\": " << jsonNumber(s.em_violation)
            << ", \"sm\": " << jsonNumber(s.sm_violation) << "}}";
    }
    out << "\n  ]\n}\n";
    std::printf("json: wrote %zu results to %s\n", rows_.size(),
                path.c_str());
}

core::ExperimentRunner &
sharedRunner()
{
    static core::ExperimentRunner runner;
    return runner;
}

std::vector<std::string>
metricHeader()
{
    return {"viol GM %", "viol EM %", "viol SM %", "perf loss %",
            "pwr save %"};
}

std::vector<std::string>
metricCells(const core::ExperimentResult &r)
{
    using util::Table;
    return {Table::pct(r.scenario.gm_violation, 2),
            Table::pct(r.scenario.em_violation, 2),
            Table::pct(r.scenario.sm_violation, 2),
            Table::pct(r.scenario.perf_loss, 2),
            Table::pct(r.power_savings, 1)};
}

void
banner(const std::string &title, const std::string &paper_ref,
       const Options &opts)
{
    std::printf("== %s ==\n", title.c_str());
    std::printf("reproduces: %s (Raghavendra et al., ASPLOS'08)\n",
                paper_ref.c_str());
    std::printf("horizon: %zu ticks; synthetic 180-trace campaign; see "
                "EXPERIMENTS.md for paper-vs-measured notes\n\n",
                opts.ticks);
}

} // namespace bench
} // namespace nps
