#include "common.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/logging.h"

namespace nps {
namespace bench {

Options
parseArgs(int argc, char **argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--ticks") == 0 && i + 1 < argc) {
            opts.ticks = static_cast<size_t>(std::strtoull(
                argv[i + 1], nullptr, 10));
            ++i;
        } else if (std::strcmp(argv[i], "--quick") == 0) {
            opts.quick = true;
        } else if (std::strcmp(argv[i], "--help") == 0) {
            std::printf("usage: %s [--ticks N] [--quick]\n", argv[0]);
            std::exit(0);
        } else {
            util::fatal("unknown argument '%s'", argv[i]);
        }
    }
    if (opts.quick)
        opts.ticks = std::min<size_t>(opts.ticks, 1200);
    if (opts.ticks == 0)
        util::fatal("--ticks must be positive");
    return opts;
}

core::ExperimentRunner &
sharedRunner()
{
    static core::ExperimentRunner runner;
    return runner;
}

std::vector<std::string>
metricHeader()
{
    return {"viol GM %", "viol EM %", "viol SM %", "perf loss %",
            "pwr save %"};
}

std::vector<std::string>
metricCells(const core::ExperimentResult &r)
{
    using util::Table;
    return {Table::pct(r.scenario.gm_violation, 2),
            Table::pct(r.scenario.em_violation, 2),
            Table::pct(r.scenario.sm_violation, 2),
            Table::pct(r.scenario.perf_loss, 2),
            Table::pct(r.power_savings, 1)};
}

void
banner(const std::string &title, const std::string &paper_ref,
       const Options &opts)
{
    std::printf("== %s ==\n", title.c_str());
    std::printf("reproduces: %s (Raghavendra et al., ASPLOS'08)\n",
                paper_ref.c_str());
    std::printf("horizon: %zu ticks; synthetic 180-trace campaign; see "
                "EXPERIMENTS.md for paper-vs-measured notes\n\n",
                opts.ticks);
}

} // namespace bench
} // namespace nps
