/**
 * @file
 * Section 5.4 reproduction: avoiding turning machines off. Runs the
 * coordinated solution with the VMC's power-off capability disabled.
 *
 * Expected shape (paper): savings collapse (BladeA 64% -> 23%, ServerB
 * -> ~5%) because idle power dominates, but the coordinated stack
 * "automatically adapts ... and moves to more aggressively controlling
 * power at the local levels" — the NoPowerOff savings exceed what
 * consolidation alone would give without DVFS.
 */

#include <iostream>

#include "common.h"
#include "core/scenarios.h"
#include "util/table.h"

int
main(int argc, char **argv)
{
    using namespace nps;
    auto opts = bench::parseArgs(argc, argv);
    bench::BenchReport report("tbl_machineoff", opts);
    bench::banner("Section 5.4: avoiding machine power-off",
                  "Section 5.4 (power-off avoidance study)", opts);

    util::Table table("Coordinated solution with and without power-off");
    auto header = std::vector<std::string>{"system", "power-off"};
    for (const auto &h : bench::metricHeader())
        header.push_back(h);
    header.push_back("migrations");
    table.header(header);

    for (const char *machine : {"BladeA", "ServerB"}) {
        for (bool allow_off : {true, false}) {
            core::ExperimentSpec spec;
            spec.config = allow_off
                              ? core::coordinatedConfig()
                              : core::withoutPowerOff(
                                    core::coordinatedConfig());
            spec.machine = machine;
            spec.mix = trace::Mix::All180;
            spec.ticks = opts.ticks;
            auto r = report.run(
                spec, std::string(machine) + "/power-off-" +
                          (allow_off ? "allowed" : "disabled"));
            std::vector<std::string> row{machine,
                                         allow_off ? "allowed"
                                                   : "disabled"};
            for (const auto &cell : bench::metricCells(r))
                row.push_back(cell);
            row.push_back(std::to_string(r.vmc.migrations));
            table.row(row);
        }
        table.separator();
    }
    table.print(std::cout);
    std::cout << "\npaper reference points: BladeA 64% -> 23%, ServerB "
                 "-> ~5% when power-off is disabled\n";
    report.write();
    return 0;
}
