/**
 * @file
 * Figure 9 reproduction: characterizing the coordination interfaces.
 * For both machines, runs the full coordinated architecture against the
 * uncoordinated deployment and the three interface ablations (apparent
 * utilization, no violation feedback, no budget limits) plus the
 * uncoordinated two-P-state variant, reporting the paper's five metric
 * columns.
 *
 * Expected shape (paper): every ablation loses on at least one axis —
 * savings, performance, or violations — showing each interface matters.
 */

#include <iostream>

#include "common.h"
#include "core/scenarios.h"
#include "util/table.h"

int
main(int argc, char **argv)
{
    using namespace nps;
    auto opts = bench::parseArgs(argc, argv);
    bench::BenchReport report("fig9_interfaces", opts);
    bench::banner("Figure 9: coordination interface ablations",
                  "Figure 9 (interface characterization table)", opts);

    util::Table table("Interface ablations");
    auto header = std::vector<std::string>{"system", "solution"};
    for (const auto &h : bench::metricHeader())
        header.push_back(h);
    table.header(header);

    for (const char *machine : {"BladeA", "ServerB"}) {
        for (auto scenario : core::figure9Scenarios()) {
            core::ExperimentSpec spec;
            spec.label = core::scenarioName(scenario);
            spec.config = core::scenarioConfig(scenario);
            spec.machine = machine;
            spec.mix = trace::Mix::All180;
            spec.ticks = opts.ticks;
            auto r = report.run(spec, std::string(machine) + "/" +
                                          spec.label);
            std::vector<std::string> row{machine, spec.label};
            for (const auto &cell : bench::metricCells(r))
                row.push_back(cell);
            table.row(row);
        }
        // The paper's final row: an uncoordinated deployment on a
        // machine shipping only the two extreme P-states.
        core::ExperimentSpec spec;
        spec.label = "Uncoordinated, min Pstates";
        spec.config = core::uncoordinatedConfig();
        spec.machine = machine;
        spec.two_pstates = true;
        spec.mix = trace::Mix::All180;
        spec.ticks = opts.ticks;
        auto r = report.run(spec, std::string(machine) + "/" +
                                      spec.label);
        std::vector<std::string> row{machine, spec.label};
        for (const auto &cell : bench::metricCells(r))
            row.push_back(cell);
        table.row(row);
        table.separator();
    }
    table.print(std::cout);
    report.write();
    return 0;
}
