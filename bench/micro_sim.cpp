/**
 * @file
 * google-benchmark micro suite for the simulator: tick throughput for
 * the unmanaged and fully coordinated stacks at the paper's topology
 * sizes, and trace-generation throughput.
 */

#include <benchmark/benchmark.h>

#include "core/coordinator.h"
#include "core/scenarios.h"
#include "trace/generator.h"
#include "trace/workload.h"

namespace {

using namespace nps;

const trace::WorkloadLibrary &
library()
{
    static trace::WorkloadLibrary lib = [] {
        trace::GeneratorConfig gen;
        gen.trace_length = 1440;
        return trace::WorkloadLibrary(gen);
    }();
    return lib;
}

void
BM_BaselineTick(benchmark::State &state)
{
    const bool big = state.range(0) == 180;
    core::Coordinator c(core::baselineConfig(),
                        big ? sim::Topology::paper180()
                            : sim::Topology::paper60(),
                        model::bladeA(),
                        library().mix(big ? trace::Mix::All180
                                          : trace::Mix::Mid60));
    for (auto _ : state)
        c.run(1);
    state.SetItemsProcessed(state.iterations() *
                            (big ? 180 : 60));
}
BENCHMARK(BM_BaselineTick)->Arg(60)->Arg(180);

void
BM_CoordinatedTick(benchmark::State &state)
{
    const bool big = state.range(0) == 180;
    core::Coordinator c(core::coordinatedConfig(),
                        big ? sim::Topology::paper180()
                            : sim::Topology::paper60(),
                        model::bladeA(),
                        library().mix(big ? trace::Mix::All180
                                          : trace::Mix::Mid60));
    for (auto _ : state)
        c.run(1);
    state.SetItemsProcessed(state.iterations() *
                            (big ? 180 : 60));
}
BENCHMARK(BM_CoordinatedTick)->Arg(60)->Arg(180);

void
BM_CoordinatedDay(benchmark::State &state)
{
    // One synthetic day (288 ticks) of the full coordinated stack at
    // the 60-server topology.
    for (auto _ : state) {
        core::Coordinator c(core::coordinatedConfig(),
                            sim::Topology::paper60(), model::bladeA(),
                            library().mix(trace::Mix::Mid60));
        c.run(288);
        benchmark::DoNotOptimize(c.summary());
    }
}
BENCHMARK(BM_CoordinatedDay);

void
BM_TraceGeneration(benchmark::State &state)
{
    trace::GeneratorConfig cfg;
    cfg.trace_length = static_cast<size_t>(state.range(0));
    trace::TraceGenerator gen(cfg);
    auto profile = trace::defaultProfile(
        trace::WorkloadClass::ECommerce);
    unsigned srv = 0;
    for (auto _ : state) {
        auto t = gen.generate(3, srv++ % 20, profile);
        benchmark::DoNotOptimize(t);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TraceGeneration)->Arg(288)->Arg(2880);

void
BM_CampaignGeneration(benchmark::State &state)
{
    trace::GeneratorConfig cfg;
    cfg.trace_length = 288;
    for (auto _ : state) {
        trace::TraceGenerator gen(cfg);
        auto all = gen.generateAll();
        benchmark::DoNotOptimize(all);
    }
}
BENCHMARK(BM_CampaignGeneration);

} // namespace
