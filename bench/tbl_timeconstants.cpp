/**
 * @file
 * Section 5.4 reproduction: sensitivity to controller time constants.
 * Sweeps the paper's grids — EC in {1,2,5,10}, SM in {1,2,5,10}, GM in
 * {50,100,200,400}, and VMC in {100,200,300,400,500} — varying one
 * controller at a time from the Figure 5 baselines.
 *
 * Expected shape (paper): "relatively invariant to changes in frequency
 * of operation for the EC, SM, and GM. For the VMC, however, increased
 * frequency of operation led to a reduction in power savings" (the
 * violation-feedback buffers react more aggressively at shorter epochs,
 * making consolidation more conservative).
 */

#include <iostream>

#include "common.h"
#include "core/scenarios.h"
#include "util/table.h"

namespace {

void
sweep(const char *which, const std::vector<unsigned> &values,
      unsigned t_ec, unsigned t_sm, unsigned t_gm, unsigned t_vmc,
      const nps::bench::Options &opts, nps::util::Table &table,
      nps::bench::BenchReport &report)
{
    using namespace nps;
    for (unsigned v : values) {
        unsigned ec = t_ec, sm = t_sm, gm = t_gm, vmc = t_vmc;
        if (std::string(which) == "EC")
            ec = v;
        else if (std::string(which) == "SM")
            sm = v;
        else if (std::string(which) == "GM")
            gm = v;
        else
            vmc = v;
        core::ExperimentSpec spec;
        spec.config = core::withTimeConstants(core::coordinatedConfig(),
                                              ec, sm, 0, gm, vmc);
        spec.mix = trace::Mix::All180;
        spec.ticks = opts.ticks;
        auto r = report.run(spec, std::string(which) + "/" +
                                      std::to_string(v));
        std::vector<std::string> row{which, std::to_string(v)};
        for (const auto &cell : bench::metricCells(r))
            row.push_back(cell);
        table.row(row);
    }
    table.separator();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace nps;
    auto opts = bench::parseArgs(argc, argv);
    bench::BenchReport report("tbl_timeconstants", opts);
    bench::banner("Section 5.4: time-constant sensitivity",
                  "Section 5.4 (T_ec/T_sm/T_grp/T_vmc sweeps, BladeA/180)",
                  opts);

    util::Table table("One controller's interval varied at a time "
                      "(others at Figure 5 baselines)");
    auto header = std::vector<std::string>{"controller", "interval"};
    for (const auto &h : bench::metricHeader())
        header.push_back(h);
    table.header(header);

    sweep("EC", {1, 2, 5, 10}, 0, 0, 0, 0, opts, table, report);
    sweep("SM", {1, 2, 5, 10}, 0, 0, 0, 0, opts, table, report);
    sweep("GM", {50, 100, 200, 400}, 0, 0, 0, 0, opts, table, report);
    sweep("VMC", {100, 200, 300, 400, 500}, 0, 0, 0, 0, opts, table,
          report);

    table.print(std::cout);
    std::cout << "\npaper claim: EC/SM/GM sweeps are flat; faster VMC "
                 "epochs reduce savings via more conservative "
                 "consolidation\n";
    report.write();
    return 0;
}
