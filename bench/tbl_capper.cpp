/**
 * @file
 * Section 6 extension (2) ablation: the electrical power capper.
 *
 * Thermal budgets tolerate bounded transients; electrical limits
 * (fuses) do not. This bench runs the hot 60HH mix with a tight
 * electrical limit per server and compares the coordinated stack with
 * and without the CAP overwriter, reporting the electrical-limit
 * violation duty and the worst single server's duty — the quantity a
 * fuse actually cares about.
 *
 * Expected shape: without CAP, demand spikes ride above the electrical
 * limit until the (slower) SM reacts; with CAP the duty collapses to
 * near the one-tick reaction floor, at a small performance cost.
 */

#include <algorithm>
#include <iostream>

#include "common.h"
#include "core/coordinator.h"
#include "core/scenarios.h"
#include "trace/workload.h"
#include "util/table.h"

int
main(int argc, char **argv)
{
    using namespace nps;
    auto opts = bench::parseArgs(argc, argv);
    bench::banner("Section 6: electrical capper ablation",
                  "Section 6 extension (2), evaluated on the 60HH mix",
                  opts);

    const double limit_frac = 0.85;
    util::Table table("Electrical limit = 85% of server max, "
                      "BladeA/60HH");
    table.header({"CAP", "mean elec viol %", "worst server %",
                  "perf loss %", "mean power W"});

    for (bool enable_cap : {false, true}) {
        auto cfg = core::coordinatedConfig();
        cfg.enable_cap = true;  // always instantiate for measurement
        cfg.cap_limit_frac = limit_frac;
        cfg.cap.release_margin = 0.12;
        if (!enable_cap) {
            // Neutralize the actuator but keep the violation meters: a
            // capper whose period never divides any tick > 0 never
            // steps. Easiest faithful off-switch: huge period.
            cfg.cap.period = 1000000;
        }
        core::Coordinator c(cfg, sim::Topology::paper60(),
                            model::bladeA(),
                            bench::sharedRunner().library().mix(
                                trace::Mix::HH60));
        c.run(opts.ticks);

        double mean_duty = 0.0, worst = 0.0;
        for (const auto &cap : c.caps()) {
            double duty = cap->lifetimeViolationRate();
            mean_duty += duty;
            worst = std::max(worst, duty);
        }
        mean_duty /= static_cast<double>(c.caps().size());

        auto m = c.summary();
        table.row({enable_cap ? "on" : "off",
                   util::Table::pct(mean_duty, 2),
                   util::Table::pct(worst, 2),
                   util::Table::pct(m.perf_loss, 2),
                   util::Table::num(m.mean_power, 0)});
    }
    table.print(std::cout);
    return 0;
}
