/**
 * @file
 * google-benchmark micro suite for the controller hot paths: the EC and
 * SM step laws, budget division across an enclosure and a group, the
 * bin-packing optimizer at realistic sizes, and the Appendix A linear
 * analysis helpers.
 */

#include <benchmark/benchmark.h>

#include <memory>

#include "control/linear_system.h"
#include "controllers/binpack.h"
#include "controllers/efficiency.h"
#include "controllers/policies.h"
#include "controllers/server_manager.h"
#include "model/machine.h"
#include "sim/server.h"
#include "trace/trace.h"

namespace {

using namespace nps;

std::shared_ptr<const model::MachineSpec>
bladeSpec()
{
    static auto spec = std::make_shared<const model::MachineSpec>(
        model::bladeA());
    return spec;
}

void
BM_EcStep(benchmark::State &state)
{
    sim::Server server(0, bladeSpec(), 0.1, 0.1);
    std::vector<sim::VirtualMachine> vms;
    vms.emplace_back(0, trace::UtilizationTrace(
                            "t", trace::WorkloadClass::WebServer,
                            std::vector<double>(64, 0.4)));
    server.addVm(0);
    controllers::EfficiencyController ec(server, {});
    size_t tick = 0;
    for (auto _ : state) {
        server.evaluate(tick, vms);
        ec.step(tick + 1);
        ++tick;
    }
}
BENCHMARK(BM_EcStep);

void
BM_SmStep(benchmark::State &state)
{
    sim::Server server(0, bladeSpec(), 0.1, 0.1);
    std::vector<sim::VirtualMachine> vms;
    vms.emplace_back(0, trace::UtilizationTrace(
                            "t", trace::WorkloadClass::WebServer,
                            std::vector<double>(64, 0.8)));
    server.addVm(0);
    controllers::EfficiencyController ec(server, {});
    controllers::ServerManager sm(server, &ec, 70.0, {});
    size_t tick = 0;
    for (auto _ : state) {
        server.evaluate(tick, vms);
        sm.observe(tick + 1);
        sm.step(tick + 1);
        ec.step(tick + 1);
        ++tick;
    }
}
BENCHMARK(BM_SmStep);

void
BM_DivideBudget(benchmark::State &state)
{
    const size_t n = static_cast<size_t>(state.range(0));
    controllers::DivisionInput in;
    in.budget = 100.0 * static_cast<double>(n);
    for (size_t i = 0; i < n; ++i) {
        in.demands.push_back(40.0 + static_cast<double>(i % 17));
        in.maxima.push_back(120.0);
        in.floors.push_back(20.0);
    }
    for (auto _ : state) {
        auto grants = controllers::divideBudget(
            controllers::DivisionPolicy::Proportional, in);
        benchmark::DoNotOptimize(grants);
    }
}
BENCHMARK(BM_DivideBudget)->Arg(20)->Arg(66)->Arg(180);

void
BM_PackGreedy(benchmark::State &state)
{
    const unsigned n = static_cast<unsigned>(state.range(0));
    model::PowerModel model(model::bladeA().pstates());
    std::vector<controllers::PackBin> bins;
    std::vector<controllers::PackItem> items;
    for (unsigned i = 0; i < n; ++i) {
        controllers::PackBin b;
        b.id = i;
        b.power = &model;
        b.enclosure = i / 20;
        b.capacity = 0.9;
        b.power_cap = 76.5;
        b.unused_watts = 2.0;
        bins.push_back(b);
        items.push_back({i, 0.15 + 0.002 * (i % 50), i});
    }
    controllers::PackConstraints c;
    c.enclosure_caps.assign((n + 19) / 20, 20.0 * 85.0 * 0.85);
    c.group_cap = n * 85.0 * 0.8;
    for (auto _ : state) {
        auto r = controllers::packGreedy(items, bins, c);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_PackGreedy)->Arg(60)->Arg(180)->Arg(500);

void
BM_SmClosedLoopSettling(benchmark::State &state)
{
    for (auto _ : state) {
        ctl::FirstOrderSystem loop = ctl::smClosedLoop(1.0, 0.6, 70.0,
                                                       90.0);
        benchmark::DoNotOptimize(loop.settlingTime(0.01, 10000));
    }
}
BENCHMARK(BM_SmClosedLoopSettling);

} // namespace
