/**
 * @file
 * Section 5.3 reproduction: number of P-states. Compares each machine's
 * full P-state table against a reduced table holding only the two
 * extreme states (P0 and the deepest), under both coordinated and
 * uncoordinated deployments.
 *
 * Expected shape (paper): "having the two extreme P-states can get
 * behavior close to that when all the P-states are considered" under
 * coordination, and "the relative differences between the coordinated
 * and uncoordinated architectures are more pronounced with two P-states
 * than with four" — good coordination lets hardware ship simpler knobs.
 */

#include <iostream>

#include "common.h"
#include "core/scenarios.h"
#include "util/table.h"

int
main(int argc, char **argv)
{
    using namespace nps;
    auto opts = bench::parseArgs(argc, argv);
    bench::BenchReport report("tbl_pstates", opts);
    bench::banner("Section 5.3: number of P-states",
                  "Section 5.3 (P-state count study)", opts);

    util::Table table("Full vs two-extreme P-state tables");
    auto header = std::vector<std::string>{"system", "P-states",
                                           "solution"};
    for (const auto &h : bench::metricHeader())
        header.push_back(h);
    table.header(header);

    for (const char *machine : {"BladeA", "ServerB"}) {
        for (bool two_pstates : {false, true}) {
            for (auto scenario : {core::Scenario::Coordinated,
                                  core::Scenario::Uncoordinated}) {
                core::ExperimentSpec spec;
                spec.config = core::scenarioConfig(scenario);
                spec.machine = machine;
                spec.two_pstates = two_pstates;
                spec.mix = trace::Mix::All180;
                spec.ticks = opts.ticks;
                auto r = report.run(
                    spec, std::string(machine) + "/" +
                              (two_pstates ? "2-pstates" : "all") +
                              "/" + core::scenarioName(scenario));
                std::vector<std::string> row{
                    machine, two_pstates ? "2 (extremes)" : "all",
                    core::scenarioName(scenario)};
                for (const auto &cell : bench::metricCells(r))
                    row.push_back(cell);
                table.row(row);
            }
        }
        table.separator();
    }
    table.print(std::cout);
    report.write();
    return 0;
}
