/**
 * @file
 * Section 5.4 reproduction: policy choices at the EM and GM. Runs the
 * coordinated solution under all six budget-division policies.
 *
 * Expected shape (paper): "no significant variation in the results
 * across the different systems and different classes of workloads ...
 * the robustness of our architecture to change in individual policy
 * decisions."
 */

#include <iostream>

#include "common.h"
#include "core/scenarios.h"
#include "util/table.h"

int
main(int argc, char **argv)
{
    using namespace nps;
    auto opts = bench::parseArgs(argc, argv);
    bench::BenchReport report("tbl_policies", opts);
    bench::banner("Section 5.4: division-policy robustness",
                  "Section 5.4 (EM/GM policy study)", opts);

    const controllers::DivisionPolicy policies[] = {
        controllers::DivisionPolicy::Proportional,
        controllers::DivisionPolicy::Equal,
        controllers::DivisionPolicy::Fifo,
        controllers::DivisionPolicy::Random,
        controllers::DivisionPolicy::Priority,
        controllers::DivisionPolicy::History,
    };

    util::Table table("All division policies, coordinated, BladeA/180");
    auto header = std::vector<std::string>{"policy"};
    for (const auto &h : bench::metricHeader())
        header.push_back(h);
    table.header(header);

    for (auto policy : policies) {
        core::ExperimentSpec spec;
        spec.config = core::withPolicy(core::coordinatedConfig(),
                                       policy);
        if (policy == controllers::DivisionPolicy::Priority) {
            // Priorities by index: blades/children earlier in the
            // topology outrank later ones.
            spec.config.em.priorities.assign(20, 0);
            for (int i = 0; i < 20; ++i)
                spec.config.em.priorities[i] = 20 - i;
            spec.config.gm.priorities.assign(66, 0);
            for (int i = 0; i < 66; ++i)
                spec.config.gm.priorities[i] = 66 - i;
        }
        spec.mix = trace::Mix::All180;
        spec.ticks = opts.ticks;
        auto r = report.run(spec, controllers::policyName(policy));
        std::vector<std::string> row{
            controllers::policyName(policy)};
        for (const auto &cell : bench::metricCells(r))
            row.push_back(cell);
        table.row(row);
    }
    table.print(std::cout);
    std::cout << "\npaper claim: results are robust to the policy "
                 "choice\n";
    report.write();
    return 0;
}
