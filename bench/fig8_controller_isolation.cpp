/**
 * @file
 * Figure 8 reproduction: isolating the impact of the different
 * controllers. For both machines and all six workload mixes, reports
 * power savings for the full coordinated solution, NoVMC (consolidation
 * off), and VMCOnly (only the consolidation controller on).
 *
 * Expected shape (paper): the VMC is responsible for most of the
 * savings at low utilization; as utilization grows the local power
 * management share rises and total savings shrink; Server B gains far
 * less from NoVMC (DVFS) than Blade A.
 */

#include <iostream>

#include "common.h"
#include "core/scenarios.h"
#include "util/table.h"

int
main(int argc, char **argv)
{
    using namespace nps;
    auto opts = bench::parseArgs(argc, argv);
    bench::BenchReport report("fig8_controller_isolation", opts);
    bench::banner("Figure 8: isolating the controllers",
                  "Figure 8 (power savings per deployment subset)", opts);

    util::Table table("% power savings vs unmanaged baseline");
    table.header({"system", "mix", "Coordinated", "NoVMC", "VMCOnly",
                  "VMC share"});

    for (const char *machine : {"BladeA", "ServerB"}) {
        for (auto mix : trace::allMixes()) {
            double savings[3] = {0.0, 0.0, 0.0};
            const core::Scenario scenarios[] = {
                core::Scenario::Coordinated, core::Scenario::NoVmc,
                core::Scenario::VmcOnly};
            for (int s = 0; s < 3; ++s) {
                core::ExperimentSpec spec;
                spec.label = core::scenarioName(scenarios[s]);
                spec.config = core::scenarioConfig(scenarios[s]);
                spec.machine = machine;
                spec.mix = mix;
                spec.ticks = opts.ticks;
                savings[s] =
                    report.run(spec, std::string(machine) + "/" +
                                         trace::mixName(mix) + "/" +
                                         spec.label)
                        .power_savings;
            }
            double vmc_share = savings[0] > 1e-9
                                   ? (savings[0] - savings[1]) /
                                         savings[0]
                                   : 0.0;
            table.row({machine, trace::mixName(mix),
                       util::Table::pct(savings[0]),
                       util::Table::pct(savings[1]),
                       util::Table::pct(savings[2]),
                       util::Table::pct(vmc_share)});
        }
        table.separator();
    }
    table.print(std::cout);
    std::cout << "\npaper reference points: BladeA/180 = 64/23/48, "
                 "ServerB/180 = 57/4/54 (%)\n";
    report.write();
    return 0;
}
