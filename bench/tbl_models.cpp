/**
 * @file
 * Figure 5 reproduction: the power and performance models of Blade A
 * and Server B — power (watts) and performance (% of max work) versus
 * utilization for every P-state, i.e. the numeric series behind the
 * four model plots in Figure 5. Also demonstrates the calibration flow:
 * fits recovered from a simulated machine-under-test are printed next
 * to the ground truth.
 */

#include <iostream>

#include "common.h"
#include "model/calibration.h"
#include "util/table.h"

namespace {

void
printModel(const nps::model::MachineSpec &spec)
{
    using nps::util::Table;
    const auto &m = spec.model();

    Table power("Power model of " + spec.name() +
                " (watts vs utilization)");
    std::vector<std::string> header{"util %"};
    for (size_t p = 0; p < m.pstates().size(); ++p)
        header.push_back("P" + std::to_string(p));
    power.header(header);
    for (int u = 0; u <= 100; u += 20) {
        std::vector<std::string> row{std::to_string(u)};
        for (size_t p = 0; p < m.pstates().size(); ++p)
            row.push_back(Table::num(m.powerAt(p, u / 100.0), 1));
        power.row(row);
    }
    power.print(std::cout);

    Table perf("Performance model of " + spec.name() +
               " (% of max work vs utilization)");
    perf.header(header);
    for (int u = 0; u <= 100; u += 20) {
        std::vector<std::string> row{std::to_string(u)};
        for (size_t p = 0; p < m.pstates().size(); ++p) {
            // perf = h_p(r) = a_p * r with a_p = relSpeed.
            row.push_back(Table::num(
                m.pstates().relSpeed(p) * (u / 100.0) * 100.0, 1));
        }
        perf.row(row);
    }
    perf.print(std::cout);
    std::cout << '\n';
}

void
printCalibration(const nps::model::MachineSpec &truth)
{
    using namespace nps::model;
    using nps::util::Table;
    SimulatedMachine mut(truth, 0.8, 42);
    Calibrator cal({0.0, 0.25, 0.5, 0.75, 1.0}, 10);
    auto fits = cal.calibrate(mut);

    Table table("Calibration of " + truth.name() +
                " (fitted vs ground truth, 0.8 W meter noise)");
    table.header({"P-state", "fit c_p", "true c_p", "fit d_p",
                  "true d_p", "R^2"});
    for (size_t p = 0; p < fits.size(); ++p) {
        table.row({"P" + std::to_string(p),
                   Table::num(fits[p].slope, 2),
                   Table::num(truth.pstates().at(p).dyn_watts, 2),
                   Table::num(fits[p].intercept, 2),
                   Table::num(truth.pstates().at(p).idle_watts, 2),
                   Table::num(fits[p].r2, 4)});
    }
    table.print(std::cout);
    std::cout << '\n';
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace nps;
    auto opts = bench::parseArgs(argc, argv);
    bench::banner("Figure 5: power/performance models",
                  "Figure 5 (model plots) + Section 4.1 calibration",
                  opts);
    printModel(model::bladeA());
    printModel(model::serverB());
    printCalibration(model::bladeA());
    printCalibration(model::serverB());
    return 0;
}
