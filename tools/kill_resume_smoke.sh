#!/usr/bin/env bash
#
# Kill-and-resume smoke test for the checkpoint layer (docs/CHECKPOINTING.md).
#
# Runs npsim with periodic crash-safe snapshots, SIGKILLs it mid-run,
# resumes from the newest snapshot ('latest'), and requires every
# artifact — telemetry CSV, control-plane log, metrics export, decision
# trace, per-tick series — to be byte-identical to an uninterrupted
# reference run. A second leg resumes at a different thread count (the
# snapshot is thread-count independent), and a third corrupts the newest
# snapshot to prove the fallback-and-warn path and the strict-resume
# failure path.
#
# Usage:  tools/kill_resume_smoke.sh [npsim-binary] [workdir]
#
# Exits non-zero on the first mismatch. The kill is best-effort: on a
# machine fast enough to finish before the signal lands, the resume
# still runs from the last snapshot and the diffs still gate.

set -euo pipefail

npsim="${1:-build/tools/npsim}"
work="${2:-$(mktemp -d)}"
mkdir -p "${work}"

ticks=1200
every=60

# A campaign whose outage / lossy / stale windows straddle any plausible
# kill point, so degraded state must survive the snapshot.
printf 'outage sm 2 40 300\ndrop gm-em * 100 700 0.5\nstale em-sm 1 120 500\n' \
    > "${work}/faults.txt"

# Resume legs must NOT repeat --faults (or --config/--topology): the
# checkpoint embeds the original campaign and npsim rejects the combo.
common=(--scenario coordinated --ticks "${ticks}" --record-stride 2
        --log-level warn)
faults=(--faults "${work}/faults.txt")

artifacts=(record control-log metrics trace series)

# Builds the full npsim command line into the global CMD array. The
# background legs run "${CMD[@]}" & directly (a simple command, so $!
# is npsim's own PID and the SIGKILL lands on the simulator, not on an
# intermediate subshell).
build_cmd() { # <prefix> <extra args...>
    local prefix="$1"
    shift
    CMD=("${npsim}" "${common[@]}"
         --record "${work}/${prefix}-record.csv"
         --control-log "${work}/${prefix}-control-log.csv"
         --metrics "${work}/${prefix}-metrics.prom"
         --trace "${work}/${prefix}-trace.csv"
         --series "${work}/${prefix}-series.csv"
         "$@")
}

run_npsim() { # <prefix> <extra args...>
    build_cmd "$@"
    "${CMD[@]}"
}

artifact_path() { # <prefix> <kind>
    case "$2" in
    metrics) echo "${work}/$1-metrics.prom" ;;
    *) echo "${work}/$1-$2.csv" ;;
    esac
}

diff_against_ref() { # <prefix>
    local kind
    for kind in "${artifacts[@]}"; do
        diff "$(artifact_path ref "${kind}")" \
            "$(artifact_path "$1" "${kind}")" \
            || { echo "FAIL: $1 ${kind} differs from reference" >&2
                 exit 1; }
    done
    echo "OK: $1 matches the uninterrupted reference"
}

kill_when_snapshots() { # <pid> <dir> <count>
    local pid="$1" dir="$2" count="$3"
    while kill -0 "${pid}" 2>/dev/null; do
        if [ "$(ls "${dir}" 2>/dev/null | grep -c '\.nps$')" -ge \
             "${count}" ]; then
            kill -9 "${pid}" 2>/dev/null || true
            break
        fi
        sleep 0.02
    done
    set +e
    wait "${pid}"
    local rc=$?
    set -e
    echo "interrupted run ended with status ${rc}" \
        "($([ "${rc}" -eq 137 ] && echo SIGKILL || echo 'ran to completion'))"
}

echo "=== reference: uninterrupted run ==="
run_npsim ref --threads 1 "${faults[@]}"

echo "=== leg 1: kill mid-run, resume latest, same thread count ==="
ckpt1="${work}/ckpt1"
mkdir -p "${ckpt1}"
build_cmd int1 --threads 1 "${faults[@]}" \
    --checkpoint-every "${every}" --checkpoint-dir "${ckpt1}"
"${CMD[@]}" &
kill_when_snapshots $! "${ckpt1}" 3
run_npsim res1 --threads 1 --checkpoint-dir "${ckpt1}" --resume latest
diff_against_ref res1

echo "=== leg 2: checkpoint at 8 threads, resume serial ==="
ckpt2="${work}/ckpt2"
mkdir -p "${ckpt2}"
build_cmd int2 --threads 8 "${faults[@]}" \
    --checkpoint-every "${every}" --checkpoint-dir "${ckpt2}"
"${CMD[@]}" &
kill_when_snapshots $! "${ckpt2}" 3
run_npsim res2 --threads 1 --checkpoint-dir "${ckpt2}" --resume latest
diff_against_ref res2

echo "=== leg 3: corrupt the newest snapshot, expect fallback ==="
newest="$(ls "${ckpt1}" | grep '\.nps$' | sort | tail -n 1)"
count_valid="$(ls "${ckpt1}" | grep -c '\.nps$')"
if [ "${count_valid}" -lt 2 ]; then
    echo "SKIP: only one snapshot on disk, nothing to fall back to"
else
    printf 'X' | dd of="${ckpt1}/${newest}" bs=1 seek=100 conv=notrunc \
        status=none
    # Strict resume from the corrupt file itself must fail loudly.
    if "${npsim}" "${common[@]}" --resume "${ckpt1}/${newest}" \
        --record "${work}/bad-record.csv" \
        --control-log "${work}/bad-control-log.csv" \
        --metrics "${work}/bad-metrics.prom" \
        --trace "${work}/bad-trace.csv" \
        --series "${work}/bad-series.csv" 2>"${work}/bad-stderr.txt"; then
        echo "FAIL: strict --resume accepted a corrupt snapshot" >&2
        exit 1
    fi
    grep -q 'CRC mismatch' "${work}/bad-stderr.txt" || {
        echo "FAIL: corrupt-snapshot error does not mention the CRC" >&2
        cat "${work}/bad-stderr.txt" >&2
        exit 1
    }
    echo "OK: strict resume rejected the corrupt snapshot"
    # 'latest' must warn, skip it, and resume from the previous one.
    run_npsim res3 --threads 1 --checkpoint-dir "${ckpt1}" --resume latest \
        2>"${work}/res3-stderr.txt"
    grep -q "${newest}" "${work}/res3-stderr.txt" || {
        echo "FAIL: fallback resume did not warn about ${newest}" >&2
        exit 1
    }
    diff_against_ref res3
fi

echo "=== kill-resume smoke passed ==="
