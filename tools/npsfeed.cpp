/**
 * @file
 * npsfeed — trace-to-stream replayer for the online telemetry engine
 * (docs/STREAMING.md).
 *
 * Regenerates the same deterministic workload campaign npsim uses in
 * batch mode (identical mix + seed ⇒ bit-identical demand doubles) and
 * streams it as NPSF frames: one SAMPLE per VM per tick, a TICK barrier
 * closing each tick, and a BYE when done. Piped into `npsim --serve`,
 * the daemon's output is byte-identical to the batch run:
 *
 *     npsfeed --mix 180 --ticks 480 | npsim --serve stdin ...
 *     npsfeed --to unix:/tmp/nps.sock &  npsim --serve unix:/tmp/nps.sock
 *
 * --silence punches per-VM holes into the stream (no sample, barrier
 * still sent) to exercise the silent-stream degradation path, and
 * --start-tick begins mid-campaign for resuming a checkpointed daemon.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "stream/frame.h"
#include "stream/net.h"
#include "trace/trace.h"
#include "trace/workload.h"
#include "util/logging.h"

namespace {

using namespace nps;

struct Silence
{
    uint32_t vm = 0;
    size_t from = 0;
    size_t to = 0; //!< inclusive
};

struct Args
{
    std::string mix = "180";
    uint64_t seed = 20080301;
    size_t ticks = 2880;
    size_t start_tick = 0;
    unsigned pace_ms = 0;
    std::string to = "-";
    std::vector<Silence> silences;
};

[[noreturn]] void
usage()
{
    std::printf(
        "usage: npsfeed [options]\n"
        "  --mix X        workload mix, as npsim (default 180)\n"
        "  --seed N       campaign seed, as npsim (default 20080301)\n"
        "  --ticks N      ticks to stream (default 2880)\n"
        "  --start-tick N first tick to send (default 0; use the\n"
        "                 checkpointed tick when feeding a resumed\n"
        "                 daemon)\n"
        "  --to SPEC      where to send frames: '-' for stdout (pipe\n"
        "                 into npsim --serve stdin), unix:PATH, or\n"
        "                 tcp:HOST:PORT (default -)\n"
        "  --pace-ms N    sleep N ms between ticks (0 = stream as fast\n"
        "                 as the daemon drains; use e.g. the tick\n"
        "                 period for a real-time replay)\n"
        "  --silence VM:FROM:TO  send no samples for VM during ticks\n"
        "                 [FROM, TO] (barriers still flow, so the tick\n"
        "                 completes and the daemon degrades that VM's\n"
        "                 server exactly like a dropped budget link);\n"
        "                 repeatable\n");
    std::exit(0);
}

Silence
parseSilence(const char *spec)
{
    Silence s;
    unsigned long vm, from, to;
    if (std::sscanf(spec, "%lu:%lu:%lu", &vm, &from, &to) != 3 ||
        to < from)
        util::fatal("bad --silence '%s' (want VM:FROM:TO with "
                    "FROM <= TO)", spec);
    s.vm = static_cast<uint32_t>(vm);
    s.from = from;
    s.to = to;
    return s;
}

Args
parse(int argc, char **argv)
{
    Args args;
    auto need = [&](int i) {
        if (i + 1 >= argc)
            util::fatal("%s needs a value", argv[i]);
        return argv[i + 1];
    };
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--mix")
            args.mix = need(i), ++i;
        else if (a == "--seed")
            args.seed = std::strtoull(need(i), nullptr, 10), ++i;
        else if (a == "--ticks")
            args.ticks = std::strtoull(need(i), nullptr, 10), ++i;
        else if (a == "--start-tick")
            args.start_tick = std::strtoull(need(i), nullptr, 10), ++i;
        else if (a == "--pace-ms")
            args.pace_ms = static_cast<unsigned>(
                std::strtoul(need(i), nullptr, 10)), ++i;
        else if (a == "--to")
            args.to = need(i), ++i;
        else if (a == "--silence")
            args.silences.push_back(parseSilence(need(i))), ++i;
        else if (a == "--help" || a == "-h")
            usage();
        else
            util::fatal("unknown argument '%s' (try --help)", a.c_str());
    }
    if (args.start_tick >= args.ticks && args.ticks > 0)
        util::fatal("--start-tick %zu is past --ticks %zu",
                    args.start_tick, args.ticks);
    return args;
}

trace::Mix
mixFor(const std::string &name)
{
    for (auto mix : trace::allMixes()) {
        if (name == trace::mixName(mix))
            return mix;
    }
    util::fatal("unknown mix '%s'", name.c_str());
}

bool
silencedAt(const std::vector<Silence> &silences, uint32_t vm, size_t tick)
{
    for (const Silence &s : silences) {
        if (s.vm == vm && tick >= s.from && tick <= s.to)
            return true;
    }
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    Args args = parse(argc, argv);

    trace::GeneratorConfig gen;
    gen.seed = args.seed;
    trace::WorkloadLibrary library(gen);
    const std::vector<trace::UtilizationTrace> &traces =
        library.mix(mixFor(args.mix));
    for (const Silence &s : args.silences) {
        if (s.vm >= traces.size())
            util::fatal("--silence names VM %u, the %s mix has %zu "
                        "streams", s.vm, args.mix.c_str(),
                        traces.size());
    }

    int fd = stream::connectTo(args.to);
    stream::FrameWriter w;
    stream::HelloFrame hello;
    hello.streams = static_cast<uint32_t>(traces.size());
    hello.start_tick = args.start_tick;
    hello.total_ticks = args.ticks;
    w.hello(hello);

    for (size_t tick = args.start_tick; tick < args.ticks; ++tick) {
        for (uint32_t vm = 0; vm < traces.size(); ++vm) {
            if (silencedAt(args.silences, vm, tick))
                continue;
            stream::SampleFrame s;
            s.tick = tick;
            s.stream = vm;
            s.demand = traces[vm].at(tick);
            w.sample(s);
        }
        w.tickEnd(tick);
        // One flush per tick: the kernel buffer provides backpressure
        // (write blocks while the daemon is behind), and the pending
        // window on the other side never overflows.
        if (!stream::writeAll(fd, w.data(), w.size()))
            util::fatal("npsfeed: peer went away at tick %zu", tick);
        w.clear();
        if (args.pace_ms)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(args.pace_ms));
    }
    w.bye(args.ticks);
    if (!stream::writeAll(fd, w.data(), w.size()))
        util::fatal("npsfeed: peer went away at sign-off");
    std::fprintf(stderr, "npsfeed: streamed %zu streams x %zu ticks to "
                         "%s\n", traces.size(),
                 args.ticks - args.start_tick, args.to.c_str());
    return 0;
}
