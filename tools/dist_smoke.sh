#!/usr/bin/env bash
#
# End-to-end smoke test for the distributed control plane
# (docs/DISTRIBUTED.md).
#
# Leg 1 (lockstep equivalence): run a 3-level plan — the group manager,
# the enclosure managers and the VM controller each hosted in their own
# npsnode process, four processes total over a unix socket — and require
# the distributed recorder CSV to be byte-identical to the
# single-process run of the same plan, at threads 1 and 4.
#
# Leg 2 (chaos): SIGKILL the GM rank mid-run with an outage longer than
# the 150-tick budget leases (3x the GM's 50-tick period), so the
# survivors must walk the whole degradation ladder — dropped grants,
# lease expiries, fallback stepping — before the supervisor restarts the
# rank from a snapshot; the run must finish rc=0 with every tick
# recorded.
#
# Leg 3 ([obs] live plane, docs/OBSERVABILITY.md): the same plan with an
# [obs] section, run single-process and distributed. The recorder and
# cascade CSVs must be byte-identical across the two runtimes; mid-run,
# the supervisor must serve the rank-labeled fleet view and each node
# its own replica; and the supervisor's final scrape during the linger
# window must be byte-identical to the --metrics export.
#
# Usage:  tools/dist_smoke.sh [npsim-binary] [workdir]
#
# Exits non-zero on the first mismatch. Stray child processes and
# sockets are cleaned up on any exit path.

set -euo pipefail

npsim="${1:-build/tools/npsim}"
work="${2:-$(mktemp -d)}"
npsfetch="$(dirname "${npsim}")/npsfetch"
mkdir -p "${work}"
work="$(cd "${work}" && pwd)" # plans embed the socket path: absolute

# A failed or interrupted leg can orphan the supervisor's npsnode
# children (they block at the barrier until their socket timeout), a
# backgrounded npsim daemon, or an npsfetch stuck on a dead endpoint —
# and a leaked listener socket breaks the next run on the same path.
# Every spawned process carries the workdir on its command line (the
# plan path for npsim/npsnode, the endpoint for npsfetch), so sweep by
# that — excluding this shell, which may also name the workdir —
# escalate to SIGKILL for anything that ignores the first pass, then
# remove the sockets.
cleanup() {
    local p
    for p in $(pgrep -f -- "${work}/" 2>/dev/null || true); do
        [ "${p}" = "$$" ] || kill "${p}" 2>/dev/null || true
    done
    sleep 0.2
    for p in $(pgrep -f -- "${work}/" 2>/dev/null || true); do
        [ "${p}" = "$$" ] || kill -9 "${p}" 2>/dev/null || true
    done
    rm -f "${work}"/*.sock
}
trap cleanup EXIT INT TERM

write_plan() { # <name> <ticks> [kill-spec] [restart-after]
    local name="$1" ticks="$2" kill_spec="${3:-}" restart="${4:-0}"
    cat > "${work}/${name}.plan" <<EOF
[dist]
socket = ${work}/${name}.sock
timeout_ms = 60000
restart_after = ${restart}

[run]
scenario = coordinated
mix = 60M
ticks = ${ticks}

[node group]
levels = gm:*

[node enclosures]
levels = em:*

[node vms]
levels = vmc
EOF
    if [ -n "${kill_spec}" ]; then
        printf '\n[chaos]\nkill = %s\n' "${kill_spec}" \
            >> "${work}/${name}.plan"
    fi
}

echo "=== leg 0: single-process reference ==="
ticks=240
write_plan ref "${ticks}"
"${npsim}" --plan "${work}/ref.plan" --record "${work}/ref.csv"

echo "=== leg 1: distributed run, threads 1 and 4 ==="
for t in 1 4; do
    write_plan "dist${t}" "${ticks}"
    "${npsim}" --distributed "${work}/dist${t}.plan" --threads "${t}" \
        --record "${work}/dist${t}.csv"
    cmp "${work}/ref.csv" "${work}/dist${t}.csv" \
        || { echo "FAIL: distributed CSV differs from single-process" \
                  "at threads ${t}" >&2; exit 1; }
    echo "OK: threads ${t} is byte-identical to the single-process run"
done

echo "=== leg 2: SIGKILL the GM rank, degrade, restart, recover ==="
# Kill at tick 100, restart after 200: the 200-tick outage exceeds the
# 150-tick leases, so lease expiries and fallback stepping must show up
# in the degrade summary — not just dropped grants.
chaos_ticks=480
write_plan chaos "${chaos_ticks}" "1@100" 200
"${npsim}" --distributed "${work}/chaos.plan" \
    --record "${work}/chaos.csv" 2> "${work}/chaos.log" \
    | tee "${work}/chaos.out"
cat "${work}/chaos.log" >&2

grep -q "killed rank 1" "${work}/chaos.log" \
    || { echo "FAIL: supervisor never killed rank 1" >&2; exit 1; }
grep -q "restarted rank 1" "${work}/chaos.log" \
    || { echo "FAIL: supervisor never restarted rank 1" >&2; exit 1; }

# degrade: N dropped, N stale, N lease expiries, N fallback steps, ...
degrade="$(grep '^degrade:' "${work}/chaos.out")"
dropped="$(echo "${degrade}" | sed -n 's/^degrade: \([0-9]*\) dropped.*/\1/p')"
leases="$(echo "${degrade}" | sed -n 's/.*, \([0-9]*\) lease expiries.*/\1/p')"
[ -n "${dropped}" ] && [ "${dropped}" -gt 0 ] \
    || { echo "FAIL: no dropped grants in '${degrade}'" >&2; exit 1; }
[ -n "${leases}" ] && [ "${leases}" -gt 0 ] \
    || { echo "FAIL: no lease expiries in '${degrade}'" >&2; exit 1; }

# Clean recovery: every tick recorded, same sample count as a healthy
# run of the same length would produce.
expected=$((chaos_ticks - 1))
grep -q "wrote ${expected} samples" "${work}/chaos.out" \
    || { echo "FAIL: chaos run did not record all ${expected} samples" >&2
         exit 1; }
echo "OK: degraded (${dropped} dropped, ${leases} lease expiries)," \
     "restarted, and recovered cleanly"

echo "=== leg 3: [obs] plan — fleet scrape, cascade equivalence ==="
obs_ticks=6000
write_plan obs "${obs_ticks}"
cat >> "${work}/obs.plan" <<EOF

[obs]
metrics_every = 5
cascade = true
http = unix:${work}/obs-r%r.sock
EOF

# Single-process run of the same plan: the [obs] section arms the
# registry and the cascade tracer in every replica, so the recorder
# and cascade artifacts must match the distributed run byte for byte.
"${npsim}" --plan "${work}/obs.plan" \
    --record "${work}/obs-plan.csv" \
    --cascade "${work}/obs-plan-cascade.csv" > /dev/null

# Distributed run, scraped while in flight. Only the supervisor gets a
# linger window (the flag beats the plan, which has none), so the node
# processes still exit promptly at BYE.
"${npsim}" --distributed "${work}/obs.plan" \
    --record "${work}/obs-dist.csv" \
    --cascade "${work}/obs-dist-cascade.csv" \
    --metrics "${work}/obs-dist.prom" \
    --http-linger 20000 > "${work}/obs-dist.out" &
daemon=$!

# Mid-run: the supervisor serves the merged fleet view. The first
# per-rank snapshots arrive at the tick-5 barrier, so poll until the
# rank labels show up.
got=""
for _ in $(seq 100); do
    if "${npsfetch}" "unix:${work}/obs-r0.sock" /metrics \
            > "${work}/obs-mid.prom" 2>/dev/null \
        && grep -q 'rank="1"' "${work}/obs-mid.prom"; then
        got=1
        break
    fi
    sleep 0.05
done
[ -n "${got}" ] \
    || { echo "FAIL: supervisor never served a rank-labeled fleet" \
              "view" >&2; exit 1; }
"${npsfetch}" "unix:${work}/obs-r0.sock" /healthz \
    > "${work}/obs-health.json"
grep -q '"final": false' "${work}/obs-health.json" \
    || { echo "FAIL: fleet scrape landed after the run ended —" \
              "raise obs_ticks" >&2; exit 1; }
# Each node serves its own replica on its expanded %r endpoint.
"${npsfetch}" "unix:${work}/obs-r1.sock" /healthz \
    > "${work}/obs-r1-health.json"
grep -q '"rank": 1' "${work}/obs-r1-health.json" \
    || { echo "FAIL: rank 1 endpoint did not identify itself:" \
              "$(cat "${work}/obs-r1-health.json")" >&2; exit 1; }

# End of run: final scrape during the linger window must match the
# --metrics export byte for byte.
final=""
for _ in $(seq 100); do
    if [ -s "${work}/obs-dist.prom" ] \
        && "${npsfetch}" "unix:${work}/obs-r0.sock" /healthz \
            > "${work}/obs-health.json" \
        && grep -q '"final": true' "${work}/obs-health.json"; then
        final=1
        break
    fi
    sleep 0.2
done
[ -n "${final}" ] \
    || { echo "FAIL: supervisor never published a final snapshot" >&2
         exit 1; }
"${npsfetch}" "unix:${work}/obs-r0.sock" /metrics \
    > "${work}/obs-final.prom"
cmp "${work}/obs-dist.prom" "${work}/obs-final.prom" \
    || { echo "FAIL: final scrape differs from the --metrics export" >&2
         exit 1; }
"${npsfetch}" "unix:${work}/obs-r0.sock" /quitz > /dev/null
wait "${daemon}"

# The fleet export must carry the end-of-run snapshot of every rank
# (the last tick always ships, whatever the cadence).
for r in 0 1 2 3; do
    grep -q "^nps_fleet_snapshot_tick{rank=\"${r}\"} $((obs_ticks - 1))$" \
        "${work}/obs-dist.prom" \
        || { echo "FAIL: rank ${r} fleet snapshot is not at the final" \
                  "tick" >&2; exit 1; }
done
# Single-process vs distributed: same ticks, same hops, same bytes.
cmp "${work}/obs-plan.csv" "${work}/obs-dist.csv" \
    || { echo "FAIL: [obs] recorder CSV differs across runtimes" >&2
         exit 1; }
cmp "${work}/obs-plan-cascade.csv" "${work}/obs-dist-cascade.csv" \
    || { echo "FAIL: cascade CSV differs across runtimes" >&2
         exit 1; }
echo "OK: fleet view scraped mid-run; final scrape == export;" \
     "cascade and recorder byte-identical across runtimes"

echo "=== dist smoke: all legs passed ==="
