#!/usr/bin/env bash
#
# End-to-end smoke test for the distributed control plane
# (docs/DISTRIBUTED.md).
#
# Leg 1 (lockstep equivalence): run a 3-level plan — the group manager,
# the enclosure managers and the VM controller each hosted in their own
# npsnode process, four processes total over a unix socket — and require
# the distributed recorder CSV to be byte-identical to the
# single-process run of the same plan, at threads 1 and 4.
#
# Leg 2 (chaos): SIGKILL the GM rank mid-run with an outage longer than
# the 150-tick budget leases (3x the GM's 50-tick period), so the
# survivors must walk the whole degradation ladder — dropped grants,
# lease expiries, fallback stepping — before the supervisor restarts the
# rank from a snapshot; the run must finish rc=0 with every tick
# recorded.
#
# Usage:  tools/dist_smoke.sh [npsim-binary] [workdir]
#
# Exits non-zero on the first mismatch. Stray child processes and
# sockets are cleaned up on any exit path.

set -euo pipefail

npsim="${1:-build/tools/npsim}"
work="${2:-$(mktemp -d)}"
mkdir -p "${work}"
work="$(cd "${work}" && pwd)" # plans embed the socket path: absolute

# A failed or interrupted run can orphan the supervisor's npsnode
# children (they block at the barrier until their socket timeout).
# Every spawned process has the workdir on its command line — the plan
# path for npsnode, the plan or record path for npsim — so kill by
# that, then sweep the sockets.
cleanup() {
    pkill -f -- "${work}/.*\.plan" 2>/dev/null || true
    rm -f "${work}"/*.sock
}
trap cleanup EXIT INT TERM

write_plan() { # <name> <ticks> [kill-spec] [restart-after]
    local name="$1" ticks="$2" kill_spec="${3:-}" restart="${4:-0}"
    cat > "${work}/${name}.plan" <<EOF
[dist]
socket = ${work}/${name}.sock
timeout_ms = 60000
restart_after = ${restart}

[run]
scenario = coordinated
mix = 60M
ticks = ${ticks}

[node group]
levels = gm:*

[node enclosures]
levels = em:*

[node vms]
levels = vmc
EOF
    if [ -n "${kill_spec}" ]; then
        printf '\n[chaos]\nkill = %s\n' "${kill_spec}" \
            >> "${work}/${name}.plan"
    fi
}

echo "=== leg 0: single-process reference ==="
ticks=240
write_plan ref "${ticks}"
"${npsim}" --plan "${work}/ref.plan" --record "${work}/ref.csv"

echo "=== leg 1: distributed run, threads 1 and 4 ==="
for t in 1 4; do
    write_plan "dist${t}" "${ticks}"
    "${npsim}" --distributed "${work}/dist${t}.plan" --threads "${t}" \
        --record "${work}/dist${t}.csv"
    cmp "${work}/ref.csv" "${work}/dist${t}.csv" \
        || { echo "FAIL: distributed CSV differs from single-process" \
                  "at threads ${t}" >&2; exit 1; }
    echo "OK: threads ${t} is byte-identical to the single-process run"
done

echo "=== leg 2: SIGKILL the GM rank, degrade, restart, recover ==="
# Kill at tick 100, restart after 200: the 200-tick outage exceeds the
# 150-tick leases, so lease expiries and fallback stepping must show up
# in the degrade summary — not just dropped grants.
chaos_ticks=480
write_plan chaos "${chaos_ticks}" "1@100" 200
"${npsim}" --distributed "${work}/chaos.plan" \
    --record "${work}/chaos.csv" 2> "${work}/chaos.log" \
    | tee "${work}/chaos.out"
cat "${work}/chaos.log" >&2

grep -q "killed rank 1" "${work}/chaos.log" \
    || { echo "FAIL: supervisor never killed rank 1" >&2; exit 1; }
grep -q "restarted rank 1" "${work}/chaos.log" \
    || { echo "FAIL: supervisor never restarted rank 1" >&2; exit 1; }

# degrade: N dropped, N stale, N lease expiries, N fallback steps, ...
degrade="$(grep '^degrade:' "${work}/chaos.out")"
dropped="$(echo "${degrade}" | sed -n 's/^degrade: \([0-9]*\) dropped.*/\1/p')"
leases="$(echo "${degrade}" | sed -n 's/.*, \([0-9]*\) lease expiries.*/\1/p')"
[ -n "${dropped}" ] && [ "${dropped}" -gt 0 ] \
    || { echo "FAIL: no dropped grants in '${degrade}'" >&2; exit 1; }
[ -n "${leases}" ] && [ "${leases}" -gt 0 ] \
    || { echo "FAIL: no lease expiries in '${degrade}'" >&2; exit 1; }

# Clean recovery: every tick recorded, same sample count as a healthy
# run of the same length would produce.
expected=$((chaos_ticks - 1))
grep -q "wrote ${expected} samples" "${work}/chaos.out" \
    || { echo "FAIL: chaos run did not record all ${expected} samples" >&2
         exit 1; }
echo "OK: degraded (${dropped} dropped, ${leases} lease expiries)," \
     "restarted, and recovered cleanly"

echo "=== dist smoke: all legs passed ==="
