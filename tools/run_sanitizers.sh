#!/usr/bin/env bash
#
# Build and run the concurrency-sensitive test suites under
# ThreadSanitizer and AddressSanitizer+UBSan, via the NPS_SANITIZE
# CMake knob (see CMakeLists.txt).
#
# Usage:  tools/run_sanitizers.sh [build-root]
#
# Build trees land under <build-root> (default: build-san/) so they
# never disturb the regular build/. Exits non-zero on the first
# sanitizer report or test failure.

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_root="${1:-${repo_root}/build-san}"

# The suites that exercise the parallel engine: the engine unit and
# fuzz tests, the serial-vs-parallel determinism suite, the
# golden-master scenarios (which run at threads = 1 and 4), the
# fault-injection chaos layer (whose injector queries run on the
# sharded worker threads), the checkpoint layer (snapshot format,
# the resume-equality matrix that crosses thread counts, the
# fork-and-SIGKILL chaos harness, and the link/lease edge suites the
# restore path depends on), the fleet-scale layer (parallel trace
# generation in sim/test_fleetgen, the 5000-server SoA hot path across
# thread counts in integration/test_fleet_scale), and the online
# telemetry layer (the frame-decoder fuzz battery over adversarial
# byte streams, the socket-fed StreamSource/ClusterFeed policy suite,
# and the replay-equivalence matrix that crosses thread counts with a
# live feeder thread writing into the engine), and the distributed
# control plane (the transport-seam sequence suite that drives a real
# hub/leaf socket pair, the distributed-frame codec battery, the plan
# loader's death tests, and the multi-process equivalence suite that
# forks sanitized npsim/npsnode trees and crosses thread counts), and
# the live observability plane (the snapshot codec and fleet-merge
# unit suite, the HTTP exporter suite whose serve thread is scraped
# while the engine thread publishes, and the cascade-trace invariance
# suite that crosses thread counts and the plan/distributed runtimes),
# and the network-emulation layer (the schedule/transport unit suites,
# the chaos campaigns that cross thread counts over the full
# coordinator, the seq-wraparound reorder-window regression, the
# frame-decoder single-byte-flip fuzz battery, the listen/backoff
# socket suite with real connecting threads, and the multi-process
# netem equivalence suite that forks sanitized npsim/npsnode trees).
test_regex='sim/test_engine|sim/test_engine_fuzz|sim/test_fleetgen|integration/test_determinism|integration/test_fleet_scale|golden/test_golden_master|fault/test_injector|fault/test_chaos|fault/test_degradation|ckpt/test_snapshot|ckpt/test_resume|ckpt/test_chaos_kill|bus/test_link_replay|bus/test_transport_seq|bus/test_seq_wraparound|controllers/test_lease_boundary|stream/test_frame|stream/test_frame_fuzz|stream/test_dist_frames|stream/test_stream_source|stream/test_silence_equiv|stream/test_replay_equiv|stream/test_listen_backoff|core/test_plan_io|integration/test_dist_equiv|integration/test_netem_equiv|netem/test_netem_schedule|netem/test_netem_transport|netem/test_netem_campaign|obs/test_live_agg|obs/test_live_http|obs/test_cascade'

run_one() {
    local label="$1"
    local sanitize="$2"
    local build_dir="${build_root}/${label}"
    echo "=== ${label}: configuring (${sanitize}) ==="
    cmake -B "${build_dir}" -S "${repo_root}" \
        -DNPS_SANITIZE="${sanitize}" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
    echo "=== ${label}: building ==="
    cmake --build "${build_dir}" -j "$(nproc)" >/dev/null
    echo "=== ${label}: running ${test_regex} ==="
    (cd "${build_dir}" && ctest -R "${test_regex}" --output-on-failure)
}

# halt_on_error makes the first data race fail the test run instead of
# just printing a report.
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}"
export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1 print_stacktrace=1}"

run_one tsan thread
run_one asan address,undefined

echo "=== all sanitizer suites passed ==="
