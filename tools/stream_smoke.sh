#!/usr/bin/env bash
#
# End-to-end smoke test for the online telemetry engine
# (docs/STREAMING.md).
#
# Leg 1 (replay equivalence): run npsim in batch mode, then run
# `npsfeed | npsim --serve stdin` over the same campaign at several
# thread counts, and require every artifact — telemetry CSV, series,
# metrics export — to be byte-identical. The nps_stream_* metric
# families are transport-timing diagnostics that only exist in daemon
# mode, so the metrics diff filters them out (everything else must
# match exactly).
#
# Leg 2 (unix socket): same equivalence over a unix-domain socket.
#
# Leg 3 (killed feeder): SIGKILL the feeder mid-run; the daemon must
# exit cleanly (no hang, no crash) and its partial telemetry CSV must
# be a byte-prefix of the batch run's.
#
# Leg 4 (checkpoint + resume under --serve): checkpoint the daemon
# mid-stream, then resume with a feeder that picks up at the
# checkpointed tick; the final artifacts must match the batch run.
#
# Usage:  tools/stream_smoke.sh [npsim-binary] [npsfeed-binary] [workdir]
#
# Exits non-zero on the first mismatch.

set -euo pipefail

npsim="${1:-build/tools/npsim}"
npsfeed="${2:-build/tools/npsfeed}"
work="${3:-$(mktemp -d)}"
mkdir -p "${work}"

# Legs 2-4 background a daemon and a feeder; a failed diff, an early
# exit under `set -e`, or an interrupt must not leave either process
# running or their sockets behind.
daemon=""
feeder=""
cleanup() {
    [ -n "${daemon}" ] && kill "${daemon}" 2>/dev/null || true
    [ -n "${feeder}" ] && kill "${feeder}" 2>/dev/null || true
    rm -f "${work}"/*.sock
}
trap cleanup EXIT INT TERM

ticks=480
mix=180

common=(--scenario coordinated --mix "${mix}" --ticks "${ticks}"
        --log-level warn)

# Strip the stream-only metric families before diffing: ingest lag,
# batch sizes, and decode tallies depend on socket timing, not on the
# simulation, and have no batch-mode counterpart.
filter_stream_metrics() { # <in> <out>
    grep -v '^nps_stream_' "$1" | grep -v '^# .*nps_stream_' > "$2"
}

echo "=== leg 0: batch reference ==="
"${npsim}" "${common[@]}" \
    --record "${work}/ref-record.csv" \
    --series "${work}/ref-series.csv" \
    --metrics "${work}/ref-metrics.prom"
filter_stream_metrics "${work}/ref-metrics.prom" "${work}/ref-metrics.flt"

check_identical() { # <prefix>
    diff "${work}/ref-record.csv" "${work}/$1-record.csv" \
        || { echo "FAIL: $1 record differs from batch" >&2; exit 1; }
    diff "${work}/ref-series.csv" "${work}/$1-series.csv" \
        || { echo "FAIL: $1 series differs from batch" >&2; exit 1; }
    filter_stream_metrics "${work}/$1-metrics.prom" "${work}/$1-metrics.flt"
    diff "${work}/ref-metrics.flt" "${work}/$1-metrics.flt" \
        || { echo "FAIL: $1 metrics differ from batch" >&2; exit 1; }
    echo "OK: $1 is byte-identical to the batch run"
}

echo "=== leg 1: stdin pipe, threads 1 and 4 ==="
for t in 1 4; do
    "${npsfeed}" --mix "${mix}" --ticks "${ticks}" \
        | "${npsim}" "${common[@]}" --serve stdin --threads "${t}" \
            --record "${work}/pipe${t}-record.csv" \
            --series "${work}/pipe${t}-series.csv" \
            --metrics "${work}/pipe${t}-metrics.prom"
    check_identical "pipe${t}"
done

echo "=== leg 2: unix socket ==="
sock="${work}/nps.sock"
"${npsim}" "${common[@]}" --serve "unix:${sock}" --threads 4 \
    --record "${work}/sock-record.csv" \
    --series "${work}/sock-series.csv" \
    --metrics "${work}/sock-metrics.prom" &
daemon=$!
"${npsfeed}" --mix "${mix}" --ticks "${ticks}" --to "unix:${sock}"
wait "${daemon}"
daemon=""
check_identical "sock"

echo "=== leg 3: feeder SIGKILLed mid-run ==="
sock="${work}/nps-kill.sock"
"${npsim}" "${common[@]}" --serve "unix:${sock}" \
    --record "${work}/kill-record.csv" &
daemon=$!
# Paced so the campaign takes ~2s: the SIGKILL lands mid-stream, not
# after a too-fast feeder already signed off.
"${npsfeed}" --mix "${mix}" --ticks "${ticks}" --pace-ms 4 \
    --to "unix:${sock}" &
feeder=$!
sleep 0.4
kill -9 "${feeder}" 2>/dev/null || true
wait "${feeder}" 2>/dev/null || true
feeder=""
# The daemon must notice the dead peer and exit cleanly on its own —
# a hang here fails the smoke via the surrounding CI timeout.
wait "${daemon}" \
    || { echo "FAIL: daemon exited non-zero after feeder kill" >&2
         exit 1; }
daemon=""
# Whatever was simulated must be a byte-prefix of the batch output:
# the daemon only commits barrier-complete ticks.
got="${work}/kill-record.csv"
lines=$(wc -l < "${got}")
head -n "${lines}" "${work}/ref-record.csv" | cmp - "${got}" \
    || { echo "FAIL: partial record is not a prefix of the batch run" >&2
         exit 1; }
echo "OK: killed-feeder run exited cleanly with a ${lines}-line prefix"

echo "=== leg 4: checkpoint mid-stream, resume under --serve ==="
ckpt="${work}/ckpt"
mkdir -p "${ckpt}"
half=$((ticks / 2))
# First half: the feeder covers [0, half); the daemon checkpoints every
# 60 ticks and ends early (cleanly) when the stream signs off. The obs
# artifacts must be enabled here too — a resume leg may only ask for
# artifacts the checkpointed run was collecting.
"${npsfeed}" --mix "${mix}" --ticks "${half}" \
    | "${npsim}" "${common[@]}" --serve stdin \
        --checkpoint-every 60 --checkpoint-dir "${ckpt}" \
        --record "${work}/half-record.csv" \
        --series "${work}/half-series.csv" \
        --metrics "${work}/half-metrics.prom"
# Resume from the newest snapshot; the feeder picks up at its tick.
"${npsfeed}" --mix "${mix}" --ticks "${ticks}" --start-tick "${half}" \
    | "${npsim}" "${common[@]}" --serve stdin --resume latest \
        --checkpoint-dir "${ckpt}" \
        --record "${work}/resumed-record.csv" \
        --series "${work}/resumed-series.csv" \
        --metrics "${work}/resumed-metrics.prom"
check_identical "resumed"

echo "=== stream smoke: all legs passed ==="
