#!/usr/bin/env bash
#
# End-to-end smoke test for the online telemetry engine
# (docs/STREAMING.md).
#
# Leg 1 (replay equivalence): run npsim in batch mode, then run
# `npsfeed | npsim --serve stdin` over the same campaign at several
# thread counts, and require every artifact — telemetry CSV, series,
# metrics export — to be byte-identical. The nps_stream_* metric
# families are transport-timing diagnostics that only exist in daemon
# mode, so the metrics diff filters them out (everything else must
# match exactly).
#
# Leg 2 (unix socket): same equivalence over a unix-domain socket.
#
# Leg 3 (killed feeder): SIGKILL the feeder mid-run; the daemon must
# exit cleanly (no hang, no crash) and its partial telemetry CSV must
# be a byte-prefix of the batch run's.
#
# Leg 4 (checkpoint + resume under --serve): checkpoint the daemon
# mid-stream, then resume with a feeder that picks up at the
# checkpointed tick; the final artifacts must match the batch run.
#
# Leg 5 (live endpoints): serve /metrics and /healthz over --http while
# the run is in flight (docs/OBSERVABILITY.md); the mid-run scrape must
# be well-formed, and the final scrape during the linger window must be
# byte-identical to the end-of-run --metrics export.
#
# Usage:  tools/stream_smoke.sh [npsim-binary] [npsfeed-binary] [workdir]
#
# Exits non-zero on the first mismatch.

set -euo pipefail

npsim="${1:-build/tools/npsim}"
npsfeed="${2:-build/tools/npsfeed}"
work="${3:-$(mktemp -d)}"
npsfetch="$(dirname "${npsim}")/npsfetch"
mkdir -p "${work}"

# Legs 2-5 background a daemon and a feeder; a failed diff, an early
# exit under `set -e`, or an interrupt must not leave either process —
# or any child they spawned — running, nor their listener sockets
# behind (a leaked socket breaks the next run on the same path). Kill
# the tracked pids first, then sweep anything that still carries the
# workdir on its command line (daemon artifact paths, npsfeed --to,
# npsfetch endpoints), excluding this shell, and escalate to SIGKILL.
daemon=""
feeder=""
cleanup() {
    local p
    [ -n "${daemon}" ] && kill "${daemon}" 2>/dev/null || true
    [ -n "${feeder}" ] && kill "${feeder}" 2>/dev/null || true
    for p in $(pgrep -f -- "${work}/" 2>/dev/null || true); do
        [ "${p}" = "$$" ] || kill "${p}" 2>/dev/null || true
    done
    sleep 0.2
    for p in $(pgrep -f -- "${work}/" 2>/dev/null || true); do
        [ "${p}" = "$$" ] || kill -9 "${p}" 2>/dev/null || true
    done
    rm -f "${work}"/*.sock
}
trap cleanup EXIT INT TERM

ticks=480
mix=180

common=(--scenario coordinated --mix "${mix}" --ticks "${ticks}"
        --log-level warn)

# Strip the nondeterministic metric families before diffing — series
# lines and their # HELP/# TYPE headers both. nps_stream_* are ingest
# diagnostics that depend on socket timing and have no batch-mode
# counterpart; nps_rt_* are the wall-clock runtime histograms (tick
# latency, pull wait), different on every run by construction.
filter_stream_metrics() { # <in> <out>
    grep -v -e '^nps_stream_' -e '^nps_rt_' "$1" \
        | grep -v -e '^# .*nps_stream_' -e '^# .*nps_rt_' > "$2"
}

echo "=== leg 0: batch reference ==="
"${npsim}" "${common[@]}" \
    --record "${work}/ref-record.csv" \
    --series "${work}/ref-series.csv" \
    --metrics "${work}/ref-metrics.prom"
filter_stream_metrics "${work}/ref-metrics.prom" "${work}/ref-metrics.flt"

check_identical() { # <prefix>
    diff "${work}/ref-record.csv" "${work}/$1-record.csv" \
        || { echo "FAIL: $1 record differs from batch" >&2; exit 1; }
    diff "${work}/ref-series.csv" "${work}/$1-series.csv" \
        || { echo "FAIL: $1 series differs from batch" >&2; exit 1; }
    filter_stream_metrics "${work}/$1-metrics.prom" "${work}/$1-metrics.flt"
    diff "${work}/ref-metrics.flt" "${work}/$1-metrics.flt" \
        || { echo "FAIL: $1 metrics differ from batch" >&2; exit 1; }
    echo "OK: $1 is byte-identical to the batch run"
}

echo "=== leg 1: stdin pipe, threads 1 and 4 ==="
for t in 1 4; do
    "${npsfeed}" --mix "${mix}" --ticks "${ticks}" \
        | "${npsim}" "${common[@]}" --serve stdin --threads "${t}" \
            --record "${work}/pipe${t}-record.csv" \
            --series "${work}/pipe${t}-series.csv" \
            --metrics "${work}/pipe${t}-metrics.prom"
    check_identical "pipe${t}"
done

echo "=== leg 2: unix socket ==="
sock="${work}/nps.sock"
"${npsim}" "${common[@]}" --serve "unix:${sock}" --threads 4 \
    --record "${work}/sock-record.csv" \
    --series "${work}/sock-series.csv" \
    --metrics "${work}/sock-metrics.prom" &
daemon=$!
"${npsfeed}" --mix "${mix}" --ticks "${ticks}" --to "unix:${sock}"
wait "${daemon}"
daemon=""
check_identical "sock"

echo "=== leg 3: feeder SIGKILLed mid-run ==="
sock="${work}/nps-kill.sock"
"${npsim}" "${common[@]}" --serve "unix:${sock}" \
    --record "${work}/kill-record.csv" &
daemon=$!
# Paced so the campaign takes ~2s: the SIGKILL lands mid-stream, not
# after a too-fast feeder already signed off.
"${npsfeed}" --mix "${mix}" --ticks "${ticks}" --pace-ms 4 \
    --to "unix:${sock}" &
feeder=$!
sleep 0.4
kill -9 "${feeder}" 2>/dev/null || true
wait "${feeder}" 2>/dev/null || true
feeder=""
# The daemon must notice the dead peer and exit cleanly on its own —
# a hang here fails the smoke via the surrounding CI timeout.
wait "${daemon}" \
    || { echo "FAIL: daemon exited non-zero after feeder kill" >&2
         exit 1; }
daemon=""
# Whatever was simulated must be a byte-prefix of the batch output:
# the daemon only commits barrier-complete ticks.
got="${work}/kill-record.csv"
lines=$(wc -l < "${got}")
head -n "${lines}" "${work}/ref-record.csv" | cmp - "${got}" \
    || { echo "FAIL: partial record is not a prefix of the batch run" >&2
         exit 1; }
echo "OK: killed-feeder run exited cleanly with a ${lines}-line prefix"

echo "=== leg 4: checkpoint mid-stream, resume under --serve ==="
ckpt="${work}/ckpt"
mkdir -p "${ckpt}"
half=$((ticks / 2))
# First half: the feeder covers [0, half); the daemon checkpoints every
# 60 ticks and ends early (cleanly) when the stream signs off. The obs
# artifacts must be enabled here too — a resume leg may only ask for
# artifacts the checkpointed run was collecting.
"${npsfeed}" --mix "${mix}" --ticks "${half}" \
    | "${npsim}" "${common[@]}" --serve stdin \
        --checkpoint-every 60 --checkpoint-dir "${ckpt}" \
        --record "${work}/half-record.csv" \
        --series "${work}/half-series.csv" \
        --metrics "${work}/half-metrics.prom"
# Resume from the newest snapshot; the feeder picks up at its tick.
"${npsfeed}" --mix "${mix}" --ticks "${ticks}" --start-tick "${half}" \
    | "${npsim}" "${common[@]}" --serve stdin --resume latest \
        --checkpoint-dir "${ckpt}" \
        --record "${work}/resumed-record.csv" \
        --series "${work}/resumed-series.csv" \
        --metrics "${work}/resumed-metrics.prom"
check_identical "resumed"

echo "=== leg 5: live /metrics while the run is in flight ==="
sock="${work}/nps-live.sock"
http="${work}/nps-live-http.sock"
"${npsim}" "${common[@]}" --serve "unix:${sock}" \
    --http "unix:${http}" --http-linger 20000 \
    --record "${work}/live-record.csv" \
    --metrics "${work}/live-metrics.prom" &
daemon=$!
# Paced like leg 3 so the mid-run scrape really lands mid-run.
"${npsfeed}" --mix "${mix}" --ticks "${ticks}" --pace-ms 4 \
    --to "unix:${sock}" &
feeder=$!
sleep 0.4
"${npsfetch}" "unix:${http}" /healthz > "${work}/live-health.json"
grep -q '"final": false' "${work}/live-health.json" \
    || { echo "FAIL: mid-run /healthz is not live:" \
              "$(cat "${work}/live-health.json")" >&2; exit 1; }
"${npsfetch}" "unix:${http}" /metrics > "${work}/live-mid.prom"
grep -q '^# TYPE nps_rt_tick_wall_ms histogram' "${work}/live-mid.prom" \
    || { echo "FAIL: mid-run /metrics lacks the runtime histogram" >&2
         exit 1; }
grep -q '^nps_stream_samples_total' "${work}/live-mid.prom" \
    || { echo "FAIL: mid-run /metrics lacks the stream counters" >&2
         exit 1; }
wait "${feeder}"
feeder=""
# End of run: the daemon publishes the final snapshot, writes the
# export, then lingers for late scrapers. Wait for both, then the last
# scrape must be byte-identical to the export file.
final=""
for _ in $(seq 100); do
    if [ -s "${work}/live-metrics.prom" ] \
        && "${npsfetch}" "unix:${http}" /healthz \
            > "${work}/live-health.json" \
        && grep -q '"final": true' "${work}/live-health.json"; then
        final=1
        break
    fi
    sleep 0.2
done
[ -n "${final}" ] \
    || { echo "FAIL: daemon never published a final snapshot" >&2
         exit 1; }
"${npsfetch}" "unix:${http}" /metrics > "${work}/live-final.prom"
cmp "${work}/live-metrics.prom" "${work}/live-final.prom" \
    || { echo "FAIL: final scrape differs from the --metrics export" >&2
         exit 1; }
"${npsfetch}" "unix:${http}" /quitz > /dev/null
wait "${daemon}"
daemon=""
# The live plane is observation-only: the recorder CSV must still match
# the batch reference byte for byte.
diff "${work}/ref-record.csv" "${work}/live-record.csv" \
    || { echo "FAIL: record differs from batch with --http live" >&2
         exit 1; }
echo "OK: live endpoints served mid-run; final scrape == export"

echo "=== stream smoke: all legs passed ==="
