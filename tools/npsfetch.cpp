/**
 * @file
 * npsfetch — one-shot HTTP GET against a live observability endpoint
 * (docs/OBSERVABILITY.md), for smoke scripts and CI on hosts without
 * curl. Speaks just enough HTTP/1.0 for obs/live/exporter.cpp: send
 * the request line, read to EOF, print the body on stdout.
 *
 * Exit status: 0 on a 200 response, 2 on any other status line, 1 on
 * a transport error (fatal with a message).
 *
 * Examples:
 *   npsfetch unix:/tmp/live.sock /metrics
 *   npsfetch tcp:9090 /healthz
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include <sys/socket.h>
#include <unistd.h>

#include "stream/net.h"
#include "util/logging.h"

namespace {

using namespace nps;

[[noreturn]] void
usage()
{
    std::printf("usage: npsfetch SPEC PATH [--timeout-ms MS]\n"
                "  SPEC  endpoint: PORT, tcp:PORT, tcp:HOST:PORT or\n"
                "        unix:PATH (the [obs] http spec of the serving\n"
                "        process)\n"
                "  PATH  URL path, e.g. /metrics or /healthz\n"
                "  --timeout-ms MS  connect retry budget (default 5000)\n");
    std::exit(0);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string spec;
    std::string path;
    unsigned timeout_ms = 5000;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--help" || a == "-h") {
            usage();
        } else if (a == "--timeout-ms") {
            if (i + 1 >= argc)
                util::fatal("--timeout-ms needs a value");
            timeout_ms = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (spec.empty()) {
            spec = a;
        } else if (path.empty()) {
            path = a;
        } else {
            util::fatal("unexpected argument '%s' (try --help)",
                        a.c_str());
        }
    }
    if (spec.empty() || path.empty())
        util::fatal("npsfetch needs SPEC and PATH (try --help)");
    if (path[0] != '/')
        util::fatal("PATH must start with '/', not '%s'", path.c_str());
    // Bare digits mean a loopback TCP port, matching the exporter.
    if (spec.find_first_not_of("0123456789") == std::string::npos &&
        !spec.empty())
        spec = "tcp:" + spec;

    int fd = stream::connectTo(spec, timeout_ms);
    const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
    if (!stream::writeAll(fd, request.data(), request.size()))
        util::fatal("npsfetch: %s closed the connection mid-request",
                    spec.c_str());
    ::shutdown(fd, SHUT_WR);

    std::string response;
    char buf[4096];
    for (;;) {
        ssize_t n = ::read(fd, buf, sizeof buf);
        if (n < 0)
            util::fatal("npsfetch: read from %s failed", spec.c_str());
        if (n == 0)
            break;
        response.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);

    size_t eol = response.find("\r\n");
    if (eol == std::string::npos)
        util::fatal("npsfetch: %s sent no HTTP status line",
                    spec.c_str());
    const std::string status = response.substr(0, eol);
    size_t split = response.find("\r\n\r\n");
    if (split == std::string::npos)
        util::fatal("npsfetch: %s sent headers without a body separator",
                    spec.c_str());
    const std::string body = response.substr(split + 4);
    std::fwrite(body.data(), 1, body.size(), stdout);
    if (status.find(" 200 ") == std::string::npos) {
        std::fprintf(stderr, "npsfetch: %s %s -> %s\n", spec.c_str(),
                     path.c_str(), status.c_str());
        return 2;
    }
    return 0;
}
