/**
 * @file
 * npstrace — generate, inspect, and convert utilization-trace
 * campaigns.
 *
 *   npstrace generate --out traces.csv [--seed N] [--length N]
 *       Write the full 180-trace synthetic campaign as long-form CSV.
 *   npstrace stats [--in traces.csv] [--seed N]
 *       Print per-class and per-mix statistics of a campaign (from a
 *       file or freshly generated).
 *
 * The CSV format (`name,class,tick,util`) is the interchange point for
 * driving the simulator with externally collected traces.
 */

#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "trace/analysis.h"
#include "trace/generator.h"
#include "trace/trace_io.h"
#include "trace/workload.h"
#include "util/logging.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/thread_pool.h"

#include <iostream>

namespace {

using namespace nps;

[[noreturn]] void
usage()
{
    std::printf(
        "usage: npstrace <command> [options]\n"
        "  generate --out FILE [--seed N] [--length N] [--threads N]\n"
        "  stats [--in FILE] [--seed N] [--length N] [--threads N]\n"
        "--threads fans campaign generation across workers (0 = all\n"
        "cores); the generated traces are identical for any value.\n");
    std::exit(0);
}

struct Args
{
    std::string command;
    std::string in_path;
    std::string out_path;
    uint64_t seed = 20080301;
    size_t length = 2880;
    unsigned threads = 1;
};

Args
parse(int argc, char **argv)
{
    if (argc < 2)
        usage();
    Args args;
    args.command = argv[1];
    auto need = [&](int i) {
        if (i + 1 >= argc)
            util::fatal("%s needs a value", argv[i]);
        return argv[i + 1];
    };
    for (int i = 2; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--in")
            args.in_path = need(i), ++i;
        else if (a == "--out")
            args.out_path = need(i), ++i;
        else if (a == "--seed")
            args.seed = std::strtoull(need(i), nullptr, 10), ++i;
        else if (a == "--length")
            args.length = std::strtoull(need(i), nullptr, 10), ++i;
        else if (a == "--threads")
            args.threads = static_cast<unsigned>(
                std::strtoul(need(i), nullptr, 10)), ++i;
        else if (a == "--help" || a == "-h")
            usage();
        else
            util::fatal("unknown argument '%s'", a.c_str());
    }
    return args;
}

std::vector<trace::UtilizationTrace>
campaign(const Args &args)
{
    if (!args.in_path.empty())
        return trace::readTracesFile(args.in_path);
    trace::GeneratorConfig gen;
    gen.seed = args.seed;
    gen.trace_length = args.length;
    util::ThreadPool pool(args.threads);
    return trace::TraceGenerator(gen).generateAll(&pool);
}

void
cmdGenerate(const Args &args)
{
    if (args.out_path.empty())
        util::fatal("generate needs --out FILE");
    auto traces = campaign(args);
    trace::writeTracesFile(args.out_path, traces);
    std::printf("wrote %zu traces x %zu ticks to %s\n", traces.size(),
                traces.front().length(), args.out_path.c_str());
}

void
cmdStats(const Args &args)
{
    auto traces = campaign(args);

    // Per-class statistics.
    std::map<std::string, util::RunningStats> by_class;
    util::RunningStats all;
    for (const auto &t : traces) {
        by_class[trace::workloadClassName(t.workloadClass())]
            .add(t.mean());
        all.add(t.mean());
    }
    util::Table cls("per-class mean utilization across the campaign");
    cls.header({"class", "traces", "mean %", "min %", "max %"});
    for (const auto &[name, stats] : by_class) {
        cls.row({name, std::to_string(stats.count()),
                 util::Table::pct(stats.mean()),
                 util::Table::pct(stats.min()),
                 util::Table::pct(stats.max())});
    }
    cls.row({"(all)", std::to_string(all.count()),
             util::Table::pct(all.mean()), util::Table::pct(all.min()),
             util::Table::pct(all.max())});
    cls.print(std::cout);

    // Structural profile of a few representative traces.
    util::Table prof("\ntrace profiles (first of each class)");
    prof.header({"trace", "mean %", "p95 %", "peak/mean", "diurnal",
                 "lag-1 ac", "spread sigma@95"});
    std::map<std::string, bool> seen;
    for (const auto &t : traces) {
        std::string cls = trace::workloadClassName(t.workloadClass());
        if (seen[cls])
            continue;
        seen[cls] = true;
        auto p = trace::profileTrace(t, 288);
        prof.row({t.name(), util::Table::pct(p.mean),
                  util::Table::pct(p.p95),
                  util::Table::num(p.peak_to_mean, 2),
                  util::Table::num(p.diurnal_strength, 2),
                  util::Table::num(p.lag1_autocorr, 2),
                  util::Table::num(
                      trace::suggestedSpreadSigma(t, 0.95), 2)});
    }
    prof.print(std::cout);

    // Per-mix statistics (needs a full campaign).
    if (traces.size() >= 180) {
        trace::WorkloadLibrary lib(traces);
        util::Table mixes("\nper-mix mean utilization");
        mixes.header({"mix", "workloads", "mean util %"});
        for (auto mix : trace::allMixes()) {
            mixes.row({trace::mixName(mix),
                       std::to_string(trace::mixSize(mix)),
                       util::Table::pct(lib.mixMeanUtil(mix))});
        }
        mixes.print(std::cout);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    Args args = parse(argc, argv);
    if (args.command == "generate")
        cmdGenerate(args);
    else if (args.command == "stats")
        cmdStats(args);
    else
        usage();
    return 0;
}
