#!/usr/bin/env bash
#
# End-to-end smoke test for the deterministic network-emulation layer
# (docs/NETWORK_FAULTS.md).
#
# Leg 1 (storm equivalence): run a 3-level plan with a [netem] latency
# storm — jittered delays on every link plus wire-level duplication and
# corruption on the EM fan-out — as four processes over a unix socket,
# and require the recorder CSV to be byte-identical to the
# single-process `--plan` oracle of the same plan, at threads 1 and 4.
# Duplication and corruption must be absorbed by the receiver's dedup
# window and the NPSF CRC/resync, so they can never show up in a CSV.
#
# Leg 2 (partition/heal): script a gm<->em partition that outlives the
# 150-tick budget lease (3x the GM's 50-tick period). The survivors
# must walk the degradation ladder — dropped grants, lease expiries,
# fallback stepping — while the netem summary shows the partition
# drops; after the heal the run must finish rc=0 with every tick
# recorded.
#
# Leg 3 (kill + reconnect under latency): SIGKILL the EM rank mid-storm
# with restart_after armed. The respawned npsnode must reconnect
# through the backoff path, resync from the supervisor snapshot (netem
# delivery queue included), and the run must finish full-length.
#
# Usage:  tools/netem_smoke.sh [npsim-binary] [workdir]
#
# Exits non-zero on the first mismatch. Stray child processes and
# sockets are cleaned up on any exit path.

set -euo pipefail

npsim="${1:-build/tools/npsim}"
work="${2:-$(mktemp -d)}"
mkdir -p "${work}"
work="$(cd "${work}" && pwd)" # plans embed the socket path: absolute

# Same sweep as dist_smoke.sh: every spawned process carries the
# workdir on its command line, so reap by that — excluding this shell —
# escalate to SIGKILL, then remove the listener sockets a failed leg
# would otherwise leak into the next run.
cleanup() {
    local p
    for p in $(pgrep -f -- "${work}/" 2>/dev/null || true); do
        [ "${p}" = "$$" ] || kill "${p}" 2>/dev/null || true
    done
    sleep 0.2
    for p in $(pgrep -f -- "${work}/" 2>/dev/null || true); do
        [ "${p}" = "$$" ] || kill -9 "${p}" 2>/dev/null || true
    done
    rm -f "${work}"/*.sock
}
trap cleanup EXIT INT TERM

write_plan() { # <name> <ticks> <netem-script> [deadline] [kill] [restart]
    local name="$1" ticks="$2" script="$3" deadline="${4:-0}"
    local kill_spec="${5:-}" restart="${6:-0}"
    cat > "${work}/${name}.plan" <<EOF
[dist]
socket = ${work}/${name}.sock
timeout_ms = 60000
restart_after = ${restart}
reconnect_attempts = 10
reconnect_base_ms = 20
reconnect_max_ms = 200

[run]
scenario = coordinated
mix = 60M
ticks = ${ticks}

[node group]
levels = gm:*

[node enclosures]
levels = em:*

[node vms]
levels = vmc
EOF
    if [ -n "${script}" ]; then
        printf '\n[netem]\nseed = 7\n' >> "${work}/${name}.plan"
        [ "${deadline}" != "0" ] \
            && printf 'deadline_ticks = %s\n' "${deadline}" \
                >> "${work}/${name}.plan"
        printf 'script = %s\n' "${script}" >> "${work}/${name}.plan"
    fi
    if [ -n "${kill_spec}" ]; then
        printf '\n[chaos]\nkill = %s\n' "${kill_spec}" \
            >> "${work}/${name}.plan"
    fi
}

storm='delay * 40 200 1 3; dup em-sm 40 200 0.4; corrupt em-sm 40 200 0.3'

echo "=== leg 1: latency storm — distributed vs --plan oracle ==="
ticks=240
write_plan ref "${ticks}" "${storm}" 5
"${npsim}" --plan "${work}/ref.plan" --record "${work}/ref.csv" \
    | tee "${work}/ref.out"
grep -q '^netem:' "${work}/ref.out" \
    || { echo "FAIL: oracle run never exercised the virtual wire" >&2
         exit 1; }
for t in 1 4; do
    write_plan "storm${t}" "${ticks}" "${storm}" 5
    "${npsim}" --distributed "${work}/storm${t}.plan" --threads "${t}" \
        --record "${work}/storm${t}.csv"
    cmp "${work}/ref.csv" "${work}/storm${t}.csv" \
        || { echo "FAIL: netem distributed CSV differs from the --plan" \
                  "oracle at threads ${t}" >&2; exit 1; }
    echo "OK: threads ${t} is byte-identical to the --plan oracle"
done

echo "=== leg 2: gm<->em partition outliving the lease, then heal ==="
# Dark for 180 ticks — past the 150-tick lease — healed with 200 ticks
# left to recover.
part_ticks=480
write_plan part "${part_ticks}" 'partition gm-em 100 280'
"${npsim}" --distributed "${work}/part.plan" \
    --record "${work}/part.csv" | tee "${work}/part.out"

# degrade: N dropped, N stale, N lease expiries, N fallback steps, ...
degrade="$(grep '^degrade:' "${work}/part.out")"
dropped="$(echo "${degrade}" | sed -n 's/^degrade: \([0-9]*\) dropped.*/\1/p')"
leases="$(echo "${degrade}" | sed -n 's/.*, \([0-9]*\) lease expiries.*/\1/p')"
fallback="$(echo "${degrade}" | sed -n 's/.*, \([0-9]*\) fallback steps.*/\1/p')"
[ -n "${dropped}" ] && [ "${dropped}" -gt 0 ] \
    || { echo "FAIL: no dropped grants in '${degrade}'" >&2; exit 1; }
[ -n "${leases}" ] && [ "${leases}" -gt 0 ] \
    || { echo "FAIL: no lease expiries in '${degrade}'" >&2; exit 1; }
[ -n "${fallback}" ] && [ "${fallback}" -gt 0 ] \
    || { echo "FAIL: no fallback steps in '${degrade}'" >&2; exit 1; }

# netem: N delayed, N late, N expired, N partition drops, ...
netem="$(grep '^netem:' "${work}/part.out")"
pdrops="$(echo "${netem}" | sed -n 's/.*, \([0-9]*\) partition drops.*/\1/p')"
[ -n "${pdrops}" ] && [ "${pdrops}" -gt 0 ] \
    || { echo "FAIL: no partition drops in '${netem}'" >&2; exit 1; }

# Clean recovery: every tick recorded despite the outage.
expected=$((part_ticks - 1))
grep -q "wrote ${expected} samples" "${work}/part.out" \
    || { echo "FAIL: partition run did not record all ${expected}" \
              "samples" >&2; exit 1; }
echo "OK: partition degraded (${dropped} dropped, ${leases} lease" \
     "expiries, ${fallback} fallback steps, ${pdrops} partition" \
     "drops) and healed cleanly"

echo "=== leg 3: SIGKILL the EM rank mid-storm, reconnect, recover ==="
kill_ticks=360
write_plan kill "${kill_ticks}" 'delay * 40 300 1 2' 0 '2@120' 100
"${npsim}" --distributed "${work}/kill.plan" \
    --record "${work}/kill.csv" 2> "${work}/kill.log" \
    | tee "${work}/kill.out"
cat "${work}/kill.log" >&2

grep -q 'killed rank 2' "${work}/kill.log" \
    || { echo "FAIL: supervisor never killed rank 2" >&2; exit 1; }
grep -q 'restarted rank 2' "${work}/kill.log" \
    || { echo "FAIL: rank 2 never reconnected" >&2; exit 1; }
expected=$((kill_ticks - 1))
grep -q "wrote ${expected} samples" "${work}/kill.out" \
    || { echo "FAIL: kill run did not record all ${expected} samples" >&2
         exit 1; }
echo "OK: rank 2 killed mid-storm, reconnected, run recorded in full"

echo "=== netem smoke: all legs passed ==="
