/**
 * @file
 * npsnode — one management level of a distributed control plane
 * (docs/DISTRIBUTED.md).
 *
 * Runs the replica for one [node] section of a plan file: builds the
 * same experiment as every other process of the run, connects to the
 * supervisor's socket, and steps the simulation in lockstep behind the
 * per-tick barrier. Normally spawned by `npsim --distributed PLAN`, not
 * by hand; with --restore it resumes from a supervisor snapshot after
 * this rank was killed mid-run.
 *
 * Examples:
 *   npsnode --plan dist.plan --rank 1
 *   npsnode --plan dist.plan --rank 2 --restore /tmp/x.sock.restart-r2.nps
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/dist.h"
#include "core/dist_plan.h"
#include "util/logging.h"

namespace {

using namespace nps;

[[noreturn]] void
usage()
{
    std::printf(
        "usage: npsnode --plan FILE --rank N [options]\n"
        "  --plan FILE    the distributed plan (docs/DISTRIBUTED.md);\n"
        "                 must be the same file the supervisor runs\n"
        "  --rank N       which [node] section this process hosts\n"
        "                 (1-based, in plan file order)\n"
        "  --restore SNAP resume from a supervisor restart snapshot\n"
        "  --http SPEC    serve this rank's live /metrics endpoint on\n"
        "                 SPEC (PORT, tcp:PORT or unix:PATH), overriding\n"
        "                 the plan's [obs] http\n"
        "  --log-level L  debug | info | warn | error (default warn)\n");
    std::exit(0);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string plan_path;
    std::string restore_path;
    std::string log_level;
    std::string http;
    int rank = 0;
    auto need = [&](int i) {
        if (i + 1 >= argc)
            util::fatal("%s needs a value", argv[i]);
        return argv[i + 1];
    };
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--plan")
            plan_path = need(i), ++i;
        else if (a == "--rank")
            rank = static_cast<int>(std::strtol(need(i), nullptr, 10)),
            ++i;
        else if (a == "--restore")
            restore_path = need(i), ++i;
        else if (a == "--http")
            http = need(i), ++i;
        else if (a == "--log-level")
            log_level = need(i), ++i;
        else if (a == "--help" || a == "-h")
            usage();
        else
            util::fatal("unknown argument '%s' (try --help)", a.c_str());
    }
    if (!log_level.empty()) {
        util::LogLevel level;
        if (!util::logLevelFromName(log_level, level))
            util::fatal("unknown log level '%s'", log_level.c_str());
        util::setLogLevel(level);
    }
    if (plan_path.empty())
        util::fatal("npsnode needs --plan FILE (try --help)");
    if (rank < 1)
        util::fatal("npsnode needs --rank N with N >= 1 (try --help)");

    core::DistPlan plan = core::loadPlanFile(plan_path);
    core::dist::ObsOutputs obs;
    obs.http = http;
    return core::dist::runNode(plan, rank, restore_path, obs);
}
