/**
 * @file
 * npsim — command-line driver for the coordinated power-management
 * simulator.
 *
 * Runs one scenario over one machine model and workload mix and prints
 * the paper's metrics; optionally dumps the per-tick group power and
 * performance series as CSV for external plotting.
 *
 * Examples:
 *   npsim --scenario coordinated --machine BladeA --mix 180
 *   npsim --scenario uncoordinated --mix 60HH --machine ServerB \
 *         --ticks 5760 --budgets 25-20-15
 *   npsim --scenario coordinated --series out.csv
 *   npsim --checkpoint-every 200 --checkpoint-dir ckpts
 *   npsim --resume latest --checkpoint-dir ckpts --record out.csv
 *
 * Checkpointing (docs/CHECKPOINTING.md): --checkpoint-every writes a
 * crash-safe snapshot after every chunk of ticks; --resume restores one
 * and continues byte-identically to an uninterrupted run. The snapshot
 * embeds the resolved configuration and topology, so a resumed run needs
 * no --scenario/--config/--faults flags — only the output paths.
 */

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <dirent.h>
#include <fstream>
#include <iterator>
#include <sstream>
#include <string>
#include <sys/stat.h>
#include <vector>

#include "bus/cascade.h"
#include "ckpt/atomic_io.h"
#include "ckpt/snapshot.h"
#include "core/config_io.h"
#include "core/dist.h"
#include "core/dist_plan.h"
#include "fault/fault.h"
#include "fault/injector.h"
#include "obs/live/exporter.h"
#include "obs/live/publisher.h"
#include "core/coordinator.h"
#include "core/experiment.h"
#include "core/scenarios.h"
#include "sim/recorder.h"
#include "stream/feed.h"
#include "stream/net.h"
#include "stream/stream_source.h"
#include "util/csv.h"
#include "util/ini.h"
#include "util/logging.h"

namespace {

using namespace nps;

struct Args
{
    std::string scenario = "coordinated";
    std::string config_path;
    bool dump_config = false;
    std::string machine = "BladeA";
    std::string mix = "180";
    std::string budgets = "20-15-10";
    std::string series_path;
    std::string record_path;
    std::string faults_path;
    std::string topology_path;
    std::string control_log_path;
    std::string metrics_path;
    std::string cascade_path;
    std::string http;          //!< live observability endpoint spec
    unsigned http_linger_ms = 0;
    bool http_linger_set = false;
    std::string trace_path;
    std::string trace_filter;
    std::string profile_path;
    std::string log_level;
    std::string checkpoint_dir;
    std::string serve; //!< telemetry endpoint (daemon mode)
    std::string plan_single;  //!< --plan: run a dist plan inline (oracle)
    std::string distributed;  //!< --distributed: supervise a process tree
    size_t checkpoint_every = 0;
    std::string resume; //!< snapshot file, or "latest"
    unsigned record_stride = 1;
    bool record_stride_set = false;
    size_t ticks = 2880;
    bool ticks_set = false;
    uint64_t seed = 20080301;
    unsigned threads = 0;
    bool threads_set = false;
    bool two_pstates = false;
    bool no_power_off = false;
    bool enable_cap = false;
    bool enable_mem = false;
};

[[noreturn]] void
usage()
{
    std::printf(
        "usage: npsim [options]\n"
        "  --scenario S   coordinated | uncoordinated | baseline |\n"
        "                 novmc | vmconly | appr-util | no-feedback |\n"
        "                 no-budget-limits   (default coordinated)\n"
        "  --machine M    BladeA | ServerB   (default BladeA)\n"
        "  --mix X        180 | 60L | 60M | 60H | 60HH | 60HHH\n"
        "  --budgets B    20-15-10 | 25-20-15 | 30-25-20\n"
        "  --ticks N      simulation horizon (default 2880)\n"
        "  --seed N       trace-campaign seed (default 20080301)\n"
        "  --threads N    engine worker threads (0 = all cores,\n"
        "                 1 = serial; results are identical)\n"
        "  --two-pstates  reduce machines to the extreme P-states\n"
        "  --no-power-off keep idle machines on\n"
        "  --cap          enable the electrical cappers\n"
        "  --mem          enable the memory managers\n"
        "  --config FILE  load controller parameters from an INI file\n"
        "                 (applied on top of the chosen scenario)\n"
        "  --topology FILE  load the cluster shape (and optional GM\n"
        "                 tree) from a [topology] INI file instead of\n"
        "                 deriving it from the mix\n"
        "  --faults FILE  load a fault-injection script (docs/FAULTS.md)\n"
        "                 and run the scenario under it\n"
        "  --control-log FILE  mirror every control-plane message and\n"
        "                 dump the merged event log as CSV\n"
        "  --metrics FILE  export the metrics registry after the run\n"
        "                 (.json = JSON, anything else = Prometheus\n"
        "                 text exposition)\n"
        "  --cascade FILE  trace GM->EM->SM budget cascades and dump\n"
        "                 the merged hop log as CSV\n"
        "  --http SPEC    serve live observability endpoints while the\n"
        "                 run is in flight: GET /metrics, /metrics.json,\n"
        "                 /healthz and /profilez on SPEC (PORT, tcp:PORT\n"
        "                 or unix:PATH); scrapes read an atomically\n"
        "                 swapped per-tick snapshot and never touch\n"
        "                 controller state (docs/OBSERVABILITY.md)\n"
        "  --http-linger MS  keep serving for MS milliseconds after the\n"
        "                 run ends (or until GET /quitz)\n"
        "  --trace FILE[:FILTER]  record per-controller decision traces\n"
        "                 and dump the merged log as CSV; an optional\n"
        "                 FILTER keeps only channels whose name contains\n"
        "                 the substring (e.g. trace.csv:SM/)\n"
        "  --profile FILE  profile the engine and write the per-actor\n"
        "                 report (.json = JSON, else a text table)\n"
        "  --log-level L  debug | info | warn | error (default warn)\n"
        "  --dump-config  print the effective configuration as INI\n"
        "  --series FILE  dump per-tick power/perf series as CSV\n"
        "  --record FILE  dump per-server/enclosure telemetry as CSV\n"
        "  --record-stride N  telemetry sampling stride (default 1,\n"
        "                 matching sim::Recorder::Options)\n"
        "  --plan FILE    run a distributed plan (docs/DISTRIBUTED.md)\n"
        "                 in this single process — the byte-exact\n"
        "                 oracle a --distributed run is diffed against;\n"
        "                 only output and throughput knobs (--record,\n"
        "                 --metrics, --cascade, --http, --threads,\n"
        "                 --log-level) combine with it\n"
        "  --distributed FILE  run the plan as a process tree: this\n"
        "                 process becomes the rank-0 supervisor and\n"
        "                 spawns one npsnode per [node] section over\n"
        "                 the plan's unix/tcp socket; the recorder CSV\n"
        "                 is byte-identical to --plan on the same file\n"
        "  --serve SPEC   daemon mode (docs/STREAMING.md): instead of\n"
        "                 replaying traces, read live NPSF-framed\n"
        "                 utilization samples from SPEC — stdin,\n"
        "                 unix:PATH, or tcp:PORT (loopback). One tick is\n"
        "                 simulated per TICK barrier frame; the run ends\n"
        "                 early and cleanly if the feeder goes away.\n"
        "                 Output is byte-identical to the batch run fed\n"
        "                 the same samples (tools/npsfeed replays a\n"
        "                 trace campaign as frames)\n"
        "  --checkpoint-every N  write a crash-safe snapshot after every\n"
        "                 N ticks (needs --checkpoint-dir)\n"
        "  --checkpoint-dir D  directory for ckpt-<tick>.nps snapshots\n"
        "  --resume WHAT  continue from a snapshot: a file path, or\n"
        "                 'latest' to pick the newest valid snapshot in\n"
        "                 --checkpoint-dir (corrupt files are skipped\n"
        "                 with a warning); the resumed run reproduces an\n"
        "                 uninterrupted one byte-for-byte\n");
    std::exit(0);
}

Args
parse(int argc, char **argv)
{
    Args args;
    auto need = [&](int i) {
        if (i + 1 >= argc)
            util::fatal("%s needs a value", argv[i]);
        return argv[i + 1];
    };
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--scenario")
            args.scenario = need(i), ++i;
        else if (a == "--machine")
            args.machine = need(i), ++i;
        else if (a == "--mix")
            args.mix = need(i), ++i;
        else if (a == "--budgets")
            args.budgets = need(i), ++i;
        else if (a == "--ticks") {
            args.ticks = std::strtoull(need(i), nullptr, 10);
            args.ticks_set = true;
            ++i;
        }
        else if (a == "--seed")
            args.seed = std::strtoull(need(i), nullptr, 10), ++i;
        else if (a == "--threads") {
            args.threads = static_cast<unsigned>(
                std::strtoul(need(i), nullptr, 10));
            args.threads_set = true;
            ++i;
        }
        else if (a == "--config")
            args.config_path = need(i), ++i;
        else if (a == "--topology")
            args.topology_path = need(i), ++i;
        else if (a == "--faults")
            args.faults_path = need(i), ++i;
        else if (a == "--control-log")
            args.control_log_path = need(i), ++i;
        else if (a == "--metrics")
            args.metrics_path = need(i), ++i;
        else if (a == "--cascade")
            args.cascade_path = need(i), ++i;
        else if (a == "--http")
            args.http = need(i), ++i;
        else if (a == "--http-linger") {
            args.http_linger_ms = static_cast<unsigned>(
                std::strtoul(need(i), nullptr, 10));
            args.http_linger_set = true;
            ++i;
        }
        else if (a == "--trace") {
            // FILE[:FILTER] — split at the first ':' so the filter part
            // may itself contain one (channel names never do today).
            std::string spec = need(i);
            std::string::size_type colon = spec.find(':');
            if (colon == std::string::npos) {
                args.trace_path = spec;
            } else {
                args.trace_path = spec.substr(0, colon);
                args.trace_filter = spec.substr(colon + 1);
            }
            if (args.trace_path.empty())
                util::fatal("--trace needs a file name before ':'");
            ++i;
        }
        else if (a == "--profile")
            args.profile_path = need(i), ++i;
        else if (a == "--log-level")
            args.log_level = need(i), ++i;
        else if (a == "--dump-config")
            args.dump_config = true;
        else if (a == "--series")
            args.series_path = need(i), ++i;
        else if (a == "--record")
            args.record_path = need(i), ++i;
        else if (a == "--record-stride") {
            args.record_stride = static_cast<unsigned>(
                std::strtoul(need(i), nullptr, 10));
            args.record_stride_set = true;
            ++i;
        }
        else if (a == "--checkpoint-every")
            args.checkpoint_every = std::strtoull(need(i), nullptr, 10),
            ++i;
        else if (a == "--checkpoint-dir")
            args.checkpoint_dir = need(i), ++i;
        else if (a == "--resume")
            args.resume = need(i), ++i;
        else if (a == "--serve")
            args.serve = need(i), ++i;
        else if (a == "--plan")
            args.plan_single = need(i), ++i;
        else if (a == "--distributed")
            args.distributed = need(i), ++i;
        else if (a == "--two-pstates")
            args.two_pstates = true;
        else if (a == "--no-power-off")
            args.no_power_off = true;
        else if (a == "--cap")
            args.enable_cap = true;
        else if (a == "--mem")
            args.enable_mem = true;
        else if (a == "--help" || a == "-h")
            usage();
        else
            util::fatal("unknown argument '%s' (try --help)", a.c_str());
    }
    return args;
}

core::CoordinationConfig
configFor(const Args &args)
{
    if (!args.config_path.empty()) {
        core::CoordinationConfig cfg =
            core::loadConfigFile(args.config_path);
        if (args.threads_set)
            cfg.threads = args.threads;
        return cfg;
    }
    core::CoordinationConfig cfg;
    if (args.scenario == "coordinated")
        cfg = core::coordinatedConfig();
    else if (args.scenario == "uncoordinated")
        cfg = core::uncoordinatedConfig();
    else if (args.scenario == "baseline")
        cfg = core::baselineConfig();
    else if (args.scenario == "novmc")
        cfg = core::scenarioConfig(core::Scenario::NoVmc);
    else if (args.scenario == "vmconly")
        cfg = core::scenarioConfig(core::Scenario::VmcOnly);
    else if (args.scenario == "appr-util")
        cfg = core::scenarioConfig(core::Scenario::CoordApparentUtil);
    else if (args.scenario == "no-feedback")
        cfg = core::scenarioConfig(core::Scenario::CoordNoFeedback);
    else if (args.scenario == "no-budget-limits")
        cfg = core::scenarioConfig(core::Scenario::CoordNoBudgetLimits);
    else
        util::fatal("unknown scenario '%s'", args.scenario.c_str());

    if (args.budgets == "20-15-10")
        cfg.budgets = sim::BudgetConfig::paper201510();
    else if (args.budgets == "25-20-15")
        cfg.budgets = sim::BudgetConfig::paper252015();
    else if (args.budgets == "30-25-20")
        cfg.budgets = sim::BudgetConfig::paper302520();
    else
        util::fatal("unknown budgets '%s'", args.budgets.c_str());

    if (args.no_power_off)
        cfg.vmc.allow_power_off = false;
    cfg.enable_cap = args.enable_cap;
    cfg.enable_mem = args.enable_mem;
    if (args.threads_set)
        cfg.threads = args.threads;
    return cfg;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        util::fatal("cannot open %s", path.c_str());
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    return text;
}

/** Pick JSON output when the target file is named *.json. */
bool
wantsJson(const std::string &path)
{
    static const std::string ext = ".json";
    return path.size() >= ext.size() &&
           path.compare(path.size() - ext.size(), ext.size(), ext) == 0;
}

trace::Mix
mixFor(const std::string &name)
{
    for (auto mix : trace::allMixes()) {
        if (name == trace::mixName(mix))
            return mix;
    }
    util::fatal("unknown mix '%s'", name.c_str());
}

/**
 * Everything a resumed run needs to rebuild the simulation that wrote
 * the snapshot, stored in the npsim-level "meta" section: the resolved
 * config and topology as INI text (bit-exact round trip) plus the
 * driver inputs that live outside the config.
 */
struct ResumeMeta
{
    std::string config_ini;
    std::string topo_ini;
    std::string scenario;
    std::string machine;
    std::string mix;
    std::string budgets;
    bool two_pstates = false;
    uint64_t seed = 0;
    size_t total_ticks = 0;
    size_t done_ticks = 0;
    unsigned record_stride = 1;
    bool has_recorder = false;
    bool keep_series = false;
};

void
writeMeta(ckpt::SectionWriter &w, const Args &args,
          const core::CoordinationConfig &cfg, const sim::Topology &topo,
          size_t done, bool has_recorder, bool keep_series)
{
    w.putString(core::configToIni(cfg).toText());
    w.putString(core::topologyToIni(topo).toText());
    w.putString(args.scenario);
    w.putString(args.machine);
    w.putString(args.mix);
    w.putString(args.budgets);
    w.putBool(args.two_pstates);
    w.putU64(args.seed);
    w.putU64(args.ticks);
    w.putU64(done);
    w.putU32(args.record_stride);
    w.putBool(has_recorder);
    w.putBool(keep_series);
}

ResumeMeta
readMeta(const ckpt::SnapshotReader &snap)
{
    if (!snap.has("meta"))
        util::fatal("checkpoint %s has no 'meta' section — not written "
                    "by npsim", snap.path().c_str());
    ckpt::SectionReader r = snap.section("meta");
    ResumeMeta m;
    m.config_ini = r.getString();
    m.topo_ini = r.getString();
    m.scenario = r.getString();
    m.machine = r.getString();
    m.mix = r.getString();
    m.budgets = r.getString();
    m.two_pstates = r.getBool();
    m.seed = r.getU64();
    m.total_ticks = static_cast<size_t>(r.getU64());
    m.done_ticks = static_cast<size_t>(r.getU64());
    m.record_stride = r.getU32();
    m.has_recorder = r.getBool();
    m.keep_series = r.getBool();
    r.expectEnd();
    return m;
}

std::string
checkpointPath(const std::string &dir, size_t tick)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "ckpt-%010zu.nps", tick);
    return dir + "/" + buf;
}

void
ensureDir(const std::string &dir)
{
    if (::mkdir(dir.c_str(), 0755) == 0)
        return;
    if (errno == EEXIST) {
        struct stat st;
        if (::stat(dir.c_str(), &st) == 0 && S_ISDIR(st.st_mode))
            return;
        util::fatal("checkpoint dir %s exists but is not a directory",
                    dir.c_str());
    }
    util::fatal("cannot create checkpoint dir %s: %s", dir.c_str(),
                std::strerror(errno));
}

/** Names of ckpt-*.nps files in @p dir, newest (highest tick) first. */
std::vector<std::string>
listCheckpoints(const std::string &dir)
{
    DIR *d = ::opendir(dir.c_str());
    if (!d)
        util::fatal("cannot open checkpoint dir %s: %s", dir.c_str(),
                    std::strerror(errno));
    std::vector<std::string> names;
    while (struct dirent *e = ::readdir(d)) {
        std::string name = e->d_name;
        if (name.size() > 9 && name.compare(0, 5, "ckpt-") == 0 &&
            name.compare(name.size() - 4, 4, ".nps") == 0)
            names.push_back(name);
    }
    ::closedir(d);
    // Tick numbers are zero-padded, so lexicographic order is tick order.
    std::sort(names.rbegin(), names.rend());
    return names;
}

/**
 * Load the snapshot named by --resume into @p snap and return its path.
 * A file path is loaded strictly (corruption is fatal); 'latest' walks
 * the checkpoint dir newest-first, skipping corrupt snapshots with a
 * warning so a crash mid-write falls back to the previous one.
 */
std::string
loadResumeSnapshot(const Args &args, ckpt::SnapshotReader &snap)
{
    std::string err;
    if (args.resume != "latest") {
        if (!snap.load(args.resume, err))
            util::fatal("cannot resume from %s: %s", args.resume.c_str(),
                        err.c_str());
        return args.resume;
    }
    if (args.checkpoint_dir.empty())
        util::fatal("--resume latest needs --checkpoint-dir");
    std::vector<std::string> names = listCheckpoints(args.checkpoint_dir);
    if (names.empty())
        util::fatal("no checkpoints (ckpt-*.nps) in %s",
                    args.checkpoint_dir.c_str());
    for (const std::string &name : names) {
        std::string path = args.checkpoint_dir + "/" + name;
        if (snap.load(path, err))
            return path;
        util::warn("skipping corrupt checkpoint %s: %s", path.c_str(),
                   err.c_str());
    }
    util::fatal("no valid checkpoint in %s: all %zu candidates are "
                "corrupt or unreadable", args.checkpoint_dir.c_str(),
                names.size());
}

} // namespace

int
main(int argc, char **argv)
{
    Args args = parse(argc, argv);
    if (!args.log_level.empty()) {
        util::LogLevel level;
        if (!util::logLevelFromName(args.log_level, level))
            util::fatal("unknown log level '%s' (try debug, info, warn "
                        "or error)", args.log_level.c_str());
        util::setLogLevel(level);
    }
    if (!args.plan_single.empty() || !args.distributed.empty()) {
        // The plan-driven modes own the whole run definition; the only
        // flags that combine with them are output and throughput knobs.
        if (!args.plan_single.empty() && !args.distributed.empty())
            util::fatal("--plan and --distributed are exclusive: the "
                        "former is the single-process oracle of the "
                        "latter");
        if (!args.config_path.empty() || !args.faults_path.empty() ||
            !args.topology_path.empty() || !args.serve.empty() ||
            !args.resume.empty() || args.checkpoint_every > 0)
            util::fatal("--plan/--distributed cannot be combined with "
                        "--config, --faults, --topology, --serve or "
                        "checkpointing flags: the plan file defines "
                        "the whole run (docs/DISTRIBUTED.md)");
        unsigned threads = args.threads_set ? args.threads : 0;
        core::dist::ObsOutputs obs;
        obs.metrics_path = args.metrics_path;
        obs.cascade_path = args.cascade_path;
        obs.http = args.http;
        obs.http_linger_ms = args.http_linger_ms;
        if (!args.plan_single.empty()) {
            core::DistPlan plan = core::loadPlanFile(args.plan_single);
            return core::dist::runPlanSingle(plan, args.record_path,
                                             threads, obs);
        }
        core::DistPlan plan = core::loadPlanFile(args.distributed);
        return core::dist::runSupervisor(plan, args.distributed,
                                         args.record_path, threads, obs);
    }
    bool resuming = !args.resume.empty();
    if (args.checkpoint_every > 0 && args.checkpoint_dir.empty())
        util::fatal("--checkpoint-every needs --checkpoint-dir");

    ckpt::SnapshotReader snap;
    ResumeMeta meta;
    std::string resume_path;
    if (resuming) {
        if (!args.config_path.empty() || !args.faults_path.empty() ||
            !args.topology_path.empty())
            util::fatal("--resume cannot be combined with --config, "
                        "--faults or --topology: the checkpoint embeds "
                        "the original configuration and topology");
        resume_path = loadResumeSnapshot(args, snap);
        meta = readMeta(snap);
        // The simulation's identity comes from the snapshot; the resume
        // command line only names output files (and may extend --ticks
        // or change --threads — both preserve byte-identical results).
        args.scenario = meta.scenario;
        args.machine = meta.machine;
        args.mix = meta.mix;
        args.budgets = meta.budgets;
        args.two_pstates = meta.two_pstates;
        args.seed = meta.seed;
        if (!args.ticks_set)
            args.ticks = meta.total_ticks;
        if (args.record_stride_set &&
            args.record_stride != meta.record_stride)
            util::fatal("--record-stride %u does not match the stride %u "
                        "the checkpointed run recorded with",
                        args.record_stride, meta.record_stride);
        args.record_stride = meta.record_stride;
    }

    core::CoordinationConfig cfg;
    sim::Topology topo;
    if (resuming) {
        cfg = core::configFromIni(util::parseIni(meta.config_ini));
        topo = core::topologyFromIni(util::parseIni(meta.topo_ini));
        if (args.threads_set)
            cfg.threads = args.threads;
        if (!args.metrics_path.empty() && !cfg.observability.metrics)
            util::fatal("--metrics on resume, but the checkpointed run "
                        "did not enable metrics");
        if (!args.trace_path.empty() && !cfg.observability.trace)
            util::fatal("--trace on resume, but the checkpointed run "
                        "did not enable tracing");
        if (!args.control_log_path.empty() && !cfg.log_control_plane)
            util::fatal("--control-log on resume, but the checkpointed "
                        "run did not log the control plane");
        if (!args.profile_path.empty())
            cfg.observability.profile = true; // wall clock only, no state
        if (!args.cascade_path.empty())
            util::fatal("--cascade cannot be combined with --resume: the "
                        "cascade tracer's hop log is not checkpointed, "
                        "so the CSV would silently miss every hop before "
                        "the snapshot");
        if (!args.http.empty()) {
            // The live plane itself is stateless, but it serves the
            // metrics registry — which loadState only restores when the
            // original run created one.
            if (!cfg.observability.metrics)
                util::fatal("--http on resume, but the checkpointed run "
                            "did not enable metrics (the snapshot holds "
                            "no registry to serve)");
            cfg.observability.http = args.http;
        }
    } else {
        cfg = configFor(args);
        if (!args.metrics_path.empty())
            cfg.observability.metrics = true;
        if (!args.cascade_path.empty())
            cfg.observability.cascade = true;
        if (!args.http.empty()) {
            cfg.observability.http = args.http;
            // The endpoint serves the registry; arm it even without
            // --metrics so `--http` alone is a complete live setup.
            cfg.observability.metrics = true;
        }
        if (args.http_linger_set)
            cfg.observability.http_linger_ms = args.http_linger_ms;
        if (!args.trace_path.empty()) {
            cfg.observability.trace = true;
            cfg.observability.trace_filter = args.trace_filter;
        }
        if (!args.profile_path.empty())
            cfg.observability.profile = true;
        if (!args.faults_path.empty()) {
            cfg.faults.script = readFile(args.faults_path);
            fault::FaultSchedule::parse(cfg.faults.script); // validate early
            cfg.faults.enabled = true;
        }
        if (!args.control_log_path.empty())
            cfg.log_control_plane = true;
        if (!args.serve.empty())
            cfg.stream.enabled = true;
    }
    if (resuming) {
        // A mid-stream snapshot holds no staged demand — only a feed can
        // re-stage the resume tick, so the mode must match the original.
        if (cfg.stream.enabled && args.serve.empty())
            util::fatal("the checkpointed run was stream-fed; pass "
                        "--serve SPEC to resume it (the staged demand "
                        "is re-sent by the feeder, not checkpointed)");
        if (!cfg.stream.enabled && !args.serve.empty())
            util::fatal("--serve on resume, but the checkpointed run "
                        "replayed traces; resume it without --serve");
    }
    if (args.dump_config) {
        std::printf("%s", core::configToIni(cfg).toText().c_str());
        return 0;
    }

    trace::GeneratorConfig gen;
    gen.seed = args.seed;
    trace::WorkloadLibrary library(gen);
    trace::Mix mix = mixFor(args.mix);

    model::MachineSpec machine = model::machineByName(args.machine);
    if (args.two_pstates)
        machine = machine.extremesOnly();

    if (!resuming)
        topo = args.topology_path.empty()
                   ? core::ExperimentRunner::topologyFor(mix)
                   : core::loadTopologyFile(args.topology_path);
    // Fail before any construction: a topology too small for the mix (or
    // structurally broken) should die with a message naming the inputs,
    // not surface as a mid-build error.
    topo.validate();
    size_t workloads = library.mix(mix).size();
    if (workloads > topo.num_servers) {
        util::fatal("topology '%s' has %u servers but mix %s carries %zu "
                    "workloads; pick a larger topology or a smaller mix",
                    args.topology_path.empty() ? "(built-in)"
                                               : args.topology_path.c_str(),
                    topo.num_servers, args.mix.c_str(), workloads);
    }
    if (topo.hasTree() && !cfg.enable_gm) {
        util::fatal("topology '%s' defines a GM tree but the "
                    "configuration disables the group manager "
                    "(enable_gm = false)",
                    args.topology_path.empty() ? "(built-in)"
                                               : args.topology_path.c_str());
    }
    bool keep_series = !args.series_path.empty() ||
                       (resuming && meta.keep_series);
    if (resuming && !args.series_path.empty() && !meta.keep_series)
        util::fatal("--series on resume, but the checkpointed run did "
                    "not keep per-tick series; the original run must "
                    "also use --series");

    core::Coordinator coordinator(cfg, topo, machine, library.mix(mix),
                                  keep_series);
    std::shared_ptr<sim::Recorder> recorder;
    if (resuming && meta.has_recorder && args.record_path.empty())
        util::fatal("the checkpointed run recorded telemetry; pass "
                    "--record FILE when resuming (the Recorder is part "
                    "of the checkpointed engine roster)");
    if (resuming && !meta.has_recorder && !args.record_path.empty())
        util::fatal("--record on resume, but the checkpoint has no "
                    "recorder state; the original run must also use "
                    "--record");
    if (!args.record_path.empty()) {
        sim::Recorder::Options opts;
        opts.stride = args.record_stride;
        recorder = std::make_shared<sim::Recorder>(coordinator.cluster(),
                                                   opts);
        recorder->setFaultInjector(coordinator.faultInjector());
        coordinator.engine().addActor(recorder);
    }

    std::unique_ptr<stream::StreamSource> source;
    std::unique_ptr<stream::ClusterFeed> feed;
    if (cfg.stream.enabled) {
        std::fprintf(stderr, "npsim: serving on %s, waiting for the "
                             "feeder...\n", args.serve.c_str());
        int fd = stream::serveAndAccept(args.serve);
        source = std::make_unique<stream::StreamSource>(
            fd, coordinator.cluster().numVms(), cfg.stream);
        feed = std::make_unique<stream::ClusterFeed>(
            coordinator.cluster(), *source, cfg.stream);
        coordinator.engine().setTickSource(feed.get());
        coordinator.attachStreamHealth(feed.get());
        // The recorder grows a `faults` column whenever a fault oracle
        // is attached; wiring the stream oracle in only when a fault
        // campaign already runs keeps a pure stream-fed run's CSV
        // byte-identical to the batch run it replays.
        if (recorder && coordinator.faultInjector())
            recorder->setStreamHealth(feed.get());
        if (coordinator.observability())
            feed->attachObs(coordinator.observability()->metrics());
    }

    // Live observability plane (docs/OBSERVABILITY.md): the publisher
    // snapshots the registry at its cadence — and always feeds the
    // per-tick wall-clock histogram — while the exporter's serve thread
    // answers scrapes from the latest atomically-swapped snapshot.
    // Observation only: a scrape never touches controller state, so
    // recorder CSVs are byte-identical with the plane on or off.
    std::unique_ptr<obs::live::LiveExporter> exporter;
    std::unique_ptr<obs::live::LivePublisher> publisher;
    obs::MetricsRegistry *live_reg =
        coordinator.observability() ? coordinator.observability()->metrics()
                                    : nullptr;
    if (live_reg) {
        if (!cfg.observability.http.empty())
            exporter = std::make_unique<obs::live::LiveExporter>(
                cfg.observability.http, /*rank=*/0);
        publisher = std::make_unique<obs::live::LivePublisher>(
            live_reg, coordinator.profiler(),
            [&coordinator] { coordinator.updateRunGauges(); },
            exporter.get(), cfg.observability.publish_every, /*rank=*/0);
        coordinator.engine().setTickObserver(publisher.get());
    }

    size_t done = 0;
    if (resuming) {
        coordinator.loadState(snap);
        if (recorder) {
            ckpt::SectionReader r = snap.section("recorder");
            recorder->loadState(r);
            r.expectEnd();
        }
        if (feed) {
            ckpt::SectionReader r = snap.section("stream");
            feed->loadState(r);
            r.expectEnd();
        }
        done = meta.done_ticks;
        if (done > args.ticks)
            util::fatal("checkpoint %s is at tick %zu, beyond --ticks "
                        "%zu", resume_path.c_str(), done, args.ticks);
        // Progress notes go to stderr so stdout stays byte-identical to
        // an uninterrupted run.
        std::fprintf(stderr, "npsim: resumed at tick %zu from %s\n",
                     done, resume_path.c_str());
    }

    obs::Histogram *ckpt_ms = nullptr;
    if (args.checkpoint_every > 0 && live_reg)
        ckpt_ms = live_reg->histogram(
            "nps_rt_ckpt_write_ms", "",
            "Wall-clock checkpoint write latency (ms)",
            obs::MetricsRegistry::runtimeMsBounds());
    auto writeCheckpoint = [&](size_t at) {
        ckpt::SnapshotWriter out;
        coordinator.saveState(out);
        if (recorder)
            recorder->saveState(out.section("recorder"));
        if (feed)
            feed->saveState(out.section("stream"));
        writeMeta(out.section("meta"), args, cfg, topo, at,
                  recorder != nullptr, keep_series);
        std::string path = checkpointPath(args.checkpoint_dir, at);
        auto started = std::chrono::steady_clock::now();
        out.writeFile(path);
        if (ckpt_ms)
            ckpt_ms->observe(std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - started).count());
        std::fprintf(stderr, "npsim: checkpoint %s (tick %zu)\n",
                     path.c_str(), at);
    };
    if (args.checkpoint_every > 0) {
        ensureDir(args.checkpoint_dir);
        while (done < args.ticks) {
            size_t chunk = std::min(args.checkpoint_every,
                                    args.ticks - done);
            size_t ran = coordinator.run(chunk);
            done += ran;
            writeCheckpoint(done);
            if (ran < chunk)
                break; // the telemetry feed ended
        }
    } else if (done < args.ticks) {
        done += coordinator.run(args.ticks - done);
    }
    if (feed && done < args.ticks)
        std::fprintf(stderr, "npsim: stream ended after %zu of %zu "
                             "ticks\n", done, args.ticks);
    if (publisher) {
        // Publish the final snapshot before any export renders, so a
        // last mid-run scrape and the --metrics file are byte-equal.
        coordinator.updateRunGauges();
        publisher->publishFinal(done ? done - 1 : 0);
    }
    sim::MetricsSummary m = coordinator.summary();

    core::Coordinator baseline(core::baselineConfig(), topo, machine,
                               library.mix(mix));
    baseline.run(done);

    std::printf("scenario=%s machine=%s mix=%s budgets=%s ticks=%zu\n",
                args.scenario.c_str(), machine.name().c_str(),
                args.mix.c_str(), args.budgets.c_str(), args.ticks);
    std::printf("power:  mean %.1f W, peak %.1f W, savings %.2f %%\n",
                m.mean_power, m.peak_power,
                sim::powerSavings(baseline.summary(), m) * 100.0);
    std::printf("perf:   loss %.3f %%\n", m.perf_loss * 100.0);
    std::printf("caps:   GM %.2f %%  EM %.2f %%  SM %.2f %% of ticks "
                "violated\n", m.gm_violation * 100.0,
                m.em_violation * 100.0, m.sm_violation * 100.0);
    if (coordinator.vmc()) {
        const auto &v = coordinator.vmc()->stats();
        std::printf("vmc:    %lu epochs, %lu adoptions, %lu migrations, "
                    "%lu infeasible\n", v.epochs, v.adoptions,
                    v.migrations, v.infeasible);
    }
    if (coordinator.faultInjector()) {
        const fault::DegradeStats &d = m.degrade;
        std::printf("faults: %zu scheduled events\n",
                    coordinator.faultInjector()->schedule().events()
                        .size());
        std::printf("        outages %llu ticks / %llu steps, "
                    "%llu restarts\n",
                    (unsigned long long)d.outage_ticks,
                    (unsigned long long)d.outage_steps,
                    (unsigned long long)d.restarts);
        std::printf("        leases: %llu expiries, %llu fallback steps; "
                    "EC fallback %llu steps\n",
                    (unsigned long long)d.lease_expiries,
                    (unsigned long long)d.lease_fallback_steps,
                    (unsigned long long)d.ec_fallback_steps);
        std::printf("        links: %llu dropped, %llu stale; "
                    "%llu stuck actuations, %llu noisy reads\n",
                    (unsigned long long)d.dropped_budgets,
                    (unsigned long long)d.stale_budgets,
                    (unsigned long long)d.stuck_actuations,
                    (unsigned long long)d.noisy_reads);
    }

    // Every output below goes through writeFileAtomic: the file appears
    // complete or not at all, and any I/O failure is fatal (non-zero
    // exit) with the path and errno string.
    if (!args.series_path.empty()) {
        std::ostringstream out;
        nps::util::CsvWriter w(out);
        w.row("tick", "group_watts", "perf");
        const auto &power = coordinator.metrics().powerSeries();
        const auto &perf = coordinator.metrics().perfSeries();
        for (size_t t = 0; t < power.size(); ++t)
            w.row(static_cast<unsigned long>(t), power[t], perf[t]);
        ckpt::writeFileAtomic(args.series_path, out.str());
        std::printf("series: wrote %zu rows to %s\n", power.size(),
                    args.series_path.c_str());
    }
    if (recorder) {
        std::ostringstream out;
        recorder->writeCsv(out);
        ckpt::writeFileAtomic(args.record_path, out.str());
        std::printf("record: wrote %zu samples to %s\n",
                    recorder->samples(), args.record_path.c_str());
    }
    if (!args.control_log_path.empty()) {
        const bus::ControlPlaneLog *log = coordinator.controlLog();
        std::ostringstream out;
        log->writeCsv(out);
        ckpt::writeFileAtomic(args.control_log_path, out.str());
        std::printf("control-log: wrote %zu events on %zu links to %s\n",
                    log->totalEvents(), log->numLinks(),
                    args.control_log_path.c_str());
    }
    if (!args.metrics_path.empty()) {
        const obs::MetricsRegistry *reg = coordinator.metricsRegistry();
        std::ostringstream out;
        if (wantsJson(args.metrics_path))
            reg->writeJson(out);
        else
            reg->writeProm(out);
        ckpt::writeFileAtomic(args.metrics_path, out.str());
        std::printf("metrics: wrote %zu series in %zu families to %s\n",
                    reg->numSeries(), reg->numFamilies(),
                    args.metrics_path.c_str());
    }
    if (!args.trace_path.empty()) {
        const obs::TraceSink *trace = coordinator.traceSink();
        std::ostringstream out;
        trace->writeCsv(out);
        ckpt::writeFileAtomic(args.trace_path, out.str());
        std::printf("trace: wrote %zu events on %zu channels to %s",
                    trace->totalEvents(), trace->numChannels(),
                    args.trace_path.c_str());
        if (trace->totalDropped() > 0)
            std::printf(" (%llu dropped by the ring cap)",
                        (unsigned long long)trace->totalDropped());
        std::printf("\n");
    }
    if (!args.cascade_path.empty()) {
        const bus::CascadeTracer *cascade = coordinator.cascadeTracer();
        std::ostringstream out;
        cascade->writeCsv(out);
        ckpt::writeFileAtomic(args.cascade_path, out.str());
        std::printf("cascade: wrote %zu hops on %zu links to %s\n",
                    cascade->totalHops(), cascade->numLinks(),
                    args.cascade_path.c_str());
    }
    if (!args.profile_path.empty()) {
        const obs::EngineProfiler *prof = coordinator.profiler();
        std::ostringstream out;
        if (wantsJson(args.profile_path))
            prof->writeJson(out);
        else
            prof->writeTable(out);
        ckpt::writeFileAtomic(args.profile_path, out.str());
        std::printf("profile: %zu ticks over %zu actors to %s\n",
                    prof->ticks(), prof->actorStats().size(),
                    args.profile_path.c_str());
    }
    if (exporter)
        exporter->linger(args.http_linger_set
                             ? args.http_linger_ms
                             : cfg.observability.http_linger_ms);
    if (publisher)
        coordinator.engine().setTickObserver(nullptr);
    return 0;
}
